//! User-level profiling through the `/dev/profiler` driver stub: a
//! process mmaps the board's EPROM window and fires its own triggers,
//! which land in the same capture RAM as the kernel's — "There is no
//! reason why a mixture of kernel and user level profiling cannot take
//! place concurrently."
//!
//! ```text
//! cargo run --example userland_profiling
//! ```

use hwprof::analysis::summary_report;
use hwprof::experiment::Scenario;
use hwprof::kernel386::kern_exec::ExecImage;
use hwprof::kernel386::profdev::{profmmap, profopen, user_trigger};
use hwprof::kernel386::syscall::{sys_execve, sys_sleep};
use hwprof::kernel386::user::ucompute;
use hwprof::tagfile::{TagEntry, TagFile, TagKind};
use hwprof::{Analyzer, Experiment};

// The application's own tag assignments, kept in a second name/tag file
// well above the kernel's range.
const APP_MAIN: u16 = 60_000;
const APP_CRUNCH: u16 = 60_002;

fn app_tagfile() -> TagFile {
    let mut tf = TagFile::new(59_998);
    for (name, tag) in [("app_main", APP_MAIN), ("app_crunch", APP_CRUNCH)] {
        tf.insert(TagEntry {
            name: name.into(),
            tag,
            kind: TagKind::Function,
        })
        .expect("disjoint tag range");
    }
    tf
}

fn main() {
    let scenario = Scenario::builder()
        .spawn(|sim| {
            sim.spawn(
                "app",
                Box::new(|ctx| {
                    // The profiling crt0: exec an image, open the driver,
                    // map the window.
                    sys_execve(ctx, &ExecImage::small_util());
                    let _fd = profopen(ctx);
                    let base = profmmap(ctx);
                    assert_ne!(base, 0);
                    // Application code with explicit triggers.
                    user_trigger(ctx, APP_MAIN);
                    for _ in 0..5 {
                        user_trigger(ctx, APP_CRUNCH);
                        ucompute(ctx, 1_500);
                        user_trigger(ctx, APP_CRUNCH + 1);
                        sys_sleep(ctx, 1); // kernel events interleave
                    }
                    user_trigger(ctx, APP_MAIN + 1);
                }),
            );
        })
        .build();
    let capture = Experiment::new()
        .profile_modules(&["kern", "sys", "dev", "locore"])
        .scenario(scenario)
        .try_run()
        .expect("experiment runs");

    // Concatenate the kernel's name/tag file with the application's —
    // "Multiple name/tag files may exist, and may be concatenated".
    let mut merged = capture.tagfile.clone();
    merged.concat(&app_tagfile()).expect("disjoint ranges");
    let r = Analyzer::for_tagfile(&merged)
        .records(&capture.records)
        .expect("ungated");

    println!("{}", summary_report(&r, Some(12)));
    let crunch = r.agg("app_crunch").expect("app function profiled");
    println!(
        "app_crunch: {} calls, {} us net — user time measured by the \
         same board that profiled hardclock ({} calls)",
        crunch.calls,
        crunch.net,
        r.agg("hardclock").unwrap_or_default().calls
    );
    assert_eq!(crunch.calls, 5);
    assert!(crunch.net >= 5 * 1_400);
    // API smoke: one capture through the multi-RAM entry point.
    drop(
        Analyzer::for_tagfile(&capture.tagfile)
            .record_sessions([&capture.records])
            .expect("ungated"),
    );
}
