//! Find the network bottleneck, then check the paper's two proposed
//! fixes by actually building both kernels.
//!
//! ```text
//! cargo run --example network_bottleneck
//! ```

use hwprof::analysis::whatif::PacketCosts;
use hwprof::kernel386::kernel::KernelConfig;
use hwprof::{scenarios, Experiment};

fn packet_us(config: KernelConfig) -> (f64, u64) {
    let capture = Experiment::new()
        .profile_modules(&["net", "locore"])
        .config(config)
        .scenario(scenarios::network_receive(160 * 1024, true))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    let packets = capture.kernel.net.pcbs[0].tcb.rcv_nxt as u64 / 1024;
    let us_per_packet = r.run_time() as f64 / packets.max(1) as f64;
    (us_per_packet, packets)
}

fn main() {
    println!("Measuring the stock kernel under a saturating TCP stream...");
    let (stock, n) = packet_us(KernelConfig::default());
    println!("  stock kernel: {stock:.0} us/packet over {n} packets\n");

    println!("What-if #1: external mbufs (skip the driver copy, leave data");
    println!("in controller memory).  The paper predicts a LOSS:");
    let (external, _) = packet_us(KernelConfig {
        external_mbufs: true,
        ..KernelConfig::default()
    });
    println!(
        "  external mbufs: {external:.0} us/packet ({:+.0}%)\n",
        (external - stock) * 100.0 / stock
    );

    println!("What-if #2: recode in_cksum in assembler.  The paper");
    println!("predicts a large WIN:");
    let (asm, _) = packet_us(KernelConfig {
        cksum_asm: true,
        ..KernelConfig::default()
    });
    println!(
        "  asm in_cksum:   {asm:.0} us/packet ({:+.0}%)\n",
        (asm - stock) * 100.0 / stock
    );

    println!("The paper's closed-form estimate from measured components:");
    let (p_stock, p_ext, p_asm) = PacketCosts::paper().compare();
    println!("  stock {p_stock:.0}  external {p_ext:.0}  asm {p_asm:.0} us/packet");

    assert!(external > stock, "external mbufs must lose");
    assert!(asm < stock, "asm checksum must win");
    println!("\nBoth directions agree with the paper.");
}
