//! Quickstart: profile a kernel under network load and print both of the
//! paper's reports.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hwprof::analysis::{summary_report, trace_report, TraceStyle};
use hwprof::{scenarios, Experiment};

fn main() {
    // Build a kernel with the network path compiled for profiling,
    // plug the Profiler into the EPROM socket, and stream ~128 KiB of
    // TCP at it.
    let capture = Experiment::new()
        .profile_modules(&["net", "locore", "kern", "sys"])
        .scenario(scenarios::network_receive(128 * 1024, false))
        .try_run()
        .expect("experiment runs");

    println!(
        "Board: {} events captured, overflow LED {}",
        capture.records.len(),
        if capture.overflowed { "ON" } else { "off" }
    );
    println!(
        "_ProfileBase resolved to {:#010x} by the two-stage link\n",
        capture.link.profile_base
    );

    // Report 1: the per-function summary (paper Figure 3).
    let profile = capture.analyze();
    println!("{}", summary_report(&profile, Some(12)));

    // Report 2: the first two milliseconds of the code-path trace
    // (paper Figure 4).
    let style = TraceStyle {
        max_lines: Some(60),
        ..TraceStyle::default()
    };
    println!("{}", trace_report(&profile, &style));
}
