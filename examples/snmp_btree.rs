//! The 68020 case study: an SNMP agent's MIB search, linear table vs
//! B-tree, measured end to end on the simulated embedded board.
//!
//! ```text
//! cargo run --example snmp_btree
//! ```

use hwprof::snmpmib::agent::{cpu_us_per_request, populate};
use hwprof::snmpmib::{BtreeMib, LinearMib};

fn main() {
    for size in [100u32, 500, 2000] {
        let mut lin = LinearMib::new();
        populate(&mut lin, size);
        let mut bt = BtreeMib::new();
        populate(&mut bt, size);
        let lin_us = cpu_us_per_request(Box::new(lin), 50);
        let bt_us = cpu_us_per_request(Box::new(bt), 50);
        println!(
            "MIB {size:>5} objects: linear {lin_us:>6} us/request, \
             B-tree {bt_us:>5} us/request  ({:.1}x)",
            lin_us as f64 / bt_us as f64
        );
    }
    println!(
        "\nThe paper: \"redesigning the data structure to use a B-tree \
         [...] reduced the CPU cycles required to respond to SNMP \
         requests by an order of magnitude.\""
    );
}
