//! Hunt the fork/exec bottleneck (the paper's Figure 5 study): profile
//! only the VM and pmap modules while a shell forks and execs.
//!
//! ```text
//! cargo run --example forkexec_hunt
//! ```

use hwprof::analysis::graph::to_dot;
use hwprof::analysis::hist::{histogram, render};
use hwprof::analysis::summary_report;
use hwprof::profiler::BoardConfig;
use hwprof::{scenarios, Experiment};

fn main() {
    let capture = Experiment::new()
        .profile_modules(&["vm", "kern", "sys", "locore"])
        .board(BoardConfig::wide())
        .scenario(scenarios::forkexec_loop(4))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    println!("{}", summary_report(&r, Some(12)));

    // The smoking gun: pmap_pte call count per fork.
    let pte = r.agg("pmap_pte").unwrap_or_default();
    let forks = r.agg("fork1").map_or(1, |a| a.calls.max(1));
    println!(
        "pmap_pte: {} calls total, ~{} per fork (paper: ~1053)\n",
        pte.calls,
        pte.calls / (forks * 3) // fork + exec + exit walks per cycle
    );

    // Distribution of pmap_remove costs: small unmappings vs whole-image
    // teardowns.
    if let Some(h) = histogram(&r, "pmap_remove", 16_384) {
        println!("{}", render(&h, 40));
    }

    // Call-graph export for the graphical future-work item.
    let dot = to_dot(&r);
    println!(
        "Call graph: {} lines of dot (pipe to `dot -Tsvg`)",
        dot.lines().count()
    );
}
