//! Golden snapshots of the human-readable outputs, including the
//! capture-integrity block that recovery mode appends.
//!
//! The inputs are fully synthetic and seeded, so every byte of the
//! output is deterministic.  Regenerate after an intentional format
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p hwprof --test golden_reports
//! ```

use std::fs;
use std::path::PathBuf;

use hwprof::analysis::{
    decode_recovering, reconstruct_session_recovering, summary_report,
    trace::{trace_report, TraceStyle},
    Anomalies, Reconstruction,
};
use hwprof::profiler::{parse_raw_lossy, serialize_raw, FaultInjector, FaultSpec, RawRecord};
use hwprof::tagfile::{TagFile, TagKind};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "output drifted from tests/golden/{name}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// A small deterministic capture: three functions with nesting, a
/// context switch, and an inline mark.
fn fixture() -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(500);
    let read = tf.assign("vn_read", TagKind::Function).expect("fresh");
    let copy = tf.assign("bcopy", TagKind::Function).expect("fresh");
    let intr = tf.assign("clock_intr", TagKind::Function).expect("fresh");
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    let mark = tf.assign("MARK_IDLE", TagKind::Inline).expect("fresh");
    let mut records = Vec::new();
    let mut t = 100u64;
    for _ in 0..4 {
        records.push(RawRecord::latch(read, t));
        records.push(RawRecord::latch(copy, t + 10));
        records.push(RawRecord::latch(copy + 1, t + 40));
        records.push(RawRecord::latch(mark, t + 45));
        records.push(RawRecord::latch(read + 1, t + 60));
        records.push(RawRecord::latch(swtch, t + 70));
        records.push(RawRecord::latch(intr, t + 75));
        records.push(RawRecord::latch(intr + 1, t + 90));
        records.push(RawRecord::latch(swtch + 1, t + 95));
        t += 120;
    }
    (tf, records)
}

fn analyze(tf: &TagFile, bytes: &[u8]) -> Reconstruction {
    let (records, trailing) = parse_raw_lossy(bytes);
    let (syms, events, anoms) = decode_recovering(&records, tf);
    let mut r = reconstruct_session_recovering(&syms, &events);
    r.note(&anoms);
    if trailing > 0 {
        r.note(&Anomalies {
            truncations: 1,
            ..Anomalies::default()
        });
    }
    r
}

#[test]
fn clean_summary_report_matches_golden() {
    let (tf, records) = fixture();
    let r = analyze(&tf, &serialize_raw(&records));
    assert!(r.anomalies.is_clean(), "fixture must decode cleanly");
    check("clean_report.txt", &summary_report(&r, Some(10)));
}

#[test]
fn faulted_summary_report_matches_golden() {
    let (tf, records) = fixture();
    let inj = FaultInjector::new(FaultSpec::uniform(120_000), 42);
    let bytes = inj.corrupt_upload(serialize_raw(&inj.corrupt_records(&records)));
    let r = analyze(&tf, &bytes);
    assert!(
        !r.anomalies.is_clean(),
        "seed 42 at 12% must corrupt the fixture: {:?}",
        inj.counts()
    );
    check("faulted_report.txt", &summary_report(&r, Some(10)));
}

#[test]
fn faulted_trace_matches_golden() {
    let (tf, records) = fixture();
    let inj = FaultInjector::new(FaultSpec::uniform(120_000), 42);
    let bytes = inj.corrupt_upload(serialize_raw(&inj.corrupt_records(&records)));
    let r = analyze(&tf, &bytes);
    check(
        "faulted_trace.txt",
        &trace_report(&r, &TraceStyle::default()),
    );
}

#[test]
fn clean_trace_matches_golden() {
    let (tf, records) = fixture();
    let r = analyze(&tf, &serialize_raw(&records));
    check("clean_trace.txt", &trace_report(&r, &TraceStyle::default()));
}
