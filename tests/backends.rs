//! The capture-backend API end to end: one scenario, written once,
//! observed by all four backends through the same
//! `Experiment::backend(...).try_capture()` lifecycle — plus the
//! adapter identity (the board backend is the paper's capture, exactly)
//! and the failure paths.

use hwprof::{
    scenarios, BoardBackend, CaptureBackend, CounterModel, CountersBackend, Error, Experiment,
    KtraceBackend, NativeCapture, SamplingBackend, Scenario,
};

fn workload() -> Scenario {
    scenarios::network_receive(8 * 1024, false)
}

/// The acceptance criterion verbatim: the same scenario runs unmodified
/// under every backend, and every backend normalizes into the same
/// `Reconstruction` monoid.
#[test]
fn one_scenario_runs_under_all_four_backends() {
    let backends: Vec<Box<dyn CaptureBackend>> = vec![
        Box::new(BoardBackend),
        Box::new(SamplingBackend::statclock(5000)),
        Box::new(CountersBackend::default()),
        Box::new(KtraceBackend::default()),
    ];
    let mut seen = Vec::new();
    for backend in backends {
        let name = backend.name();
        let cap = Experiment::new()
            .backend_boxed(backend)
            .scenario(workload())
            .try_capture()
            .unwrap_or_else(|e| panic!("{name} capture failed: {e}"));
        assert_eq!(cap.backend, name);
        assert!(cap.native.events() > 0, "{name} observed nothing");
        assert!(
            cap.profile.total_elapsed > 0,
            "{name} normalized to an empty profile"
        );
        // Every backend's output drives the same unified Profile view.
        let trace = cap.as_profile().chrome_trace();
        assert!(trace.contains("traceEvents"), "{name} export broke");
        seen.push(name);
    }
    assert_eq!(seen, ["board", "sampling", "counters", "ktrace"]);
}

/// The board backend is a zero-cost adapter: bit-identical records and
/// reconstruction to the pre-redesign `try_run` + `analyze` path.
#[test]
fn board_backend_is_bit_identical_to_try_run() {
    let direct = Experiment::new()
        .scenario(workload())
        .try_run()
        .expect("direct run");
    let via_backend = Experiment::new()
        .scenario(workload())
        .try_capture()
        .expect("backend run");
    assert_eq!(via_backend.backend, "board");
    let NativeCapture::Banks(banks) = &via_backend.native else {
        panic!("board backend must capture record banks");
    };
    assert_eq!(banks.len(), 1);
    assert_eq!(banks[0], direct.records, "native records diverged");
    assert_eq!(
        via_backend.profile,
        direct.analyze(),
        "adapter reconstruction diverged from the direct capture"
    );
}

/// Sampling runs against a production build (no triggers) and its
/// normalization conserves time exactly: kernel shares + idle account
/// for every sample.
#[test]
fn sampling_backend_conserves_sampled_time() {
    let cap = Experiment::new()
        .backend(SamplingBackend::statclock(5000))
        .scenario(workload())
        .try_capture()
        .expect("sampling capture");
    assert!(!cap.cost.counts_calls);
    let NativeCapture::Samples(p) = &cap.native else {
        panic!("sampling backend must capture samples");
    };
    assert!(p.total > 0);
    let kernel_us: u64 = cap.profile.stats.iter().map(|a| a.net).sum();
    assert_eq!(kernel_us + cap.profile.idle, cap.profile.total_elapsed);
    // No record sessions sit behind a sampled histogram.
    assert_eq!(cap.profile.sessions, 0);
}

/// The counters backend refutes — or fails to refute — a board profile
/// from the *same* run: CounterPoint's cross-check, here between the
/// kernel's own always-on counters and the reconstruction.
#[test]
fn counter_cross_checks_agree_with_the_board_on_the_same_run() {
    let cap = Experiment::new()
        .scenario(workload())
        .try_capture()
        .expect("board capture");
    let checks = CounterModel::default().cross_checks(&cap.kernel.stats, &cap.profile, 0.05);
    assert!(!checks.is_empty());
    let ticks = checks
        .iter()
        .find(|c| c.counter == "ticks")
        .expect("ticks anchor present");
    assert!(
        ticks.agrees,
        "board hardclock calls {} vs counted ticks {}",
        ticks.profiled, ticks.counted
    );
    assert!(
        checks.iter().all(|c| c.agrees),
        "same-run profile refuted by its own counters: {checks:?}"
    );
}

/// A deliberately tiny trace buffer overflows and the backend refuses
/// the capture — a non-retryable BackendFailed, not a silent bias.
#[test]
fn ktrace_overflow_is_a_backend_failure() {
    let err = match Experiment::new()
        .backend(KtraceBackend { capacity: 16 })
        .scenario(workload())
        .try_capture()
    {
        Ok(_) => panic!("16-event buffer must overflow"),
        Err(e) => e,
    };
    match &err {
        Error::BackendFailed { backend, reason } => {
            assert_eq!(*backend, "ktrace");
            assert!(reason.contains("overflow"), "unexpected reason: {reason}");
        }
        other => panic!("expected BackendFailed, got {other}"),
    }
    assert!(!err.is_retryable(), "a deterministic overflow re-occurs");
}

/// Ktrace decodes through the very same tag file and analyzer as the
/// board: same functions observed, call counts in the same ballpark
/// (its per-event cost shifts interrupt timing, so exact equality is
/// not expected — that perturbation is the point).
#[test]
fn ktrace_sees_the_board_functions() {
    let board = Experiment::new()
        .scenario(workload())
        .try_capture()
        .expect("board capture");
    let ktrace = Experiment::new()
        .backend(KtraceBackend::default())
        .scenario(workload())
        .try_capture()
        .expect("ktrace capture");
    for name in ["bcopy", "ipintr", "in_cksum"] {
        let b = board.profile.agg(name).expect("board symbol").calls;
        let k = ktrace.profile.agg(name).expect("ktrace symbol").calls;
        assert!(b > 0, "board never saw {name}");
        assert!(k > 0, "ktrace never saw {name}");
    }
}
