//! End-to-end flight recorder: `Experiment::record()` runs the full
//! supervised capture path with an always-on recorder subscribed, and
//! the handle's query surface — windows, ranges, diffs, the eviction
//! ledger — behaves over a real workload, deterministically.

use hwprof::profiler::BoardConfig;
use hwprof::{
    scenarios, validate_json, Experiment, RecorderConfig, Registry, SpanLog, SupervisorPolicy,
};

const SEED: u64 = 0x1993_0617;

fn policy() -> SupervisorPolicy {
    SupervisorPolicy {
        seed: SEED,
        min_coverage_ppm: 0,
        drain_budget_us: 2_000,
        ..SupervisorPolicy::default()
    }
}

fn experiment() -> Experiment {
    Experiment::new()
        .profile_all()
        .board(BoardConfig {
            capacity: 1024,
            time_bits: 24,
        })
        .scenario(scenarios::network_receive(256 * 1024, true))
}

#[test]
fn record_builds_an_exact_window_ring() {
    let cfg = RecorderConfig::builder()
        .window_us(5_000)
        .retain(512)
        .build()
        .expect("valid config");
    let handle = experiment().record(policy(), cfg).expect("recorded run");

    let retained = handle.retained();
    assert!(!retained.is_empty(), "a real run must retain windows");
    let ledger = handle.ledger();
    assert!(ledger.is_exact(), "{}", ledger.describe());
    assert_eq!(ledger.evicted_windows, 0, "512 windows must be plenty");
    assert_eq!(
        ledger.covered_us + ledger.dark_us,
        handle.coverage().timeline_us,
        "an unevicted ring must tile the run's whole timeline"
    );
    assert_eq!(ledger.covered_us, handle.coverage().covered_us);

    // Every retained window folds; both neighbours outside refuse.
    for w in retained.clone() {
        let rollup = handle.window(w).expect("retained window folds");
        assert_eq!(rollup.index, w);
        assert!(rollup.start_us <= rollup.end_us);
    }
    if retained.start > 0 {
        assert!(handle.window(retained.start - 1).is_none());
    }
    assert!(handle.window(retained.end).is_none());

    // A range is the monoid fold of its windows.
    let merged = handle
        .range(retained.clone())
        .expect("full retained range folds");
    let mut fold = handle.window(retained.start).expect("retained").recon;
    for w in retained.start + 1..retained.end {
        fold.merge(handle.window(w).expect("retained").recon);
    }
    assert!(merged.recon == fold, "range diverged from the window fold");

    // The windows' net time never out-claims the one-shot analysis.
    let window_net: u64 = merged.recon.stats.iter().map(|a| a.net).sum();
    let run_net: u64 = handle.profile.stats.iter().map(|a| a.net).sum();
    assert!(window_net <= run_net);
    assert!(window_net > 0, "the workload must land events in windows");

    // The full-run profile renders through the same unified surface.
    let chrome = handle.as_profile().name("recorded").chrome_trace();
    validate_json(&chrome).expect("chrome export is valid JSON");
}

#[test]
fn eviction_keeps_the_ledger_exact() {
    let cfg = RecorderConfig::builder()
        .window_us(2_000)
        .retain(2)
        .build()
        .expect("valid config");
    let handle = experiment().record(policy(), cfg).expect("recorded run");
    let ledger = handle.ledger();
    assert!(
        ledger.evicted_windows > 0,
        "two windows cannot hold this run"
    );
    assert!(ledger.evicted_us > 0);
    assert!(ledger.is_exact(), "{}", ledger.describe());
    assert_eq!(ledger.windows, 2);
    // Evicted windows refuse queries instead of answering partially.
    let retained = handle.retained();
    assert!(handle.window(retained.start - 1).is_none());
    assert!(handle.diff(retained.start - 1, retained.start).is_none());
}

#[test]
fn diffs_and_reports_are_deterministic() {
    let run = || {
        let cfg = RecorderConfig::builder()
            .window_us(5_000)
            .retain(512)
            .build()
            .expect("valid config");
        experiment().record(policy(), cfg).expect("recorded run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.retained(), b.retained());
    assert_eq!(a.ledger(), b.ledger());
    let r = a.retained();
    let (lo, hi) = (r.start, r.end - 1);
    let da = a.diff(lo, hi).expect("both retained");
    let db = b.diff(lo, hi).expect("both retained");
    assert_eq!(da.describe(), db.describe());
    assert_eq!(da.html(), db.html(), "diff HTML must be byte-identical");
    assert_eq!(
        a.window(hi).expect("retained").html(),
        b.window(hi).expect("retained").html(),
        "window HTML must be byte-identical"
    );
    assert!(da.html().starts_with("<!DOCTYPE html>"));
}

#[test]
fn telemetry_and_journal_observe_the_recorder() {
    let reg = Registry::new();
    let log = SpanLog::new();
    let cfg = RecorderConfig::builder()
        .window_us(5_000)
        .retain(512)
        .build()
        .expect("valid config");
    let handle = experiment()
        .telemetry(&reg)
        .journal(&log)
        .record(policy(), cfg)
        .expect("recorded run");
    let snap = handle.metrics().expect("telemetry configured");
    assert_eq!(
        snap.value("rec.sessions"),
        Some(handle.run.sessions.len() as u64),
        "the recorder must have seen every delivered session"
    );
    assert_eq!(
        snap.value("rec.retained"),
        Some(handle.ledger().windows),
        "retained gauge agrees with the ledger"
    );
    // The journal carries the recorder lane; it renders into the
    // unified timeline alongside everything else.
    let chrome = handle.as_profile().chrome_trace();
    validate_json(&chrome).expect("chrome export is valid JSON");
    assert!(
        chrome.contains("\"window\""),
        "window spans must reach the exported timeline"
    );
}
