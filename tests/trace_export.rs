//! End-to-end trace export: the Figure-4 fixture pinned byte-for-byte
//! in all three export formats, and a seeded supervised run rendering
//! as one unified Perfetto timeline — kernel spans, coverage overlay
//! and the pipeline span journal on the same clock — with the journal
//! observationally pure.
//!
//! Regenerate the goldens after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p hwprof --test trace_export
//! ```

use std::fs;
use std::path::PathBuf;

use hwprof::analysis::{decode_recovering, reconstruct_session_recovering, Reconstruction};
use hwprof::profiler::{parse_raw_lossy, serialize_raw, BoardConfig, RawRecord};
use hwprof::tagfile::{TagFile, TagKind};
use hwprof::{
    scenarios, validate_json, Experiment, JsonValue, Profile, SpanLog, SupervisedCapture,
    SupervisorPolicy,
};

const SEED: u64 = 0x1993_0617;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "output drifted from tests/golden/{name}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// The Figure-4 fixture from the golden-report suite: three functions
/// with nesting, a context switch, and an inline mark, repeated four
/// times.
fn fixture() -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(500);
    let read = tf.assign("vn_read", TagKind::Function).expect("fresh");
    let copy = tf.assign("bcopy", TagKind::Function).expect("fresh");
    let intr = tf.assign("clock_intr", TagKind::Function).expect("fresh");
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    let mark = tf.assign("MARK_IDLE", TagKind::Inline).expect("fresh");
    let mut records = Vec::new();
    let mut t = 100u64;
    for _ in 0..4 {
        records.push(RawRecord::latch(read, t));
        records.push(RawRecord::latch(copy, t + 10));
        records.push(RawRecord::latch(copy + 1, t + 40));
        records.push(RawRecord::latch(mark, t + 45));
        records.push(RawRecord::latch(read + 1, t + 60));
        records.push(RawRecord::latch(swtch, t + 70));
        records.push(RawRecord::latch(intr, t + 75));
        records.push(RawRecord::latch(intr + 1, t + 90));
        records.push(RawRecord::latch(swtch + 1, t + 95));
        t += 120;
    }
    (tf, records)
}

fn figure4() -> Reconstruction {
    let (tf, records) = fixture();
    let (parsed, trailing) = parse_raw_lossy(&serialize_raw(&records));
    assert_eq!(trailing, 0);
    let (syms, events, anoms) = decode_recovering(&parsed, &tf);
    let r = reconstruct_session_recovering(&syms, &events);
    assert!(anoms.is_clean(), "fixture must decode cleanly");
    r
}

#[test]
fn figure4_chrome_trace_matches_golden() {
    let r = figure4();
    let chrome = Profile::new(&r).name("figure 4").chrome_trace();
    validate_json(&chrome).expect("chrome export is valid JSON");
    check("figure4_trace.json", &chrome);
}

#[test]
fn figure4_speedscope_matches_golden() {
    let r = figure4();
    let ss = Profile::new(&r).name("figure 4").speedscope();
    validate_json(&ss).expect("speedscope export is valid JSON");
    check("figure4.speedscope.json", &ss);
}

#[test]
fn figure4_folded_matches_golden() {
    let r = figure4();
    let folded = Profile::new(&r).folded();
    let total: u64 = folded
        .lines()
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|w| w.parse::<u64>().ok())
        .sum();
    let net: u64 = r.stats.iter().map(|a| a.net).sum();
    assert_eq!(total, net, "folded weights must sum to the net accounting");
    check("figure4.folded", &folded);
}

/// A small seeded supervised run with the journal recording.
fn supervised(journal: Option<&SpanLog>) -> SupervisedCapture {
    let policy = SupervisorPolicy {
        seed: SEED,
        min_coverage_ppm: 0,
        drain_budget_us: 2_000,
        ..SupervisorPolicy::default()
    };
    let mut e = Experiment::new()
        .profile_all()
        .board(BoardConfig {
            capacity: 1024,
            time_bits: 24,
        })
        .scenario(scenarios::network_receive(256 * 1024, true));
    if let Some(log) = journal {
        e = e.journal(log);
    }
    e.supervised(policy).expect("supervised run")
}

#[test]
fn supervised_export_is_one_unified_timeline() {
    let log = SpanLog::new();
    let cap = supervised(Some(&log));
    assert!(!cap.run.sessions.is_empty());
    assert!(!log.is_empty(), "journal must have recorded pipeline spans");

    let chrome = cap.as_profile().name("supervised").chrome_trace();
    let parsed = validate_json(&chrome).expect("chrome export is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    // Every B nests against a matching-name E per (pid, tid); tally the
    // timeline layers while walking.
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let mut kernel_spans = 0usize;
    let mut gap_instants = 0u64;
    let mut mask_marks = 0usize;
    let mut pipeline_slices = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let pid = ev.get("pid").and_then(JsonValue::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match ph {
            "B" => {
                if pid > 0 && pid < 1_000_000 {
                    kernel_spans += 1;
                }
                stacks.entry((pid, tid)).or_default().push(name.to_string());
            }
            "E" => {
                let open = stacks.entry((pid, tid)).or_default().pop();
                assert_eq!(open.as_deref(), Some(name), "E must close the open B");
            }
            "i" => {
                if name.starts_with("gap (") {
                    gap_instants += 1;
                }
                if name.starts_with("mask level = ") {
                    mask_marks += 1;
                }
            }
            "X" if pid == 1_000_000 => pipeline_slices += 1,
            _ => {}
        }
    }
    assert!(stacks.values().all(Vec::is_empty), "unclosed B spans");
    assert!(kernel_spans >= 1, "kernel call spans must be present");
    assert_eq!(gap_instants, cap.coverage().gaps, "one instant per gap");
    assert!(mask_marks >= 1, "mask-level markers must be present");
    assert!(pipeline_slices >= 1, "journal lanes must be present");
}

#[test]
fn journal_is_observationally_pure() {
    let log = SpanLog::new();
    let with = supervised(Some(&log));
    let without = supervised(None);
    assert_eq!(with.run.sessions, without.run.sessions);
    assert_eq!(with.run.gaps, without.run.gaps);
    assert_eq!(with.run.coverage, without.run.coverage);
    assert_eq!(
        with.as_profile().folded(),
        without.as_profile().folded(),
        "journal must not perturb the profile"
    );
}

#[test]
fn folded_total_matches_net_accounting_supervised() {
    let cap = supervised(None);
    let folded = cap.as_profile().folded();
    let total: u64 = folded
        .lines()
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|w| w.parse::<u64>().ok())
        .sum();
    let net: u64 = cap.profile.stats.iter().map(|a| a.net).sum();
    assert_eq!(total, net);
}
