//! Backend normalization property suite: every backend's output merges
//! through the `Reconstruction` monoid bit-identically no matter how
//! the native capture is chunked, and the board backend is a perfect
//! adapter over the direct board capture.
//!
//! The fixtures (one deterministic run per backend) are captured once;
//! each property then randomizes only the chunking/splitting, so the
//! suite stays fast at the CI-pinned 256 cases.

use std::sync::OnceLock;

use proptest::prelude::*;

use hwprof::analysis::{Analyzer, Reconstruction};
use hwprof::baseline::{CounterModel, SampleProfile};
use hwprof::kernel386::kernel::KernStats;
use hwprof::profiler::RawRecord;
use hwprof::tagfile::TagFile;
use hwprof::{
    scenarios, BoardBackend, CountersBackend, Experiment, KtraceBackend, NativeCapture,
    SamplingBackend,
};

/// One deterministic capture per backend, taken once for the suite.
struct Fixture {
    tagfile: TagFile,
    board_bank: Vec<RawRecord>,
    ktrace_bank: Vec<RawRecord>,
    samples: SampleProfile,
    stats: KernStats,
}

fn capture_bank(
    backend_run: Result<hwprof::BackendCapture, hwprof::Error>,
) -> (TagFile, Vec<RawRecord>) {
    let cap = backend_run.expect("fixture capture");
    let NativeCapture::Banks(mut banks) = cap.native else {
        panic!("expected record banks");
    };
    assert_eq!(banks.len(), 1);
    (cap.tagfile, banks.remove(0))
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = || scenarios::network_receive(4 * 1024, false);
        let (tagfile, board_bank) = capture_bank(
            Experiment::new()
                .backend(BoardBackend)
                .scenario(scenario())
                .try_capture(),
        );
        let (_, ktrace_bank) = capture_bank(
            Experiment::new()
                .backend(KtraceBackend::default())
                .scenario(scenario())
                .try_capture(),
        );
        let sampled = Experiment::new()
            .backend(SamplingBackend::statclock(5000))
            .scenario(scenario())
            .try_capture()
            .expect("sampling fixture");
        let NativeCapture::Samples(samples) = sampled.native else {
            panic!("expected samples");
        };
        let counted = Experiment::new()
            .backend(CountersBackend::default())
            .scenario(scenario())
            .try_capture()
            .expect("counters fixture");
        let NativeCapture::Counters(stats) = counted.native else {
            panic!("expected counters");
        };
        Fixture {
            tagfile,
            board_bank,
            ktrace_bank,
            samples,
            stats,
        }
    })
}

/// Splits `v` into `(x, v - x)` by the random word `r`.
fn split(v: u64, r: u64) -> (u64, u64) {
    let x = if v == 0 { 0 } else { r % (v + 1) };
    (x, v - x)
}

/// Groups `sessions` into consecutive chunks (break before session `i`
/// when `breaks[i]`), analyzes each chunk independently, and merges.
fn analyze_chunked(
    tagfile: &TagFile,
    sessions: &[&[RawRecord]],
    breaks: &[bool],
) -> Reconstruction {
    let a = Analyzer::for_tagfile(tagfile);
    let mut merged = Reconstruction::empty(a.symbols().clone());
    let mut chunk: Vec<&[RawRecord]> = Vec::new();
    for (i, s) in sessions.iter().enumerate() {
        if i > 0 && breaks[i % breaks.len()] && !chunk.is_empty() {
            merged.merge(a.record_sessions(chunk.drain(..)).expect("chunk decodes"));
        }
        chunk.push(s);
    }
    if !chunk.is_empty() {
        merged.merge(a.record_sessions(chunk).expect("chunk decodes"));
    }
    merged
}

/// The record-bank law shared by the board and ktrace backends: any
/// grouping of the capture sessions into consecutive chunks, analyzed
/// independently and merged, is bit-identical to one pass.
fn banks_law(bank: &[RawRecord], copies: usize, breaks: &[bool]) -> Result<(), TestCaseError> {
    let fx = fixture();
    let sessions: Vec<&[RawRecord]> = (0..copies).map(|_| bank).collect();
    let whole = Analyzer::for_tagfile(&fx.tagfile)
        .record_sessions(sessions.iter().copied())
        .expect("whole decodes");
    let chunked = analyze_chunked(&fx.tagfile, &sessions, breaks);
    prop_assert_eq!(whole, chunked);
    Ok(())
}

proptest! {
    #[test]
    fn board_banks_merge_bit_identically(
        copies in 1usize..6,
        breaks in prop::collection::vec(0u8..2, 6..7),
    ) {
        let breaks: Vec<bool> = breaks.iter().map(|&b| b == 1).collect();
        banks_law(&fixture().board_bank, copies, &breaks)?;
    }

    #[test]
    fn ktrace_banks_merge_bit_identically(
        copies in 1usize..6,
        breaks in prop::collection::vec(0u8..2, 6..7),
    ) {
        let breaks: Vec<bool> = breaks.iter().map(|&b| b == 1).collect();
        banks_law(&fixture().ktrace_bank, copies, &breaks)?;
    }

    #[test]
    fn sampling_normalization_is_chunk_invariant(
        seeds in prop::collection::vec(0u64..u64::MAX, 8..33),
    ) {
        // Split the histogram additively into two profiles; the merged
        // normalizations must be bit-identical to normalizing whole.
        let p = &fixture().samples;
        let r = |i: usize| seeds[i % seeds.len()];
        let mut a = SampleProfile {
            rate_hz: p.rate_hz,
            counts: vec![0; p.counts.len()],
            idle_samples: 0,
            user_samples: 0,
            total: 0,
        };
        let mut b = a.clone();
        for (i, &c) in p.counts.iter().enumerate() {
            let (x, y) = split(c, r(i));
            a.counts[i] = x;
            b.counts[i] = y;
        }
        let n = p.counts.len();
        (a.idle_samples, b.idle_samples) = split(p.idle_samples, r(n));
        (a.user_samples, b.user_samples) = split(p.user_samples, r(n + 1));
        (a.total, b.total) = split(p.total, r(n + 2));
        let mut merged = a.normalize();
        merged.merge(b.normalize());
        prop_assert_eq!(merged, p.normalize());
    }

    #[test]
    fn counters_normalization_is_chunk_invariant(
        seeds in prop::collection::vec(0u64..u64::MAX, 8..33),
    ) {
        let s = &fixture().stats;
        let model = CounterModel::default();
        let r = |i: usize| seeds[i % seeds.len()];
        let mut a = KernStats::default();
        let mut b = KernStats::default();
        (a.intrs, b.intrs) = split(s.intrs, r(0));
        (a.ticks, b.ticks) = split(s.ticks, r(1));
        (a.cswitches, b.cswitches) = split(s.cswitches, r(2));
        (a.syscalls, b.syscalls) = split(s.syscalls, r(3));
        (a.packets_in, b.packets_in) = split(s.packets_in, r(4));
        (a.packets_out, b.packets_out) = split(s.packets_out, r(5));
        (a.disk_xfers, b.disk_xfers) = split(s.disk_xfers, r(6));
        (a.page_faults, b.page_faults) = split(s.page_faults, r(7));
        let mut merged = model.normalize(&a);
        merged.merge(model.normalize(&b));
        prop_assert_eq!(merged, model.normalize(s));
    }

}

/// Two independent backend captures of the same scenario are
/// bit-identical — the determinism the E19 gate pins.
#[test]
fn board_adapter_is_deterministic() {
    let fx = fixture();
    let (_, again) = capture_bank(
        Experiment::new()
            .backend(BoardBackend)
            .scenario(scenarios::network_receive(4 * 1024, false))
            .try_capture(),
    );
    assert_eq!(again, fx.board_bank);
}
