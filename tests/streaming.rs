//! The streaming pipeline end to end: drain-while-armed captures that
//! blow far past the 16384-event RAM, plus the `try_run` error paths.

use hwprof::analysis::Reconstruction;
use hwprof::profiler::BoardConfig;
use hwprof::{scenarios, Error, Experiment, Scenario};

/// Function names by descending net CPU, the Figure 3 ranking.
fn net_ranking(r: &Reconstruction, n: usize) -> Vec<String> {
    let mut v: Vec<(u64, String)> = r
        .stats
        .iter()
        .enumerate()
        .filter(|(_, a)| a.calls > 0)
        .map(|(i, a)| (a.net, r.syms.name(i as u32).to_string()))
        .collect();
    v.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    v.into_iter().take(n).map(|(_, name)| name).collect()
}

#[test]
fn streaming_drain_captures_beyond_the_ram() {
    // ~2.5 MB of saturated TCP fills a stock board many times over: the
    // one-shot capture stops at 16384 events, the streaming capture
    // keeps going to the end of the workload.
    let total = 2500 * 1024;
    let stream = Experiment::new()
        .profile_all()
        .board(BoardConfig::default())
        .scenario(scenarios::network_receive(total, true))
        .try_run_streaming(4)
        .expect("the pipeline keeps up with the board");
    assert!(
        stream.profile.tags >= 200_000,
        "wanted a 200k+ event capture, got {}",
        stream.profile.tags
    );
    assert!(stream.banks >= 10, "only {} banks drained", stream.banks);
    assert_eq!(stream.missed, 0, "no trigger was ever missed");
    assert_eq!(stream.profile.sessions as u64, stream.banks);

    // The same workload into one giant future-work board, analyzed in
    // batch: the streamed profile must tell the same Figure 3 story.
    let big = Experiment::new()
        .profile_all()
        .board(BoardConfig {
            capacity: 1 << 21,
            time_bits: 24,
        })
        .scenario(scenarios::network_receive(total, true))
        .try_run()
        .expect("experiment runs");
    assert!(!big.overflowed, "the big board holds the whole run");
    let batch = big.analyze();
    assert_eq!(
        net_ranking(&stream.profile, 5),
        net_ranking(&batch, 5),
        "streamed top-5 net ranking diverged from the one-shot capture"
    );
    // Bank boundaries reset the reconstruction stacks, so per-function
    // aggregates may differ by the frames open at each boundary — but
    // only by that much.  Net CPU of the top function agrees to <1%.
    let hot = &net_ranking(&batch, 1)[0];
    let a = stream.profile.agg(hot).expect("hot fn in stream");
    let b = batch.agg(hot).expect("hot fn in batch");
    let drift = (a.net as f64 - b.net as f64).abs() / b.net as f64;
    assert!(drift < 0.01, "{hot} net drifted {:.3}%", drift * 100.0);
}

#[test]
fn streaming_refusal_is_a_board_overflow_error() {
    // One worker, a one-bank backlog and a huge workload: the pipeline
    // cannot keep up by construction... except analysis is fast, so
    // instead make the board tiny and the backlog minimal to force a
    // refusal window.  If the run still keeps up, the error simply does
    // not fire — so assert on the invariant both ways.
    let result = Experiment::new()
        .profile_all()
        .board(BoardConfig {
            capacity: 2,
            time_bits: 24,
        })
        .scenario(scenarios::network_receive(64 * 1024, true))
        .try_run_streaming(1);
    match result {
        Ok(c) => assert_eq!(c.missed, 0),
        Err(Error::BoardOverflow { banks, .. }) => assert!(banks >= 1),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn missing_scenario_is_an_error_not_a_panic() {
    match Experiment::new().try_run() {
        Err(Error::MissingScenario) => {}
        Ok(_) => panic!("ran without a scenario"),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn empty_scenario_is_an_error_not_a_panic() {
    let nothing = Scenario::builder().build();
    match Experiment::new().scenario(nothing).try_run() {
        Err(Error::EmptyScenario) => {}
        Ok(_) => panic!("ran an empty scenario"),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn streaming_and_batch_see_the_same_event_count() {
    // A workload small enough for one bank: streaming degenerates to a
    // single session and the profile equals the batch answer exactly.
    let stream = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(5))
        .try_run_streaming(2)
        .expect("tiny run");
    let batch = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(5))
        .try_run()
        .expect("experiment runs");
    assert_eq!(stream.profile.tags, batch.records.len());
    assert_eq!(stream.banks, 1, "one final flush bank");
    let r = batch.analyze();
    assert_eq!(stream.profile.total_elapsed, r.total_elapsed);
    assert_eq!(
        net_ranking(&stream.profile, 3),
        net_ranking(&r, 3),
        "single-bank stream must match batch"
    );
}
