//! Shape guards for every reproduced table and figure: lighter-weight
//! versions of the `repro_*` binaries that `cargo test` runs on every
//! change.  Absolute numbers are allowed to drift inside bands; the
//! *orderings and ratios* the paper's conclusions rest on are asserted.

use hwprof::analysis::groups::{bsd_subsystem, group_summary};
use hwprof::kernel386::kernel::KernelConfig;
use hwprof::profiler::BoardConfig;
use hwprof::{scenarios, Experiment};

/// Figure 3: bcopy + in_cksum dominate a saturated receive; spl* is a
/// significant tax; the CPU saturates.
#[test]
fn fig3_network_summary_shape() {
    let capture = Experiment::new()
        .profile_modules(&["net", "locore", "kern", "sys"])
        .board(BoardConfig::wide())
        .scenario(scenarios::network_receive(200 * 1024, true))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    let busy = r.run_time() as f64 / r.total_elapsed.max(1) as f64;
    assert!(busy > 0.90, "CPU busy {busy:.2}");
    let bcopy = r.pct_real("bcopy");
    let cksum = r.pct_real("in_cksum");
    assert!(bcopy > 25.0, "bcopy {bcopy:.1}%");
    assert!(cksum > 25.0, "in_cksum {cksum:.1}%");
    assert!(bcopy + cksum > 60.0, "the two giants {:.1}%", bcopy + cksum);
    let spl: f64 = ["splnet", "splx", "spl0", "splhigh", "splimp"]
        .iter()
        .map(|f| r.pct_real(f))
        .sum();
    assert!((3.0..16.0).contains(&spl), "spl* {spl:.1}%");
    let sor = r.agg("soreceive").expect("soreceive profiled");
    assert!(sor.elapsed > sor.net * 5, "soreceive sleeps inside");
    // Subsystem grouping puts copy+net on top.
    let groups = group_summary(&r, bsd_subsystem);
    assert!(groups[0].name == "copy" || groups[0].name == "net");
}

/// Figure 5 + fork/exec timings: pmap dominates, pmap_pte explodes.
#[test]
fn fig5_forkexec_shape() {
    let capture = Experiment::new()
        .profile_modules(&["vm", "kern", "sys", "locore"])
        .board(BoardConfig::wide())
        .scenario(scenarios::forkexec_loop(3))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    let pte = r.agg("pmap_pte").expect("pmap_pte profiled");
    let forks = r.agg("fork1").expect("fork1").calls;
    assert_eq!(forks, 3);
    // ~1053 pmap_pte per fork and "a similar amount when an exec is
    // done": >600 per fork/exec/exit cycle at minimum.
    assert!(
        pte.calls > forks * 1500,
        "pmap_pte {} calls over {forks} cycles",
        pte.calls
    );
    // vfork and execve land in the paper's tens-of-milliseconds band.
    let vfork = r.agg("fork1").expect("fork1");
    let execve = r.agg("execve").expect("execve");
    let vfork_ms = vfork.elapsed / vfork.calls.max(1) / 1000;
    let exec_ms = execve.elapsed / execve.calls.max(1) / 1000;
    assert!((8..60).contains(&vfork_ms), "vfork {vfork_ms} ms");
    assert!((8..60).contains(&exec_ms), "execve {exec_ms} ms");
    // Over 50% of non-idle time in the VM subsystem.
    let groups = group_summary(&r, bsd_subsystem);
    let vm_net = groups
        .iter()
        .find(|g| g.name == "vm")
        .expect("vm group")
        .net;
    assert!(
        vm_net * 2 > r.run_time(),
        "VM is {vm_net} of {} us run time",
        r.run_time()
    );
    // pmap_remove and pmap_pte are the top two vm sinks.
    let remove = r.agg("pmap_remove").expect("pmap_remove").net;
    let protect = r.agg("pmap_protect").expect("pmap_protect").net;
    assert!(remove > protect, "remove {remove} vs protect {protect}");
}

/// Clock study: tick ~94 µs, AST emulation ~24 µs of it.
#[test]
fn clock_tick_costs_shape() {
    let capture = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(100))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    let isa = r.agg("ISAINTR").expect("ISAINTR profiled");
    let tick_us = isa.elapsed / isa.calls.max(1);
    assert!(
        (70..130).contains(&tick_us),
        "clock tick {tick_us} us (paper 94)"
    );
    let hc = r.agg("hardclock").expect("hardclock");
    assert!(hc.calls >= 95, "hardclock {} calls", hc.calls);
    // Idle machine: ~99% idle.
    assert!(r.idle * 10 > r.total_elapsed * 9);
}

/// Filesystem study: fast buffered write interrupts, seek-bound
/// throughput, CPU mostly idle.
#[test]
fn fs_write_shape() {
    let capture = Experiment::new()
        .profile_modules(&["fs", "locore", "kern", "sys"])
        .board(BoardConfig::wide())
        .scenario(scenarios::fs_writer(120))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    let wdintr = r.agg("wdintr").expect("wdintr profiled");
    let per_intr = wdintr.elapsed / wdintr.calls.max(1);
    // "Each write interrupt took about 200 us in total, with about 149
    // us of that being actual transfer time".
    assert!(
        (150..260).contains(&per_intr),
        "write interrupt {per_intr} us"
    );
    assert!(wdintr.calls >= 120 * 8 - 16, "one interrupt per sector");
    // CPU well under half busy: seeks dominate.
    let busy = r.run_time() as f64 / r.total_elapsed.max(1) as f64;
    assert!(busy < 0.55, "CPU busy {busy:.2} writing");
}

/// NFS (UDP, no checksum) moves data with less CPU per byte than the
/// checksummed TCP stream.
#[test]
fn nfs_beats_ftp_shape() {
    let total = 96 * 1024;
    let nfs = Experiment::new()
        .profile_modules(&["net", "locore"])
        .board(BoardConfig::wide())
        .scenario(scenarios::nfs_stream(total))
        .try_run()
        .expect("experiment runs");
    let tcp = Experiment::new()
        .profile_modules(&["net", "locore"])
        .board(BoardConfig::wide())
        .scenario(scenarios::network_receive(total as u64, false))
        .try_run()
        .expect("experiment runs");
    let cpu_per_byte = |c: &hwprof::Capture| {
        (c.kernel.machine.now - c.kernel.sched.idle_cycles) as f64 / total as f64
    };
    let nfs_cost = cpu_per_byte(&nfs);
    let tcp_cost = cpu_per_byte(&tcp);
    assert!(
        nfs_cost < tcp_cost,
        "NFS {nfs_cost:.0} cycles/byte vs TCP {tcp_cost:.0}"
    );
    // And the difference is mostly the checksum: TCP spent a large
    // share in in_cksum, NFS close to none.
    let rn = nfs.analyze();
    let rt = tcp.analyze();
    assert!(rt.pct_real("in_cksum") > 10.0);
    assert!(rn.pct_real("in_cksum") < rt.pct_real("in_cksum") / 2.0);
}

/// Driver-recode ablation (68020 study): wide-burst copies double
/// throughput.
#[test]
fn driver_recode_shape() {
    let run = |word_copy: bool| {
        let capture = Experiment::new()
            .profile_modules(&["net", "locore"])
            .board(BoardConfig::wide())
            .config(KernelConfig {
                driver_word_copy: word_copy,
                ..KernelConfig::default()
            })
            .scenario(scenarios::network_receive(128 * 1024, true))
            .try_run()
            .expect("experiment runs");
        let k = &capture.kernel;
        let bytes = k.net.pcbs.first().map_or(0, |p| p.tcb.rcv_nxt as u64);
        let busy_us = (k.machine.now - k.sched.idle_cycles) / 40;
        bytes as f64 / busy_us.max(1) as f64
    };
    let naive = run(false);
    let recoded = run(true);
    let gain = recoded / naive;
    // On the PC the checksum and stack overhead dilute the copy's share;
    // the paper's 2x was on the embedded 68020 where the copy dominated.
    // The throughput must improve clearly, and the copy itself ~3x.
    assert!(
        gain > 1.2,
        "recoded driver only {gain:.2}x (paper: ~2x on the 68020)"
    );
}
