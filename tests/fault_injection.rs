//! The fault-injection harness end to end: rate-0 injection is the
//! identity, each single-fault class is accounted exactly in the
//! `Anomalies` summary, and a refusing bank sink yields a clean
//! `BoardOverflow` error plus a partial-but-analyzable capture.

use hwprof::analysis::{
    decode_recovering, reconstruct_session_recovering, summary_report, Anomalies, Reconstruction,
    SessionRecon, StreamAnalyzer, Symbols,
};
use hwprof::profiler::{
    parse_raw_lossy, serialize_raw, BankSink, BoardConfig, FaultInjector, FaultSpec, RawRecord,
};
use hwprof::tagfile::{TagFile, TagKind};
use hwprof::{scenarios, Error, Experiment};

/// A flat capture of `pairs` entry/exit pairs, every pair a *distinct*
/// function: no symbol ever repeats, so each injected fault maps to
/// exactly one anomaly class with no cross-talk (a dropped exit's stale
/// frame can never satisfy a later exit).
fn flat_stream(pairs: u16) -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(500);
    let mut records = Vec::new();
    let mut t = 0u64;
    for i in 0..pairs {
        let tag = tf
            .assign(&format!("fn{i}"), TagKind::Function)
            .expect("fresh name");
        records.push(RawRecord::latch(tag, t));
        records.push(RawRecord::latch(tag + 1, t + 5));
        t += 10;
    }
    (tf, records)
}

/// Recovery analysis of one corrupted upload byte stream.
fn analyze_bytes(tf: &TagFile, bytes: &[u8]) -> Reconstruction {
    let (records, trailing) = parse_raw_lossy(bytes);
    let (syms, events, anoms) = decode_recovering(&records, tf);
    let mut r = reconstruct_session_recovering(&syms, &events);
    r.note(&anoms);
    if trailing > 0 {
        r.note(&Anomalies {
            truncations: 1,
            ..Anomalies::default()
        });
    }
    r
}

fn inject(
    tf: &TagFile,
    records: &[RawRecord],
    spec: FaultSpec,
    seed: u64,
) -> (Reconstruction, hwprof::InjectedFaults) {
    let inj = FaultInjector::new(spec, seed);
    let bytes = inj.corrupt_upload(serialize_raw(&inj.corrupt_records(records)));
    (analyze_bytes(tf, &bytes), inj.counts())
}

#[test]
fn zero_rate_injection_is_bit_identical_to_direct_path() {
    let (tf, records) = flat_stream(2000);
    let direct = analyze_bytes(&tf, &serialize_raw(&records));
    let (through_faults, counts) = inject(&tf, &records, FaultSpec::none(), 0xDEAD_BEEF);
    assert_eq!(counts.total(), 0);
    assert_eq!(
        through_faults, direct,
        "rate-0 fault layer must be the identity"
    );
    assert!(direct.anomalies.is_clean());
}

#[test]
fn dropped_triggers_are_accounted_exactly() {
    let (tf, records) = flat_stream(2000);
    let spec = FaultSpec {
        drop_ppm: 5_000,
        ..FaultSpec::none()
    };
    let (r, counts) = inject(&tf, &records, spec, 11);
    assert!(counts.dropped > 0, "5000 ppm over 4000 records must hit");
    // A dropped entry leaves an orphan exit; a dropped exit leaves an
    // unmatched entry.  With all-distinct functions, nothing else.
    assert_eq!(
        r.anomalies.orphan_exits + r.anomalies.unmatched_entries,
        counts.dropped,
        "every dropped trigger must surface as exactly one anomaly"
    );
    assert_eq!(
        r.anomalies.total() - r.anomalies.orphan_exits - r.anomalies.unmatched_entries,
        0
    );
}

#[test]
fn stuck_counter_duplicates_are_accounted_exactly() {
    let (tf, records) = flat_stream(2000);
    let spec = FaultSpec {
        stuck_ppm: 5_000,
        ..FaultSpec::none()
    };
    let (r, counts) = inject(&tf, &records, spec, 12);
    assert!(counts.duplicated > 0);
    assert_eq!(r.anomalies.duplicates, counts.duplicated);
    // Duplicates are dropped at decode: the reconstruction is otherwise
    // clean.
    assert_eq!(r.anomalies.total(), counts.duplicated);
    let clean = analyze_bytes(&tf, &serialize_raw(&records));
    assert_eq!(r.total_elapsed, clean.total_elapsed);
    assert_eq!(
        r.stats, clean.stats,
        "dropping duplicates restores the clean stats"
    );
}

#[test]
fn spurious_tags_are_accounted_exactly() {
    let (tf, records) = flat_stream(2000);
    let spec = FaultSpec {
        spurious_ppm: 5_000,
        ..FaultSpec::none()
    };
    let (r, counts) = inject(&tf, &records, spec, 13);
    assert!(counts.spurious > 0);
    assert_eq!(r.anomalies.unknown_tags, counts.spurious);
    assert_eq!(r.anomalies.total(), counts.spurious);
}

#[test]
fn flipped_time_bits_are_accounted_exactly() {
    let (tf, records) = flat_stream(2000);
    // Pin the flip to time bit 23: every flip is one detectable,
    // clampable jump (a lone corrupt value bridged by the unwrapper).
    let spec = FaultSpec {
        flip_ppm: 5_000,
        flip_bit: Some(39),
        ..FaultSpec::none()
    };
    let (r, counts) = inject(&tf, &records, spec, 14);
    assert!(counts.flipped > 0);
    assert_eq!(r.anomalies.time_jumps, counts.flipped);
    assert_eq!(r.anomalies.total(), counts.flipped);
    // The clamp held: elapsed is unchanged from the clean session (each
    // corrupt value is bridged, its two deltas re-fused).
    let clean = analyze_bytes(&tf, &serialize_raw(&records));
    assert_eq!(r.total_elapsed, clean.total_elapsed);
}

#[test]
fn truncated_upload_is_accounted_exactly() {
    let (tf, records) = flat_stream(200);
    let spec = FaultSpec {
        truncate_ppm: 1_000_000,
        ..FaultSpec::none()
    };
    let inj = FaultInjector::new(spec, 15);
    let bytes = inj.corrupt_upload(serialize_raw(&inj.corrupt_records(&records)));
    assert_eq!(inj.counts().truncations, 1);
    let r = analyze_bytes(&tf, &bytes);
    assert_eq!(r.anomalies.truncations, 1);
    // The cut is mid-record: the final record is lost whole, so its
    // partner becomes one boundary anomaly alongside the truncation.
    assert!(r.anomalies.total() <= 2);
}

#[test]
fn experiment_fault_path_rate_zero_matches_direct_run() {
    let run = |faults: bool| {
        let mut e = Experiment::new()
            .profile_modules(&["kern", "locore"])
            .scenario(scenarios::clock_idle(5));
        if faults {
            e = e.faults(FaultSpec::none(), 99);
        }
        e.try_run().expect("tiny run")
    };
    let direct = run(false);
    let faulted = run(true);
    assert_eq!(
        direct.records, faulted.records,
        "rate 0 must not touch the upload"
    );
    assert_eq!(faulted.injected.expect("injector ran").total(), 0);
    assert_eq!(direct.injected, None);
    assert_eq!(
        direct.try_analyze(None).expect("ungated"),
        faulted.try_analyze(None).expect("ungated"),
        "recovery analysis must agree bit for bit"
    );
}

#[test]
fn experiment_fault_path_classifies_and_gates_corruption() {
    let run = || {
        Experiment::new()
            .profile_modules(&["kern", "locore"])
            .scenario(scenarios::clock_idle(20))
            .faults(FaultSpec::uniform(20_000), 7)
            .try_run()
            .expect("run survives injection")
    };
    let capture = run();
    let injected = capture.injected.expect("faults were configured");
    assert!(
        injected.total() > 0,
        "2% uniform rate must inject something"
    );
    let r = capture
        .try_analyze(None)
        .expect("default limit never refuses");
    assert!(
        !r.anomalies.is_clean(),
        "injected faults must surface in the anomaly summary: {injected:?}"
    );
    // The report carries the integrity block.
    let report = summary_report(&r, Some(10));
    assert!(report.contains("Capture integrity:"), "report:\n{report}");
    // The trust gate: a generous limit passes, a zero limit refuses.
    assert!(capture.try_analyze(Some(1_000_000)).is_ok());
    match capture.try_analyze(Some(0)) {
        Err(Error::CorruptUpload {
            anomalies,
            tags,
            limit_ppm,
        }) => {
            assert!(anomalies > 0);
            assert!(tags > 0);
            assert_eq!(limit_ppm, 0);
        }
        other => panic!("expected CorruptUpload, got {other:?}"),
    }
}

#[test]
fn refused_bank_is_a_board_overflow_error_not_a_hang() {
    // The operator runs out of empty RAMs after two banks: the third
    // refusal must surface as BoardOverflow from the streaming run.
    let result = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .board(BoardConfig {
            capacity: 64,
            time_bits: 24,
        })
        .scenario(scenarios::clock_idle(20))
        .faults(
            FaultSpec {
                refuse_after: Some(2),
                ..FaultSpec::none()
            },
            3,
        )
        .try_run_streaming(2);
    match result {
        Err(Error::BoardOverflow { banks, .. }) => {
            // Two accepted drains plus the refused one that lit the LED.
            assert_eq!(banks, 3, "two accepted banks and the refused third");
        }
        Ok(c) => panic!(
            "expected BoardOverflow, but the run completed with {} banks",
            c.banks
        ),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn refused_bank_capture_stays_analyzable() {
    // Analysis-level check of the same path: banks accepted before the
    // refusal still merge into a usable partial reconstruction.
    let (tf, records) = flat_stream(100);
    let mut analyzer = StreamAnalyzer::recovering(&tf, 2);
    let inj = FaultInjector::new(
        FaultSpec {
            refuse_after: Some(1),
            ..FaultSpec::none()
        },
        4,
    );
    let mut sink = inj.sink(Box::new(analyzer.feed().expect("open pipeline")));
    let half = records.len() / 2;
    assert!(sink.bank(records[..half].to_vec()), "first bank accepted");
    assert!(!sink.bank(records[half..].to_vec()), "second bank refused");
    drop(sink);
    let r = analyzer.finish().expect("pipeline drains without hanging");
    assert_eq!(inj.counts().refused_banks, 1);
    assert_eq!(r.sessions, 1, "only the accepted bank was analyzed");
    let expected_calls: u64 = (half / 2) as u64;
    let calls: u64 = r.stats.iter().map(|a| a.calls).sum();
    assert_eq!(
        calls, expected_calls,
        "the partial capture's pairs all completed"
    );
    let report = summary_report(&r, Some(5));
    assert!(
        report.contains("Elapsed time"),
        "partial capture renders a report"
    );
}

/// Arena accumulation across sessions (one reused `SessionRecon`
/// writing into a shared `Reconstruction`, the analyzer's fold path)
/// is bit-identical to merging independent one-shot reconstructions —
/// per-class anomaly counts included.
#[test]
fn arena_recon_accumulation_matches_merged_one_shots() {
    let (tf, clean) = flat_stream(500);
    let syms = Symbols::from_tagfile(&tf);
    let sessions: Vec<_> = [11u64, 22, 33]
        .iter()
        .map(|&seed| {
            let inj = FaultInjector::new(FaultSpec::uniform(20_000), seed);
            let faulty = inj.corrupt_records(&clean);
            let (_, events, anoms) = decode_recovering(&faulty, &tf);
            (events, anoms)
        })
        .collect();

    let mut merged = Reconstruction::empty(syms.clone());
    for (events, anoms) in &sessions {
        let mut r = reconstruct_session_recovering(&syms, events);
        r.note(anoms);
        merged.merge(r);
    }

    let mut arena = Reconstruction::empty(syms.clone());
    let mut recon = SessionRecon::new(&syms, true);
    for (events, anoms) in &sessions {
        recon.session_into(events, &mut arena);
        arena.note(anoms);
    }
    assert_eq!(arena, merged, "arena fold must equal merge of one-shots");
}

/// The single-fault per-class goldens hold unchanged through the arena
/// path, with the `SessionRecon` deliberately reused (dirty pools and
/// lane counters) between fault classes.
#[test]
fn arena_recon_keeps_per_class_fault_goldens() {
    let (tf, clean) = flat_stream(1000);
    let syms = Symbols::from_tagfile(&tf);
    let mut recon = SessionRecon::new(&syms, true);
    let run = |recon: &mut SessionRecon, spec: FaultSpec, seed: u64| {
        let inj = FaultInjector::new(spec, seed);
        let faulty = inj.corrupt_records(&clean);
        let (_, events, anoms) = decode_recovering(&faulty, &tf);
        let mut out = Reconstruction::empty(syms.clone());
        recon.session_into(&events, &mut out);
        out.note(&anoms);
        (out, inj.counts())
    };

    // Stuck counter: every duplicate dropped at decode, nothing else.
    let (r, counts) = run(
        &mut recon,
        FaultSpec {
            stuck_ppm: 5_000,
            ..FaultSpec::none()
        },
        12,
    );
    assert!(counts.duplicated > 0);
    assert_eq!(r.anomalies.duplicates, counts.duplicated);
    assert_eq!(r.anomalies.total(), counts.duplicated);

    // Spurious tags: each one an unknown tag, nothing else.
    let (r, counts) = run(
        &mut recon,
        FaultSpec {
            spurious_ppm: 5_000,
            ..FaultSpec::none()
        },
        13,
    );
    assert!(counts.spurious > 0);
    assert_eq!(r.anomalies.unknown_tags, counts.spurious);
    assert_eq!(r.anomalies.total(), counts.spurious);

    // Dropped triggers: exactly one orphan exit or unmatched entry
    // each (all-distinct functions, so no cross-talk).
    let (r, counts) = run(
        &mut recon,
        FaultSpec {
            drop_ppm: 5_000,
            ..FaultSpec::none()
        },
        11,
    );
    assert!(counts.dropped > 0);
    assert_eq!(
        r.anomalies.orphan_exits + r.anomalies.unmatched_entries,
        counts.dropped
    );
    assert_eq!(
        r.anomalies.total(),
        r.anomalies.orphan_exits + r.anomalies.unmatched_entries
    );
}

/// The `anomaly_limit_ppm` trust gate fires exactly at the boundary of
/// the arena path's anomaly counts: the observed ppm passes, one ppm
/// below refuses, and a configured limit of zero refuses by default.
#[test]
fn anomaly_limit_gate_is_exact_on_arena_counts() {
    let capture = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(20))
        .faults(FaultSpec::uniform(20_000), 7)
        .try_run()
        .expect("run survives injection");
    let r = capture.try_analyze(None).expect("default never refuses");
    let total = r.anomalies.total();
    let tags = r.tags as u64;
    assert!(total > 0, "2% corruption must surface anomalies");

    let exact = ((total * 1_000_000).div_ceil(tags.max(1))) as u32;
    assert!(capture.try_analyze(Some(exact)).is_ok());
    match capture.try_analyze(Some(exact - 1)) {
        Err(Error::CorruptUpload { anomalies, .. }) => assert_eq!(anomalies, total),
        other => panic!("expected CorruptUpload just under the boundary, got {other:?}"),
    }

    let strict = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(20))
        .faults(FaultSpec::uniform(20_000), 7)
        .anomaly_limit_ppm(0)
        .try_run()
        .expect("run survives injection");
    assert!(
        matches!(strict.try_analyze(None), Err(Error::CorruptUpload { .. })),
        "a configured zero limit must refuse without an explicit override"
    );
}
