//! Cross-crate integration: the complete workflow from compiler pass to
//! analysis report, exercising every crate together.

use hwprof::analysis::{summary_report, trace_report, TraceStyle};
use hwprof::instrument::{round_page, IsaMap};
use hwprof::kernel386::funcs::KFn;
use hwprof::kernel386::kernel::KernelConfig;
use hwprof::profiler::{parse_raw, ram_chip_view, reassemble, BoardConfig, RamChip};
use hwprof::{scenarios, Experiment};

#[test]
fn full_workflow_selective_profiling() {
    // Micro-profile only the filesystem modules during disk writes.
    let capture = Experiment::new()
        .profile_modules(&["fs"])
        .scenario(scenarios::fs_writer(24))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    // fs functions captured...
    assert!(r.agg("bwrite").is_some() || r.agg("bawrite").is_some());
    assert!(r.agg("wdintr").unwrap_or_default().calls >= 24);
    // ...and unselected modules are absent from the tag file entirely.
    assert!(capture.tagfile.tag_of("ipintr").is_none());
    assert!(capture.tagfile.tag_of("vm_fault").is_none());
    // But swtch is always tagged (the analyzer needs it).
    assert!(capture.tagfile.tag_of("swtch").is_some());
    // And the capture decodes with zero unknown tags.
    assert_eq!(r.unknown_tags, 0);
}

#[test]
fn profile_base_depends_on_instrumentation_size() {
    let small = Experiment::new()
        .profile_modules(&["fs"])
        .scenario(scenarios::clock_idle(2))
        .try_run()
        .expect("experiment runs");
    let big = Experiment::new()
        .profile_all()
        .scenario(scenarios::clock_idle(2))
        .try_run()
        .expect("experiment runs");
    // More triggers -> bigger kernel -> the ISA window slides up (or at
    // least never down), page-granular.
    assert!(big.link.kernel_size > small.link.kernel_size);
    assert!(big.link.profile_base >= small.link.profile_base);
    assert_eq!(
        round_page(big.link.profile_base),
        big.link.profile_base & !0xfff
    );
    // The Figure 2 arithmetic is consistent.
    let map = IsaMap::for_kernel_size(big.link.kernel_size);
    assert_eq!(
        map.phys_to_virt(0x000C_C000).unwrap(),
        big.link.profile_base
    );
}

#[test]
fn raw_upload_and_zif_readback_agree() {
    let capture = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(5))
        .try_run()
        .expect("experiment runs");
    assert!(!capture.records.is_empty());
    // The SmartSocket path: raw 5-byte records parse back identically.
    let raw: Vec<u8> = capture
        .records
        .iter()
        .flat_map(|r| {
            let mut b = r.tag.to_le_bytes().to_vec();
            b.push((r.time & 0xff) as u8);
            b.push(((r.time >> 8) & 0xff) as u8);
            b.push(((r.time >> 16) & 0xff) as u8);
            b
        })
        .collect();
    assert_eq!(parse_raw(&raw).unwrap(), capture.records);
    // The future-work ZIF path: five chip images reassemble exactly.
    let images: [Vec<u8>; 5] = [
        ram_chip_view(&capture.records, RamChip::TagLow),
        ram_chip_view(&capture.records, RamChip::TagHigh),
        ram_chip_view(&capture.records, RamChip::TimeLow),
        ram_chip_view(&capture.records, RamChip::TimeMid),
        ram_chip_view(&capture.records, RamChip::TimeHigh),
    ];
    assert_eq!(reassemble(&images), capture.records);
}

#[test]
fn trigger_overhead_is_about_one_percent() {
    // E9: the same deterministic workload (fork/exec, no wire timing
    // feedback), instrumented vs production kernel.
    let run = |instrument: bool| {
        let e = if instrument {
            Experiment::new().profile_all()
        } else {
            Experiment::new().profile_none().unarmed()
        };
        let capture = e
            .scenario(scenarios::forkexec_loop(3))
            .try_run()
            .expect("experiment runs");
        let k = &capture.kernel;
        (
            k.machine.now - k.sched.idle_cycles,
            k.stats.page_faults,
            capture.records.len(),
        )
    };
    let (plain_busy, plain_faults, plain_events) = run(false);
    let (prof_busy, prof_faults, prof_events) = run(true);
    assert_eq!(plain_faults, prof_faults, "identical work done");
    assert_eq!(plain_events, 0);
    assert!(prof_events > 1000);
    let overhead = prof_busy as f64 / plain_busy as f64 - 1.0;
    // "around 1 to 1.2% extra CPU cycles" — generous band 0.1%..4%.
    assert!(
        (0.001..0.04).contains(&overhead),
        "trigger overhead {:.3}%",
        overhead * 100.0
    );
}

#[test]
fn overflow_led_stops_a_stock_board() {
    // E10: a stock 16384-event board under heavy traffic fills fast and
    // stops, lighting the LED.
    let capture = Experiment::new()
        .profile_all()
        .board(BoardConfig::default())
        .scenario(scenarios::network_receive(200 * 1024, true))
        .try_run()
        .expect("experiment runs");
    assert!(capture.overflowed, "RAM should fill");
    assert_eq!(capture.records.len(), 16384);
    assert!(capture.missed > 0, "post-overflow triggers were missed");
    // How long did 16384 events take?  The paper: "as short a time as
    // 300 milliseconds".
    let first = capture.records.first().expect("non-empty").time as u64;
    let r = capture.analyze();
    assert!(r.tags == 16384);
    let window_us = r.total_elapsed;
    assert!(
        (100_000..2_000_000).contains(&window_us),
        "16384 events in {window_us} us (first at {first})"
    );
}

#[test]
fn reports_and_variants_render_everywhere() {
    let capture = Experiment::new()
        .profile_all()
        .config(KernelConfig {
            cksum_asm: true,
            ..KernelConfig::default()
        })
        .scenario(scenarios::mixed(2))
        .try_run()
        .expect("experiment runs");
    let r = capture.analyze();
    let summary = summary_report(&r, None);
    for f in ["bcopy", "pmap_pte", "wdintr", "tcp_input", "falloc"] {
        assert!(summary.contains(f), "{f} missing from mixed summary");
    }
    let trace = trace_report(&r, &TraceStyle::default());
    assert!(trace.contains("Context switch in"));
    // The oracle agrees on the hot counts even in the mixed workload.
    for f in [KFn::Bcopy, KFn::PmapPte, KFn::WdIntr] {
        assert_eq!(
            r.agg(f.name()).unwrap_or_default().calls,
            capture.kernel.trace.truth(f).calls,
            "{} analysis vs oracle",
            f.name()
        );
    }
}
