//! Supervised capture end to end: a workload that overflows the stock
//! board several times over completes under `Experiment::supervised()`
//! with high coverage, every dark window and ladder move accounted for
//! in the report's Coverage block, and the three stitch paths agreeing
//! bit-for-bit.  Plus the two new error paths.

use hwprof::analysis::summary_report;
use hwprof::profiler::{BoardConfig, GapCause};
use hwprof::{
    scenarios, Analyzer, Error, Experiment, FlakyTransport, MemoryTransport, SupervisorPolicy,
    TagMaskLevel,
};

/// ~1 MB of saturated TCP: enough to fill the stock 16384-event RAM
/// several times over (the one-shot capture would stop at the first
/// fill).
fn overflowing_experiment() -> Experiment {
    Experiment::new()
        .profile_all()
        .board(BoardConfig::default())
        .scenario(scenarios::network_receive(1024 * 1024, true))
}

#[test]
fn supervised_capture_survives_repeated_overflow() {
    let cap = overflowing_experiment()
        .supervised(SupervisorPolicy::default())
        .expect("supervised run completes");
    let cov = *cap.coverage();

    // The workload overflows a stock board at least three times: every
    // one of those fills is an explicit overflow gap, not a dead run.
    assert!(
        cov.overflow_gaps >= 3,
        "wanted >= 3 overflow points, got {}",
        cov.overflow_gaps
    );
    assert!(
        cap.run.events() > BoardConfig::default().capacity,
        "captured beyond one RAM: {} events",
        cap.run.events()
    );

    // The default policy floor is 90% — completion implies it held;
    // check the ledger arithmetic is exact too.
    assert!(cov.fraction() >= 0.90, "coverage {:.3}", cov.fraction());
    assert_eq!(cov.covered_us + cov.gap_us, cov.timeline_us);
    assert_eq!(cov.gaps, cap.run.gaps.len() as u64);

    // Every gap in the list is accounted in the ledger's cause counts.
    let overflow_listed = cap
        .run
        .gaps
        .iter()
        .filter(|g| g.cause == GapCause::Overflow)
        .count() as u64;
    assert_eq!(overflow_listed, cov.overflow_gaps);
    let lost_listed = cap
        .run
        .gaps
        .iter()
        .filter(|g| g.cause == GapCause::BankLost)
        .count() as u64;
    assert_eq!(lost_listed, cov.banks_lost);

    // The report surfaces the Coverage block with the gap count.
    let report = summary_report(&cap.profile, Some(10));
    assert!(report.contains("Coverage:"), "report:\n{report}");
    assert!(report.contains("covered"), "report:\n{report}");
    assert!(
        report.contains(&format!("{} gap", cov.gaps)),
        "gap count missing from report:\n{report}"
    );

    // And the profile still tells the workload's story.
    assert!(cap.profile.agg("bcopy").expect("hot fn").calls > 0);
}

#[test]
fn supervised_stitch_paths_are_bit_identical() {
    let cap = overflowing_experiment()
        .supervised(SupervisorPolicy::default())
        .expect("supervised run completes");
    let stitcher = Analyzer::for_tagfile(&cap.tagfile);
    let seq = stitcher.run(&cap.run).expect("ungated");
    assert_eq!(seq, cap.profile, "capture's own profile is the stitch");
    for workers in [1, 2, 4] {
        let fanned = stitcher.clone().workers(workers);
        let par = fanned.run(&cap.run).expect("ungated");
        assert_eq!(seq, par, "parallel({workers}) diverged");
        let streamed = fanned.run_streaming(&cap.run).expect("pipeline open");
        assert_eq!(seq, streamed, "streaming({workers}) diverged");
    }
}

#[test]
fn ladder_sheds_load_under_pressure() {
    // A tiny board under a saturated stream: the unmasked trigger rate
    // would fill it in far less than the downgrade threshold, so the
    // ladder must step down — and the shed load is accounted.
    let policy = SupervisorPolicy {
        min_coverage_ppm: 0,
        drain_budget_us: 2_000,
        ..SupervisorPolicy::default()
    };
    let cap = Experiment::new()
        .profile_all()
        .board(BoardConfig {
            capacity: 1024,
            time_bits: 24,
        })
        .scenario(scenarios::network_receive(512 * 1024, true))
        .supervised(policy)
        .expect("supervised run completes");
    let cov = *cap.coverage();
    assert!(cov.mask_downgrades >= 1, "ladder never stepped down");
    assert!(cov.masked_events > 0, "nothing was masked");
    assert_ne!(cap.run.final_level, TagMaskLevel::All);
    let report = summary_report(&cap.profile, Some(5));
    assert!(report.contains("mask ladder:"), "report:\n{report}");
    // Downgrades are visible in per-session levels too.
    assert!(cap
        .run
        .sessions
        .iter()
        .any(|s| s.level != TagMaskLevel::All));
}

#[test]
fn dead_transport_is_a_transport_failed_error() {
    // Every upload attempt fails: nothing is ever delivered, and the
    // run reports TransportFailed rather than panicking or returning
    // an empty capture.
    let transport = Box::new(FlakyTransport::new(MemoryTransport::new(), 1_000_000, 7));
    let result = Experiment::new()
        .profile_modules(&["kern", "locore"])
        .scenario(scenarios::clock_idle(5))
        .supervised_with(
            SupervisorPolicy {
                min_coverage_ppm: 0,
                ..SupervisorPolicy::default()
            },
            transport,
        );
    match result {
        Err(Error::TransportFailed {
            banks_lost,
            failures,
        }) => {
            assert!(banks_lost >= 1);
            assert!(failures >= banks_lost);
        }
        Ok(c) => panic!("delivered {} sessions on a dead wire", c.run.sessions.len()),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn starved_run_is_a_coverage_too_low_error() {
    // Ladder off, tiny board, long swaps: most of the timeline is
    // spent dark, which the default 90% floor must refuse.
    let policy = SupervisorPolicy {
        ladder: false,
        drain_budget_us: 50_000,
        ..SupervisorPolicy::default()
    };
    let result = Experiment::new()
        .profile_all()
        .board(BoardConfig {
            capacity: 256,
            time_bits: 24,
        })
        .scenario(scenarios::network_receive(256 * 1024, true))
        .supervised(policy);
    match result {
        Err(Error::CoverageTooLow {
            achieved_ppm,
            required_ppm,
        }) => {
            assert!(achieved_ppm < required_ppm);
            assert_eq!(required_ppm, 900_000);
        }
        Ok(c) => panic!("accepted {:.1}% coverage", c.coverage().fraction() * 100.0),
        Err(e) => panic!("unexpected error: {e}"),
    }
}
