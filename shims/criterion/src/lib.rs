//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! The build environment has no registry access, so the real crate
//! cannot be fetched.  This harness keeps `criterion_group!` /
//! `criterion_main!`, benchmark groups, throughput annotation and
//! `Bencher::iter`/`iter_batched`, measuring mean wall-clock time per
//! iteration over a fixed time budget and printing one line per
//! benchmark.
//!
//! Two extensions the real crate does not have, both driven by
//! environment variables so `cargo bench` invocations stay unchanged:
//!
//! * **quick mode** — `HWPROF_BENCH_QUICK=1` shrinks the per-benchmark
//!   measuring budget from 300 ms to 40 ms so a full bench binary
//!   finishes in seconds (the CI bench-gate runs this way);
//! * **machine-readable results** — `HWPROF_BENCH_JSON=<dir>` makes
//!   `criterion_main!` write `BENCH_<binary>.json` into `<dir>` when
//!   the binary exits: every benchmark's ns/iter and derived
//!   throughput, plus a calibration constant measured in-process that
//!   lets the regression gate normalize across machines.  Keys are
//!   emitted sorted, so the files diff cleanly.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How a benchmark's work scales, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hints for `iter_batched` (ignored; every batch is 1).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

/// One finished benchmark, as collected for the JSON emitter.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` id.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared per-iteration work, if the group annotated one.
    pub throughput: Option<Throughput>,
}

/// True when quick mode is on (`HWPROF_BENCH_QUICK` set non-`0`):
/// benchmarks measure over a 40 ms budget instead of 300 ms.
pub fn quick_mode() -> bool {
    std::env::var_os("HWPROF_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Time budget spent measuring one benchmark.
fn budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    }
}

/// Measurement slices per benchmark.  The budget is split into slices
/// and the **minimum** slice mean is reported: scheduler interference
/// only ever inflates a slice, so the minimum tracks the code's true
/// cost far more stably than one long mean — which is what a
/// regression gate needs.
const SLICES: u32 = 4;

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: the budget is split into [`SLICES`] slices of
    /// as many runs as fit, and the minimum slice mean is reported.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and single-run estimate.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let slice_budget = budget().as_nanos() / u128::from(SLICES);
        let runs = (slice_budget / once.as_nanos()).clamp(1, 100_000) as u32;
        let mut best = f64::INFINITY;
        for _ in 0..SLICES {
            let start = Instant::now();
            for _ in 0..runs {
                std_black_box(routine());
            }
            best = best.min(start.elapsed().as_nanos() as f64 / f64::from(runs));
        }
        self.ns_per_iter = best;
    }

    /// Times `routine` over values built by `setup` (setup excluded),
    /// with the same minimum-of-slices estimate as [`iter`].
    ///
    /// [`iter`]: Bencher::iter
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let input = setup();
        let start = Instant::now();
        std_black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let slice_budget = budget().as_nanos() / u128::from(SLICES);
        let runs = (slice_budget / once.as_nanos()).clamp(1, 100_000) as u32;
        let mut best = f64::INFINITY;
        for _ in 0..SLICES {
            let inputs: Vec<I> = (0..runs).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            best = best.min(start.elapsed().as_nanos() as f64 / f64::from(runs));
        }
        self.ns_per_iter = best;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration does.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim sizes runs by time budget.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / (1024.0 * 1024.0) / (b.ns_per_iter / 1e9)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / (b.ns_per_iter / 1e9))
            }
            None => String::new(),
        };
        println!(
            "bench {:<44} {:>12.0} ns/iter{}",
            format!("{}/{}", self.name, id),
            b.ns_per_iter,
            rate
        );
        self.criterion.results.push(BenchResult {
            id: format!("{}/{}", self.name, id),
            ns_per_iter: b.ns_per_iter,
            throughput: self.throughput,
        });
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Runs one parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.full.clone(), |b| f(b, input));
        self
    }

    /// Ends the group (printing happened per benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver; collects every result for the JSON
/// emitter.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
            criterion: self,
        };
        g.run_one(id, f);
        self
    }

    /// Every result collected so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes `BENCH_<bench_name>.json` into `$HWPROF_BENCH_JSON` if
    /// that variable is set; a no-op otherwise.  Called by
    /// `criterion_main!` when the binary finishes.
    pub fn emit(&self, bench_name: &str) {
        let Some(dir) = std::env::var_os("HWPROF_BENCH_JSON") else {
            return;
        };
        let json = render_json(bench_name, quick_mode(), calibrate(), &self.results);
        let dir = std::path::PathBuf::from(dir);
        let path = dir.join(format!("BENCH_{bench_name}.json"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
            eprintln!("bench json: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("bench json -> {}", path.display());
    }
}

/// Measures the machine's calibration constant: nanoseconds per element
/// of a fixed dependent-multiply walk.  The regression gate divides
/// throughput by the baseline's calibration before comparing, so a
/// slower CI machine is not misread as a regression (and a faster one
/// does not mask a real regression).  Best-of-three to shave scheduler
/// noise.
pub fn calibrate() -> f64 {
    const N: u64 = 1 << 18;
    fn walk() -> u64 {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..N {
            x = std_black_box(x.wrapping_mul(0x100_0000_01b3).rotate_left(17) ^ i);
        }
        x
    }
    std_black_box(walk()); // warm
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        std_black_box(walk());
        best = best.min(start.elapsed().as_nanos() as f64 / N as f64);
    }
    best
}

/// Escapes a string for JSON (the ids are plain ASCII, but corrupt
/// input must not produce corrupt JSON).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float with fixed precision (deterministic, locale-free).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the BENCH json document: schema version, bench name, quick
/// flag, calibration constant, and one entry per benchmark id with
/// ns/iter and derived per-second throughput.  **Keys are emitted in
/// sorted order and every number has fixed precision**, so the output
/// is byte-deterministic for a given set of measurements regardless of
/// run order — the writer's unit tests pin exactly that.
pub fn render_json(
    bench_name: &str,
    quick: bool,
    calibration: f64,
    results: &[BenchResult],
) -> String {
    // Last result wins for a repeated id (criterion semantics: an id
    // rerun replaces its record).
    let mut by_id: std::collections::BTreeMap<&str, &BenchResult> = Default::default();
    for r in results {
        by_id.insert(&r.id, r);
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench_name)));
    out.push_str(&format!(
        "  \"calibration_ns_per_elem\": {},\n",
        num(calibration)
    ));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"results\": {\n");
    let n = by_id.len();
    for (i, (id, r)) in by_id.iter().enumerate() {
        let (per_sec, unit) = match r.throughput {
            Some(Throughput::Elements(k)) => (
                num(k as f64 / (r.ns_per_iter / 1e9)),
                "\"elements\"".to_string(),
            ),
            Some(Throughput::Bytes(k)) => (
                num(k as f64 / (r.ns_per_iter / 1e9)),
                "\"bytes\"".to_string(),
            ),
            None => ("null".to_string(), "null".to_string()),
        };
        out.push_str(&format!(
            "    \"{}\": {{ \"ns_per_iter\": {}, \"per_sec\": {}, \"unit\": {} }}{}\n",
            escape(id),
            num(r.ns_per_iter),
            per_sec,
            unit,
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"schema\": 1\n");
    out.push_str("}\n");
    out
}

/// Declares a group-runner function invoking each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups over one shared
/// [`Criterion`], then emitting the BENCH json (if configured).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.emit(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "g/noop");
        assert_eq!(c.results()[1].id, "g/param/4");
    }

    fn sample() -> Vec<BenchResult> {
        vec![
            BenchResult {
                id: "z/last".into(),
                ns_per_iter: 250.0,
                throughput: Some(Throughput::Elements(1000)),
            },
            BenchResult {
                id: "a/first".into(),
                ns_per_iter: 125.5,
                throughput: Some(Throughput::Bytes(4096)),
            },
            BenchResult {
                id: "m/middle".into(),
                ns_per_iter: 10.0,
                throughput: None,
            },
        ]
    }

    /// The writer's schema: every declared field present, results keyed
    /// by benchmark id, derived throughput correct.
    #[test]
    fn json_writer_schema() {
        let json = render_json("capture_path", true, 0.5, &sample());
        assert!(json.contains("\"bench\": \"capture_path\""));
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"calibration_ns_per_elem\": 0.500"));
        // 1000 elements / 250 ns = 4e9 per second.
        assert!(json.contains(
            "\"z/last\": { \"ns_per_iter\": 250.000, \"per_sec\": 4000000000.000, \"unit\": \"elements\" }"
        ));
        assert!(json.contains("\"unit\": \"bytes\""));
        assert!(json.contains(
            "\"m/middle\": { \"ns_per_iter\": 10.000, \"per_sec\": null, \"unit\": null }"
        ));
    }

    /// Key order is sorted, not insertion order: any permutation of the
    /// same measurements renders byte-identical JSON.
    #[test]
    fn json_writer_is_deterministic_over_input_order() {
        let mut shuffled = sample();
        shuffled.reverse();
        let a = render_json("x", false, 1.0, &sample());
        let b = render_json("x", false, 1.0, &shuffled);
        assert_eq!(a, b);
        let a_pos = a.find("\"a/first\"").expect("present");
        let m_pos = a.find("\"m/middle\"").expect("present");
        let z_pos = a.find("\"z/last\"").expect("present");
        assert!(a_pos < m_pos && m_pos < z_pos, "sorted keys");
    }

    /// A repeated id keeps the last measurement, and ids with JSON
    /// metacharacters cannot corrupt the document.
    #[test]
    fn json_writer_last_wins_and_escapes() {
        let results = vec![
            BenchResult {
                id: "g/b".into(),
                ns_per_iter: 1.0,
                throughput: None,
            },
            BenchResult {
                id: "g/b".into(),
                ns_per_iter: 2.0,
                throughput: None,
            },
            BenchResult {
                id: "g/\"q\"".into(),
                ns_per_iter: 3.0,
                throughput: None,
            },
        ];
        let json = render_json("x", false, 1.0, &results);
        assert!(json.contains("\"g/b\": { \"ns_per_iter\": 2.000"));
        assert!(!json.contains("\"g/b\": { \"ns_per_iter\": 1.000"));
        assert!(json.contains("g/\\\"q\\\""));
    }
}
