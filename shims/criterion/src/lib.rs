//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! The build environment has no registry access, so the real crate
//! cannot be fetched.  This harness keeps `criterion_group!` /
//! `criterion_main!`, benchmark groups, throughput annotation and
//! `Bencher::iter`/`iter_batched`, measuring mean wall-clock time per
//! iteration over a fixed time budget and printing one line per
//! benchmark.  No statistics, plots or baselines — just numbers.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How a benchmark's work scales, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hints for `iter_batched` (ignored; every batch is 1).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter*`.
    ns_per_iter: f64,
}

/// Time budget spent measuring one benchmark.
const BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    /// Times `routine`, amortized over as many runs as fit the budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and single-run estimate.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let runs = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        let start = Instant::now();
        for _ in 0..runs {
            std_black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / f64::from(runs);
    }

    /// Times `routine` over values built by `setup` (setup excluded).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let input = setup();
        let start = Instant::now();
        std_black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let runs = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        let inputs: Vec<I> = (0..runs).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std_black_box(routine(input));
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / f64::from(runs);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration does.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim sizes runs by time budget.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / (1024.0 * 1024.0) / (b.ns_per_iter / 1e9)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / (b.ns_per_iter / 1e9))
            }
            None => String::new(),
        };
        println!(
            "bench {:<44} {:>12.0} ns/iter{}",
            format!("{}/{}", self.name, id),
            b.ns_per_iter,
            rate
        );
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Runs one parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.full.clone(), |b| f(b, input));
        self
    }

    /// Ends the group (printing happened per benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
            _criterion: self,
        };
        g.run_one(id, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
