//! Offline shim for the `parking_lot` API surface this workspace uses,
//! implemented over `std::sync`.
//!
//! The build environment has no registry access, so the real crate
//! cannot be fetched; this drop-in provides `Mutex`, `MutexGuard` and
//! `Condvar` with parking_lot's non-poisoning signatures.  Poisoned
//! std locks are recovered with [`std::sync::PoisonError::into_inner`],
//! matching parking_lot's behaviour of not poisoning on panic.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive (parking_lot-flavoured: `lock()` cannot
/// fail and never observes poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` only exists so [`Condvar::wait`] can move the std
/// guard out and back in around the wait; it is `Some` at all other
/// times.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
