//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no registry access, so the real crate
//! cannot be fetched.  The workspace only needs seeded, deterministic
//! workload randomness (`StdRng::seed_from_u64` + `gen_range` on
//! integer ranges), which a SplitMix64 core provides.  The streams
//! differ from real `rand`'s ChaCha-based `StdRng`, but every consumer
//! in this repo treats the values as an arbitrary reproducible
//! sequence, not a specific one.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the spans used here
                // (all far below 2^32) and determinism is what matters.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: here, SplitMix64 (deterministic, seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(2_000u64..20_000);
            assert!((2_000..20_000).contains(&v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }
}
