//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! The build environment has no registry access, so the real crate
//! cannot be fetched.  This harness keeps the same test-author surface
//! — `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! integer-range / tuple / collection / regex-string strategies and
//! `.prop_map` — and runs each property over a deterministic set of
//! pseudo-random cases (no shrinking).  Case count defaults to 96 and
//! can be raised with `PROPTEST_CASES`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from the test name (deterministic per test).
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sample space");
        self.next_u64() % bound
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the runner panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the runner draws a new case.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $ty
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, usize);

// u64 ranges can span more than u64::MAX values; handle separately.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A `&str` is a regex-subset strategy generating matching strings.
///
/// Supported syntax: literal characters, `[...]` classes with ranges,
/// and `{m}` / `{m,n}` quantifiers — the subset this workspace's
/// patterns use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed class in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).expect("ascii range"));
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed quantifier")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse::<usize>().expect("quantifier min"),
                    n.parse::<usize>().expect("quantifier max"),
                ),
                None => {
                    let m = spec.parse::<usize>().expect("quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let reps = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..reps {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of `size` distinct elements drawn from `element`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let want = self.size.generate(rng).max(self.size.start);
            let mut out = HashSet::new();
            // Bounded attempts: duplicates in small sample spaces may
            // leave the set short of `want`, matching real proptest's
            // tolerance of undersized collections under rejection.
            for _ in 0..want * 20 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> usize {
    cases_or(96)
}

/// Like [`cases`], with a caller-chosen default — the target of the
/// `#![cases(N)]` block header in [`proptest!`].  `PROPTEST_CASES`
/// still wins when set.
pub fn cases_or(default: usize) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::{
        cases, cases_or, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Rejects the current case (a fresh one is drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn` runs its body over generated
/// inputs, panicking on the first failing case.
///
/// An optional `#![cases(N)]` block header sets the per-property case
/// count for the block (real proptest's `#![proptest_config(...)]`
/// analogue); `PROPTEST_CASES` still overrides it.
#[macro_export]
macro_rules! proptest {
    (#![cases($n:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($crate::cases_or($n), $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::cases(), $($rest)*);
    };
}

/// Expansion target of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cases:expr, $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            let cases = $cases;
            let mut ran = 0usize;
            let mut rejected = 0usize;
            while ran < cases {
                if rejected > cases * 20 {
                    panic!(
                        "property {} rejected too many cases ({} accepted, {} rejected)",
                        stringify!($name), ran, rejected
                    );
                }
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let result: $crate::TestCaseResult = (move || {
                    { $body }
                    Ok(())
                })();
                match result {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed on case {}: {}", stringify!($name), ran, msg);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generator_matches_shape() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z_][a-z0-9_]{0,14}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_');
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![cases(17)]
        #[test]
        fn cases_header_caps_iterations(x in 0u32..1000) {
            // Counting via a thread-local: the block header must bound
            // the number of accepted cases at 17 (unless the env var
            // overrides, in which case this still just counts).
            use std::cell::Cell;
            thread_local!(static SEEN: Cell<usize> = const { Cell::new(0) });
            SEEN.with(|s| s.set(s.get() + 1));
            prop_assert!(SEEN.with(|s| s.get()) <= cases_or(17));
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 0u8..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
