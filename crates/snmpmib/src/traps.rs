//! Exports a sentinel [`AlertJournal`] as SNMP trap-style rows.
//!
//! The PR-4 [`MibExporter`](crate::MibExporter) serves live telemetry
//! under arcs 1 (scalars) and 2 (histograms) of the enterprises base;
//! alert transitions land next to them under arc 3 as one row per
//! journal entry, so the same get-next walk that reads the pipeline's
//! health also reads what the sentinel concluded about it.
//!
//! Layout, rooted at the exporter's base OID (default
//! `1.3.6.1.4.1.1993`, the same base as [`MibExporter`](crate::MibExporter)):
//!
//! * `base.3.<seq>.1` — window index that drove the transition.
//! * `base.3.<seq>.2` — clipped window end, absolute µs.
//! * `base.3.<seq>.3` — detector code ([`Detector::code`]).
//! * `base.3.<seq>.4` — transition code ([`AlertTransition::code`]).
//! * `base.3.<seq>.5` — baseline statistic (detector unit).
//! * `base.3.<seq>.6` — observed statistic (same unit).
//! * `base.3.<seq>.7` — delta, zigzag-encoded ([`zigzag`]) so the
//!   signed value survives the `u64`-only MIB.
//!
//! `<seq>` is the entry's 1-based journal sequence, so a journal
//! exported twice lands every object on the same OID.  Subjects are
//! strings, so — exactly like metric names — they travel in a side
//! table: the [`TrapLegend`] maps each row prefix back to its
//! detector, subject, and transition.

use hwprof_analysis::sentinel::{AlertJournal, AlertTransition, Detector};

use crate::btree::BtreeMib;
use crate::exporter::walk_subtree;
use crate::oid::Oid;
use crate::Mib;

/// Arc under the base for alert trap rows.
pub const TRAPS_ARC: u32 = 3;

/// Zigzag-encodes a signed delta into the `u64` value space
/// (0 → 0, -1 → 1, 1 → 2, -2 → 3, …), exactly invertible by
/// [`unzigzag`].
pub fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Maps an [`AlertJournal`] onto trap rows in any [`Mib`] store.
#[derive(Debug, Clone)]
pub struct TrapExporter {
    base: Oid,
}

impl Default for TrapExporter {
    /// The default subtree root: enterprises.1993.
    fn default() -> Self {
        TrapExporter::new(Oid::new(vec![1, 3, 6, 1, 4, 1, 1993]))
    }
}

impl TrapExporter {
    /// An exporter rooted at `base` (rows go under `base.3`).
    pub fn new(base: Oid) -> Self {
        TrapExporter { base }
    }

    /// The subtree root.
    pub fn base(&self) -> &Oid {
        &self.base
    }

    fn oid(&self, arcs: &[u32]) -> Oid {
        let mut v = self.base.arcs().to_vec();
        v.extend_from_slice(arcs);
        Oid::new(v)
    }

    /// Writes every journal entry into `mib` as one trap row,
    /// returning the legend that names the rows.
    pub fn export_into(&self, journal: &AlertJournal, mib: &mut dyn Mib) -> TrapLegend {
        let mut legend = TrapLegend {
            entries: Vec::new(),
        };
        for e in journal.entries() {
            let seq = e.seq as u32;
            let prefix = self.oid(&[TRAPS_ARC, seq]);
            mib.set(self.oid(&[TRAPS_ARC, seq, 1]), e.window);
            mib.set(self.oid(&[TRAPS_ARC, seq, 2]), e.at_us);
            mib.set(self.oid(&[TRAPS_ARC, seq, 3]), e.detector.code());
            mib.set(self.oid(&[TRAPS_ARC, seq, 4]), e.transition.code());
            mib.set(self.oid(&[TRAPS_ARC, seq, 5]), e.baseline);
            mib.set(self.oid(&[TRAPS_ARC, seq, 6]), e.observed);
            mib.set(self.oid(&[TRAPS_ARC, seq, 7]), zigzag(e.delta));
            legend.entries.push(TrapRow {
                oid: prefix,
                detector: e.detector,
                subject: e.subject.clone(),
                transition: e.transition,
            });
        }
        legend
    }

    /// Exports `journal` into a fresh B-tree store, ready to serve
    /// next to the telemetry subtree.
    pub fn export(&self, journal: &AlertJournal) -> (BtreeMib, TrapLegend) {
        let mut mib = BtreeMib::new();
        let legend = self.export_into(journal, &mut mib);
        (mib, legend)
    }

    /// Full get-next walk of the trap subtree in `mib`: every row
    /// object under `base.3`, in OID order, plus the comparison cost.
    pub fn walk(&self, mib: &dyn Mib) -> (Vec<(Oid, u64)>, usize) {
        walk_subtree(mib, &self.oid(&[TRAPS_ARC]))
    }
}

/// One legend row: the trap's OID prefix and its string-valued
/// identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapRow {
    /// Row prefix (`base.3.<seq>`).
    pub oid: Oid,
    /// The detector.
    pub detector: Detector,
    /// The alert subject.
    pub subject: String,
    /// The transition.
    pub transition: AlertTransition,
}

/// Name side-table for an exported trap subtree.
#[derive(Debug, Clone, Default)]
pub struct TrapLegend {
    /// One row per journal entry, in journal order.
    pub entries: Vec<TrapRow>,
}

impl TrapLegend {
    /// The legend row a walked OID belongs to.
    pub fn row_of(&self, oid: &Oid) -> Option<&TrapRow> {
        self.entries
            .iter()
            .find(|r| oid.arcs().starts_with(r.oid.arcs()))
    }

    /// A deterministic one-line label for a walked OID, matching the
    /// journal's `detector(subject) TRANSITION` dialect.
    pub fn label_of(&self, oid: &Oid) -> Option<String> {
        self.row_of(oid).map(|r| {
            format!(
                "{}({}) {}",
                r.detector.label(),
                r.subject,
                r.transition.label()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_analysis::sentinel::{Sentinel, SentinelConfig};
    use hwprof_analysis::{MaskVisibility, Reconstruction, Symbols};
    use hwprof_telemetry::Registry;

    fn journal() -> AlertJournal {
        let mut tf = hwprof_tagfile::TagFile::new(500);
        tf.assign("bcopy", hwprof_tagfile::TagKind::Function)
            .expect("fresh");
        let sy = Symbols::from_tagfile(&tf);
        let s = (0..sy.len())
            .find(|&i| sy.name(i as u32) == "bcopy")
            .expect("assigned");
        let vis = vec![MaskVisibility::UnlessSwitchOnly; sy.len()];
        let mut sent = Sentinel::new(SentinelConfig::default());
        for (w, net) in [50u64, 50, 50, 300, 300, 300, 50, 50]
            .into_iter()
            .enumerate()
        {
            let mut r = Reconstruction::empty(sy.clone());
            r.stats[s].calls = net / 10;
            r.stats[s].net = net;
            r.stats[s].elapsed = net;
            r.total_elapsed = 1_000;
            r.tags = 100;
            r.note_coverage(&hwprof_profiler::Coverage {
                timeline_us: 1_000,
                covered_us: 1_000,
                level_us: [1_000, 0, 0],
                ..hwprof_profiler::Coverage::default()
            });
            sent.observe(w as u64, (w as u64 + 1) * 1_000, &r, &vis, None);
        }
        sent.journal().clone()
    }

    #[test]
    fn zigzag_roundtrips() {
        for d in [0i64, 1, -1, 250, -250, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn journal_exports_one_row_per_entry() {
        let j = journal();
        assert_eq!(j.len(), 3, "Pending, Firing, Resolved: {}", j.describe());
        let exp = TrapExporter::default();
        let (mib, legend) = exp.export(&j);
        let (objs, cmps) = exp.walk(&mib);
        assert!(cmps > 0);
        assert_eq!(objs.len(), 3 * 7);
        assert_eq!(legend.entries.len(), 3);
        for (oid, _) in &objs {
            assert!(legend.row_of(oid).is_some(), "unnamed trap object {oid}");
        }
        // The Firing row carries the exact evidence.
        let e = &j.entries()[1];
        let firing = &legend.entries[1];
        assert_eq!(
            legend.label_of(&firing.oid).as_deref(),
            Some("rate-shift(bcopy) FIRING")
        );
        let field = |arc: u32| {
            let mut v = firing.oid.arcs().to_vec();
            v.push(arc);
            mib.get(&Oid::new(v)).0.expect("row field present")
        };
        assert_eq!(field(1), e.window);
        assert_eq!(field(3), e.detector.code());
        assert_eq!(field(4), e.transition.code());
        assert_eq!(field(5), 50);
        assert_eq!(field(6), 300);
        assert_eq!(unzigzag(field(7)), 250);
    }

    #[test]
    fn traps_share_a_store_with_telemetry() {
        // Arc 3 nests next to arcs 1/2 in one store: a single walk of
        // the base reads health metrics and alert rows together.
        let reg = Registry::new();
        reg.counter("sent.fired").add(1);
        let snap = reg.snapshot();
        let mexp = crate::MibExporter::default();
        let mut mib = BtreeMib::new();
        let mlegend = mexp.export_into(&snap, &mut mib);
        let texp = TrapExporter::default();
        let tlegend = texp.export_into(&journal(), &mut mib);
        let (objs, _) = walk_subtree(&mib, mexp.base());
        assert_eq!(objs.len(), 1 + 3 * 7);
        for (oid, _) in &objs {
            assert!(
                mlegend.name_of(oid).is_some() || tlegend.row_of(oid).is_some(),
                "unnamed object {oid}"
            );
        }
    }

    #[test]
    fn export_is_deterministic() {
        let j = journal();
        let exp = TrapExporter::new(Oid::new(vec![1, 3, 9]));
        let (bt, _) = exp.export(&j);
        let mut lin = crate::LinearMib::new();
        let legend_lin = exp.export_into(&j, &mut lin);
        let (walk_bt, _) = exp.walk(&bt);
        let (walk_lin, _) = exp.walk(&lin);
        assert_eq!(walk_bt, walk_lin, "stores disagree on the subtree");
        let (bt2, legend2) = exp.export(&j);
        assert_eq!(exp.walk(&bt2).0, walk_bt);
        assert_eq!(legend2.entries, legend_lin.entries);
    }
}
