//! Object identifiers: dotted sequences of arcs with SNMP's
//! lexicographic ordering.

use std::fmt;

/// An SNMP object identifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(Vec<u32>);

impl Oid {
    /// An OID from its arcs.
    ///
    /// # Panics
    ///
    /// Panics if `arcs` is empty.
    pub fn new(arcs: Vec<u32>) -> Self {
        assert!(!arcs.is_empty(), "empty OID");
        Oid(arcs)
    }

    /// The arcs.
    pub fn arcs(&self) -> &[u32] {
        &self.0
    }

    /// Compares, also reporting that one comparison was performed (the
    /// MIB cost unit).
    pub fn cmp_counted(&self, other: &Oid) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }

    /// Serializes to the simple wire form used by the simulated agent:
    /// arc count byte then big-endian u32 arcs.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = vec![self.0.len() as u8];
        for a in &self.0 {
            out.extend_from_slice(&a.to_be_bytes());
        }
        out
    }

    /// Parses the wire form; returns the OID and bytes consumed.
    pub fn from_wire(data: &[u8]) -> Option<(Oid, usize)> {
        let n = *data.first()? as usize;
        if n == 0 || data.len() < 1 + n * 4 {
            return None;
        }
        let arcs = (0..n)
            .map(|i| {
                let o = 1 + i * 4;
                u32::from_be_bytes([data[o], data[o + 1], data[o + 2], data[o + 3]])
            })
            .collect();
        Some((Oid(arcs), 1 + n * 4))
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Oid::new(vec![1, 3, 6]);
        let b = Oid::new(vec![1, 3, 6, 1]);
        let c = Oid::new(vec![1, 4]);
        assert!(a < b, "prefix sorts first");
        assert!(b < c);
    }

    #[test]
    fn wire_roundtrip() {
        let o = Oid::new(vec![1, 3, 6, 1, 2, 1]);
        let w = o.to_wire();
        let (back, used) = Oid::from_wire(&w).unwrap();
        assert_eq!(back, o);
        assert_eq!(used, w.len());
        assert!(Oid::from_wire(&[]).is_none());
        assert!(Oid::from_wire(&[3, 0, 0]).is_none());
    }

    #[test]
    fn display_dotted() {
        assert_eq!(Oid::new(vec![1, 3, 6]).to_string(), "1.3.6");
    }
}
