//! The SNMP case study.
//!
//! "A SNMP client based on the CMU SNMP code was profiled, highlighting a
//! major bottleneck in searching the MIB table linearly; redesigning the
//! data structure to use a B-tree to hold the MIB data reduced the CPU
//! cycles required to respond to SNMP requests by an order of magnitude."
//!
//! Both stores are real: [`LinearMib`] scans a sorted vector the way the
//! CMU code walked its table; [`BtreeMib`] is a from-scratch B-tree.
//! Every operation reports how many OID comparisons it performed, which
//! the simulated agent converts into CPU time — so the order-of-magnitude
//! claim is measured, not assumed.

pub mod agent;
pub mod btree;
pub mod exporter;
pub mod linear;
pub mod oid;
pub mod traps;

pub use agent::{snmp_agent_program, SnmpClientHost, AGENT_PORT};
pub use btree::BtreeMib;
pub use exporter::{walk_subtree, MibExporter, MibLegend};
pub use linear::LinearMib;
pub use oid::Oid;
pub use traps::{unzigzag, zigzag, TrapExporter, TrapLegend, TrapRow, TRAPS_ARC};

/// A MIB store: OID-keyed values with SNMP get / get-next semantics.
///
/// Every method returns `(result, comparisons)`: the number of OID
/// comparisons performed is the unit of CPU cost the agent charges.
pub trait Mib {
    /// Insert or replace.
    fn set(&mut self, oid: Oid, value: u64) -> usize;
    /// Exact lookup.
    fn get(&self, oid: &Oid) -> (Option<u64>, usize);
    /// Smallest entry strictly greater than `oid` (the get-next walk).
    ///
    /// The reported comparison count is always at least 1, even on an
    /// empty store: determining "end of MIB" is work the agent is
    /// charged for.  Past the last key a [`LinearMib`] charges a full
    /// scan (`len()` comparisons) while a [`BtreeMib`] charges one
    /// root-to-leaf descent — the walk-termination request is part of
    /// the measured asymmetry, not an accounting hole.
    fn get_next(&self, oid: &Oid) -> (Option<(Oid, u64)>, usize);
    /// Number of objects.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn oid_strategy() -> impl Strategy<Value = Oid> {
        prop::collection::vec(0u32..40, 1..6).prop_map(Oid::new)
    }

    proptest! {
        /// Both stores agree with a std reference map on get and
        /// get-next over arbitrary insert sequences.
        #[test]
        fn stores_match_reference(
            entries in prop::collection::vec((oid_strategy(), 0u64..1000), 1..200),
            probes in prop::collection::vec(oid_strategy(), 1..50),
        ) {
            let mut reference = BTreeMap::new();
            let mut lin = LinearMib::new();
            let mut bt = BtreeMib::new();
            for (oid, v) in &entries {
                reference.insert(oid.clone(), *v);
                lin.set(oid.clone(), *v);
                bt.set(oid.clone(), *v);
            }
            prop_assert_eq!(lin.len(), reference.len());
            prop_assert_eq!(bt.len(), reference.len());
            for p in &probes {
                let want = reference.get(p).copied();
                prop_assert_eq!(lin.get(p).0, want);
                prop_assert_eq!(bt.get(p).0, want);
                let want_next = reference
                    .range((std::ops::Bound::Excluded(p.clone()), std::ops::Bound::Unbounded))
                    .next()
                    .map(|(k, v)| (k.clone(), *v));
                prop_assert_eq!(lin.get_next(p).0, want_next.clone());
                prop_assert_eq!(bt.get_next(p).0, want_next);
            }
        }

        /// A full get-next walk enumerates every object in order, and the
        /// B-tree does it with asymptotically fewer comparisons.
        #[test]
        fn walk_visits_everything_in_order(
            entries in prop::collection::vec((oid_strategy(), 0u64..100), 20..150),
        ) {
            let mut lin = LinearMib::new();
            let mut bt = BtreeMib::new();
            for (oid, v) in &entries {
                lin.set(oid.clone(), *v);
                bt.set(oid.clone(), *v);
            }
            let mut cur = Oid::new(vec![0]);
            let mut seen = Vec::new();
            let mut lin_cmps = 0usize;
            let mut bt_cmps = 0usize;
            loop {
                let (nl, cl) = lin.get_next(&cur);
                let (nb, cb) = bt.get_next(&cur);
                lin_cmps += cl;
                bt_cmps += cb;
                prop_assert_eq!(nl.clone(), nb);
                match nl {
                    Some((oid, _)) => {
                        if let Some(last) = seen.last() {
                            prop_assert!(last < &oid, "walk out of order");
                        }
                        seen.push(oid.clone());
                        cur = oid;
                    }
                    None => break,
                }
            }
            // Every distinct key at or after the start point visited.
            let distinct: std::collections::BTreeSet<_> =
                entries.iter().map(|(o, _)| o.clone()).filter(|o| *o > Oid::new(vec![0])).collect();
            prop_assert_eq!(seen.len(), distinct.len());
            // Comparison advantage grows with size; at >=20 entries the
            // B-tree should already be doing clearly less work.
            if lin.len() >= 50 {
                prop_assert!(bt_cmps * 2 < lin_cmps,
                    "btree {} vs linear {}", bt_cmps, lin_cmps);
            }
        }
    }
}
