//! The simulated SNMP agent and its querying client.
//!
//! The agent runs as a user process on the simulated kernel, answering
//! get/get-next requests over UDP; the MIB search cost (counted
//! comparisons) is charged as user-mode CPU.  The client lives on the far
//! end of the wire and issues a get-next walk plus random gets, pacing
//! itself on replies — so the CPU cycles per request are directly
//! measurable, linear table vs B-tree.

use hwprof_machine::wire::{frame_time, HostAction, RemoteHost};
use hwprof_machine::Cycles;

use hwprof_kernel386::ctx::Ctx;
use hwprof_kernel386::syscall::{sys_read, sys_sendto, sys_socket};
use hwprof_kernel386::user::ucompute;
use hwprof_kernel386::wire_fmt::{
    build_ether, build_ipv4, build_udp, parse_ipv4, parse_udp, ETHERTYPE_IP, ETHER_HDR,
    IPPROTO_UDP, IP_HDR, PC_IP, REMOTE_IP, UDP_HDR,
};

use crate::oid::Oid;
use crate::Mib;

/// The agent's UDP port.
pub const AGENT_PORT: u16 = 161;
/// Request opcodes.
const OP_GET: u8 = 0;
const OP_GETNEXT: u8 = 1;

/// Microseconds of user CPU per OID comparison: the CMU code compared
/// sub-identifier arrays arc by arc in a function call, ~5 µs on a
/// 68020-class CPU.
pub const US_PER_COMPARISON: u64 = 5;

/// Builds the agent program: answers `requests` queries then exits.
pub fn snmp_agent_program(
    mib: Box<dyn Mib + Send>,
    requests: usize,
) -> hwprof_kernel386::user::UserProgram {
    Box::new(move |ctx: &mut Ctx<'_>| {
        let fd = sys_socket(ctx, IPPROTO_UDP, AGENT_PORT);
        let mut served = 0usize;
        while served < requests {
            let req = sys_read(ctx, fd, 256);
            if req.len() < 2 {
                continue;
            }
            let op = req[0];
            let Some((oid, _)) = Oid::from_wire(&req[1..]) else {
                continue;
            };
            // Decode overhead (BER parsing in the real agent).
            ucompute(ctx, 40);
            let (reply_oid, value, cmps) = match op {
                OP_GET => {
                    let (v, c) = mib.get(&oid);
                    (oid.clone(), v, c)
                }
                _ => {
                    let (n, c) = mib.get_next(&oid);
                    match n {
                        Some((k, v)) => (k, Some(v), c),
                        None => (oid.clone(), None, c),
                    }
                }
            };
            // The measured cost: table search time.
            ucompute(ctx, cmps as u64 * US_PER_COMPARISON);
            // Encode + send the reply.
            ucompute(ctx, 30);
            let mut reply = reply_oid.to_wire();
            match value {
                Some(v) => reply.extend_from_slice(&v.to_be_bytes()),
                None => reply.push(0xFF),
            }
            sys_sendto(ctx, fd, reply, REMOTE_IP, 2001);
            served += 1;
        }
    })
}

/// The remote SNMP client: random exact gets across the whole MIB
/// (a manager polling scattered objects) interleaved with a get-next
/// walk, one request in flight at a time.
pub struct SnmpClientHost {
    /// Requests still to issue.
    pub remaining: usize,
    /// Replies received.
    pub replies: usize,
    /// Objects in the agent's MIB (for random-get targeting; see
    /// [`populate`]).
    pub mib_size: u32,
    cursor: Vec<u32>,
    lcg: u64,
}

impl SnmpClientHost {
    /// A client that will issue `n` requests against a MIB of
    /// `mib_size` objects laid out by [`populate`].
    pub fn new(n: usize, mib_size: u32) -> Self {
        SnmpClientHost {
            remaining: n,
            replies: 0,
            mib_size,
            cursor: vec![0],
            lcg: 0x1993_1993,
        }
    }

    fn rand(&mut self) -> u64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.lcg >> 33
    }

    fn request_frame(&mut self, now: Cycles) -> Vec<HostAction> {
        if self.remaining == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        // Two of three requests: a random exact get; the third: advance
        // the walk.
        let roll = self.rand() % 3;
        let (op, oid) = if roll < 2 && self.mib_size > 0 {
            let i = (self.rand() % u64::from(self.mib_size)) as u32;
            (OP_GET, populate_oid(i))
        } else {
            (OP_GETNEXT, Oid::new(self.cursor.clone()))
        };
        let mut body = vec![op];
        body.extend_from_slice(&oid.to_wire());
        let dgram = build_udp(REMOTE_IP, PC_IP, 2001, AGENT_PORT, &body, false);
        let packet = build_ipv4(IPPROTO_UDP, REMOTE_IP, PC_IP, &dgram);
        let frame = build_ether(ETHERTYPE_IP, &packet);
        let at = now + frame_time(frame.len());
        vec![HostAction::SendFrame { at, bytes: frame }]
    }
}

impl RemoteHost for SnmpClientHost {
    fn start(&mut self, now: Cycles) -> Vec<HostAction> {
        self.request_frame(now + 20_000)
    }

    fn on_tx(&mut self, frame: &[u8], now: Cycles) -> Vec<HostAction> {
        // Parse the agent's reply; advance the walk cursor.
        if frame.len() < ETHER_HDR {
            return Vec::new();
        }
        let ip = &frame[ETHER_HDR..];
        let Some(v) = parse_ipv4(ip) else {
            return Vec::new();
        };
        if v.proto != IPPROTO_UDP {
            return Vec::new();
        }
        let udp = &ip[IP_HDR..v.total_len as usize];
        let Some(uh) = parse_udp(udp) else {
            return Vec::new();
        };
        if uh.dport != 2001 {
            return Vec::new();
        }
        self.replies += 1;
        if let Some((oid, _)) = Oid::from_wire(&udp[UDP_HDR..]) {
            self.cursor = oid.arcs().to_vec();
        }
        // Think time, then next request.
        self.request_frame(now + 8_000)
    }

    fn on_timer(&mut self, _token: u64, now: Cycles) -> Vec<HostAction> {
        self.request_frame(now)
    }
}

/// The OID of object `i` in the standard test layout (shared between
/// [`populate`] and the client's random gets).
pub fn populate_oid(i: u32) -> Oid {
    // Spread across a few tables like a real MIB-II tree.
    let table = 1 + i % 7;
    let column = 1 + (i / 7) % 9;
    let row = i / 63;
    Oid::new(vec![1, 3, 6, 1, 2, 1, table, column, row])
}

/// Populates a MIB with `n` interface-table-style objects.
pub fn populate(mib: &mut dyn Mib, n: u32) {
    for i in 0..n {
        mib.set(populate_oid(i), u64::from(i) * 3);
    }
}

/// Runs the full case study for one MIB implementation: returns
/// (kernel, replies served).  CPU per request = non-idle cycles /
/// requests.
pub fn run_case_study(
    mib: Box<dyn Mib + Send>,
    requests: usize,
) -> (hwprof_kernel386::kernel::Kernel, usize) {
    let mib_size = mib.len() as u32;
    let client = SnmpClientHost::new(requests, mib_size);
    let sim = hwprof_kernel386::sim::SimBuilder::new()
        .cost(hwprof_machine::CostModel::m68020())
        .ether(Box::new(client))
        .build();
    sim.spawn("snmpd", snmp_agent_program(mib, requests));
    let k = sim.run();
    (k, requests)
}

/// Convenience: CPU microseconds per request for `mib` under `n`
/// requests.
pub fn cpu_us_per_request(mib: Box<dyn Mib + Send>, requests: usize) -> u64 {
    let (k, n) = run_case_study(mib, requests);
    let busy = (k.machine.now - k.sched.idle_cycles) / 40;
    busy / n as u64
}
