//! Exports a telemetry [`Snapshot`] as a walkable OID subtree.
//!
//! "Instrumenting the instrumenter": the profiling pipeline's own
//! health metrics are served through the same MIB machinery the case
//! study built, so an operator can walk the live state of a supervised
//! capture with plain get-next requests.
//!
//! Layout, rooted at the exporter's base OID (the default base is
//! `1.3.6.1.4.1.1993` — an enterprises arc for the paper's year):
//!
//! * `base.1.<i>.0` — scalar metric `i` (counter or gauge value).
//! * `base.2.<i>.0` — histogram metric `i`: sample count.
//! * `base.2.<i>.1` — histogram metric `i`: exact sample sum.
//! * `base.2.<i>.(2+b)` — histogram metric `i`: occupancy of log2
//!   bucket `b` (only non-empty buckets are exported).
//!
//! `<i>` is the metric's 1-based position in the snapshot's sorted
//! name order — deterministic for a given metric set, so two exports
//! of the same registry land every object on the same OID.  MIB values
//! are bare `u64`s, so names travel in a side-table legend returned by
//! the export; [`MibLegend::name_of`] resolves a walked OID back to
//! its metric.

use hwprof_telemetry::{MetricValue, Snapshot};

use crate::btree::BtreeMib;
use crate::oid::Oid;
use crate::Mib;

/// Arc under the base for scalar metrics.
const SCALARS_ARC: u32 = 1;
/// Arc under the base for histogram metrics.
const HISTOS_ARC: u32 = 2;

/// Maps a [`Snapshot`] onto an OID subtree in any [`Mib`] store.
#[derive(Debug, Clone)]
pub struct MibExporter {
    base: Oid,
}

impl Default for MibExporter {
    /// The default subtree root: enterprises.1993.
    fn default() -> Self {
        MibExporter::new(Oid::new(vec![1, 3, 6, 1, 4, 1, 1993]))
    }
}

impl MibExporter {
    /// An exporter rooted at `base`.
    pub fn new(base: Oid) -> Self {
        MibExporter { base }
    }

    /// The subtree root.
    pub fn base(&self) -> &Oid {
        &self.base
    }

    fn oid(&self, arcs: &[u32]) -> Oid {
        let mut v = self.base.arcs().to_vec();
        v.extend_from_slice(arcs);
        Oid::new(v)
    }

    /// Writes every metric in `snap` into `mib`, returning the legend
    /// that names the exported objects.
    pub fn export_into(&self, snap: &Snapshot, mib: &mut dyn Mib) -> MibLegend {
        let mut legend = MibLegend {
            entries: Vec::new(),
        };
        for (i, (name, value)) in snap.metrics.iter().enumerate() {
            let idx = i as u32 + 1;
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let oid = self.oid(&[SCALARS_ARC, idx, 0]);
                    mib.set(oid.clone(), *v);
                    legend.entries.push((name.clone(), oid));
                }
                MetricValue::Histo(h) => {
                    let prefix = self.oid(&[HISTOS_ARC, idx]);
                    mib.set(self.oid(&[HISTOS_ARC, idx, 0]), h.count);
                    mib.set(self.oid(&[HISTOS_ARC, idx, 1]), h.sum);
                    for (b, n) in h.buckets.iter().enumerate() {
                        if *n > 0 {
                            mib.set(self.oid(&[HISTOS_ARC, idx, 2 + b as u32]), *n);
                        }
                    }
                    legend.entries.push((name.clone(), prefix));
                }
            }
        }
        legend
    }

    /// Exports `snap` into a fresh B-tree store (the case study's
    /// fast one), ready to hand to `snmp_agent_program`.
    pub fn export(&self, snap: &Snapshot) -> (BtreeMib, MibLegend) {
        let mut mib = BtreeMib::new();
        let legend = self.export_into(snap, &mut mib);
        (mib, legend)
    }

    /// Full get-next walk of the exporter's subtree in `mib`: every
    /// object under the base, in OID order, plus the total comparison
    /// cost the store charged for the walk.
    pub fn walk(&self, mib: &dyn Mib) -> (Vec<(Oid, u64)>, usize) {
        walk_subtree(mib, &self.base)
    }
}

/// Get-next walk of every object strictly under `base` (prefix match),
/// returning the objects in order and the summed comparison cost.
pub fn walk_subtree(mib: &dyn Mib, base: &Oid) -> (Vec<(Oid, u64)>, usize) {
    let mut out = Vec::new();
    let mut cmps = 0;
    let mut cur = base.clone();
    loop {
        let (next, c) = mib.get_next(&cur);
        cmps += c;
        match next {
            Some((oid, v)) if oid.arcs().starts_with(base.arcs()) => {
                out.push((oid.clone(), v));
                cur = oid;
            }
            _ => return (out, cmps),
        }
    }
}

/// Name side-table for an exported subtree: MIB values are bare
/// `u64`s, so the metric names ride alongside.
#[derive(Debug, Clone, Default)]
pub struct MibLegend {
    /// `(metric name, OID)` — the scalar's full OID, or a histogram's
    /// subtree prefix.
    pub entries: Vec<(String, Oid)>,
}

impl MibLegend {
    /// The metric name an exported OID belongs to (exact scalar OID or
    /// any OID under a histogram's prefix).
    pub fn name_of(&self, oid: &Oid) -> Option<&str> {
        self.entries
            .iter()
            .find(|(_, o)| oid.arcs().starts_with(o.arcs()))
            .map(|(n, _)| n.as_str())
    }

    /// The OID (or histogram prefix) exported for `name`.
    pub fn oid_of(&self, name: &str) -> Option<&Oid> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, o)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_telemetry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("board.triggers").add(120);
        reg.gauge("board.fill_pct").set(37);
        let h = reg.histo("gap.us");
        h.observe(130);
        h.observe(900);
        h.observe(0);
        reg
    }

    #[test]
    fn export_then_walk_recovers_every_metric() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let exp = MibExporter::default();
        let (mib, legend) = exp.export(&snap);

        let (objs, cmps) = exp.walk(&mib);
        assert!(cmps > 0);
        // 2 scalars + histo count + histo sum + 3 occupied buckets.
        assert_eq!(objs.len(), 2 + 2 + 3, "objects: {objs:?}");
        // Scalars come back with their values, resolvable by legend.
        let fill = legend.oid_of("board.fill_pct").unwrap();
        assert_eq!(mib.get(fill).0, Some(37));
        let trig = legend.oid_of("board.triggers").unwrap();
        assert_eq!(mib.get(trig).0, Some(120));
        // Every walked OID names a metric.
        for (oid, _) in &objs {
            assert!(legend.name_of(oid).is_some(), "unnamed object {oid}");
        }
        // Histogram count and sum are exact.
        let gap = legend.oid_of("gap.us").unwrap().clone();
        let mut count_oid = gap.arcs().to_vec();
        count_oid.push(0);
        let mut sum_oid = gap.arcs().to_vec();
        sum_oid.push(1);
        assert_eq!(mib.get(&Oid::new(count_oid)).0, Some(3));
        assert_eq!(mib.get(&Oid::new(sum_oid)).0, Some(1030));
    }

    #[test]
    fn export_is_deterministic_and_store_agnostic() {
        let snap = sample_registry().snapshot();
        let exp = MibExporter::new(Oid::new(vec![1, 3, 9]));
        let (bt, legend_bt) = exp.export(&snap);
        let mut lin = crate::LinearMib::new();
        let legend_lin = exp.export_into(&snap, &mut lin);
        assert_eq!(legend_bt.entries, legend_lin.entries);
        let (walk_bt, _) = exp.walk(&bt);
        let (walk_lin, _) = exp.walk(&lin);
        assert_eq!(walk_bt, walk_lin, "stores disagree on the subtree");
        // Same registry exported twice lands on identical OIDs.
        let (bt2, _) = exp.export(&snap);
        assert_eq!(exp.walk(&bt2).0, walk_bt);
    }

    #[test]
    fn walk_stops_at_subtree_boundary() {
        let snap = sample_registry().snapshot();
        let exp = MibExporter::new(Oid::new(vec![1, 3, 9]));
        let (mut mib, _) = exp.export(&snap);
        // A neighbour just past the subtree must not be swept up.
        mib.set(Oid::new(vec![1, 3, 10]), 999);
        let (objs, _) = exp.walk(&mib);
        assert!(objs.iter().all(|(o, _)| o.arcs().starts_with(&[1, 3, 9])));
        assert_eq!(objs.len(), 7);
    }
}
