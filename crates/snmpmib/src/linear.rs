//! The CMU-style linear MIB table: a sorted vector scanned front to
//! back, the bottleneck the case study found.

use crate::oid::Oid;
use crate::Mib;

/// A sorted (OID, value) vector searched linearly.
#[derive(Debug, Default, Clone)]
pub struct LinearMib {
    entries: Vec<(Oid, u64)>,
}

impl LinearMib {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Mib for LinearMib {
    fn set(&mut self, oid: Oid, value: u64) -> usize {
        // The CMU code kept the table sorted; insertion scans for the
        // slot.
        let mut cmps = 0;
        for (i, (k, v)) in self.entries.iter_mut().enumerate() {
            cmps += 1;
            match oid.cmp_counted(k) {
                std::cmp::Ordering::Equal => {
                    *v = value;
                    return cmps;
                }
                std::cmp::Ordering::Less => {
                    self.entries.insert(i, (oid, value));
                    return cmps;
                }
                std::cmp::Ordering::Greater => {}
            }
        }
        self.entries.push((oid, value));
        cmps
    }

    fn get(&self, oid: &Oid) -> (Option<u64>, usize) {
        let mut cmps = 0;
        for (k, v) in &self.entries {
            cmps += 1;
            match oid.cmp_counted(k) {
                std::cmp::Ordering::Equal => return (Some(*v), cmps),
                std::cmp::Ordering::Less => return (None, cmps),
                std::cmp::Ordering::Greater => {}
            }
        }
        (None, cmps)
    }

    fn get_next(&self, oid: &Oid) -> (Option<(Oid, u64)>, usize) {
        let mut cmps = 0;
        for (k, v) in &self.entries {
            cmps += 1;
            if k.cmp_counted(oid) == std::cmp::Ordering::Greater {
                return (Some((k.clone(), *v)), cmps);
            }
        }
        // End-of-MIB: past the last key this has scanned the whole
        // table (`len()` comparisons); on an empty table the bounds
        // check itself still costs one, matching the B-tree store so
        // the agent never answers a request for free.
        (None, cmps.max(1))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_next_edges_charge_comparisons() {
        // Empty store: the end-of-MIB determination is not free.
        let empty = LinearMib::new();
        assert_eq!(empty.get_next(&Oid::new(vec![1])), (None, 1));

        // Max-OID edge: walking past the last key costs a full scan.
        let mut m = LinearMib::new();
        for i in 0..10u32 {
            m.set(Oid::new(vec![1, i]), u64::from(i));
        }
        let (next, cmps) = m.get_next(&Oid::new(vec![1, 9]));
        assert_eq!(next, None);
        assert_eq!(cmps, m.len(), "termination scans the whole table");
        // And the same query repeated charges the same amount.
        assert_eq!(m.get_next(&Oid::new(vec![1, 9])).1, cmps);
        // Beyond every key entirely: still the full scan, never zero.
        assert_eq!(m.get_next(&Oid::new(vec![200])).1, m.len());
    }

    #[test]
    fn linear_costs_grow_with_position() {
        let mut m = LinearMib::new();
        for i in 0..100u32 {
            m.set(Oid::new(vec![1, i]), u64::from(i));
        }
        let (v, early) = m.get(&Oid::new(vec![1, 3]));
        assert_eq!(v, Some(3));
        let (v, late) = m.get(&Oid::new(vec![1, 97]));
        assert_eq!(v, Some(97));
        assert!(late > early * 10, "late {late} early {early}");
    }
}
