//! The CMU-style linear MIB table: a sorted vector scanned front to
//! back, the bottleneck the case study found.

use crate::oid::Oid;
use crate::Mib;

/// A sorted (OID, value) vector searched linearly.
#[derive(Debug, Default, Clone)]
pub struct LinearMib {
    entries: Vec<(Oid, u64)>,
}

impl LinearMib {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Mib for LinearMib {
    fn set(&mut self, oid: Oid, value: u64) -> usize {
        // The CMU code kept the table sorted; insertion scans for the
        // slot.
        let mut cmps = 0;
        for (i, (k, v)) in self.entries.iter_mut().enumerate() {
            cmps += 1;
            match oid.cmp_counted(k) {
                std::cmp::Ordering::Equal => {
                    *v = value;
                    return cmps;
                }
                std::cmp::Ordering::Less => {
                    self.entries.insert(i, (oid, value));
                    return cmps;
                }
                std::cmp::Ordering::Greater => {}
            }
        }
        self.entries.push((oid, value));
        cmps
    }

    fn get(&self, oid: &Oid) -> (Option<u64>, usize) {
        let mut cmps = 0;
        for (k, v) in &self.entries {
            cmps += 1;
            match oid.cmp_counted(k) {
                std::cmp::Ordering::Equal => return (Some(*v), cmps),
                std::cmp::Ordering::Less => return (None, cmps),
                std::cmp::Ordering::Greater => {}
            }
        }
        (None, cmps)
    }

    fn get_next(&self, oid: &Oid) -> (Option<(Oid, u64)>, usize) {
        let mut cmps = 0;
        for (k, v) in &self.entries {
            cmps += 1;
            if k.cmp_counted(oid) == std::cmp::Ordering::Greater {
                return (Some((k.clone(), *v)), cmps);
            }
        }
        (None, cmps)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_costs_grow_with_position() {
        let mut m = LinearMib::new();
        for i in 0..100u32 {
            m.set(Oid::new(vec![1, i]), u64::from(i));
        }
        let (v, early) = m.get(&Oid::new(vec![1, 3]));
        assert_eq!(v, Some(3));
        let (v, late) = m.get(&Oid::new(vec![1, 97]));
        assert_eq!(v, Some(97));
        assert!(late > early * 10, "late {late} early {early}");
    }
}
