//! A from-scratch B-tree MIB store: the case study's redesign.
//!
//! Minimum degree 8 (7..15 keys per node), preemptive-split insertion,
//! counted comparisons throughout so the agent can charge real CPU time
//! per request.

use crate::oid::Oid;
use crate::Mib;

/// Minimum degree.
const T: usize = 8;
/// Maximum keys per node.
const MAX_KEYS: usize = 2 * T - 1;

#[derive(Debug, Clone, Default)]
struct Node {
    keys: Vec<(Oid, u64)>,
    children: Vec<Node>,
}

impl Node {
    fn leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Binary search: returns `Ok(i)` on an exact hit, `Err(i)` with the
    /// child/insertion index otherwise, plus comparisons performed.
    fn search(&self, oid: &Oid) -> (Result<usize, usize>, usize) {
        let mut lo = 0usize;
        let mut hi = self.keys.len();
        let mut cmps = 0;
        while lo < hi {
            let mid = (lo + hi) / 2;
            cmps += 1;
            match oid.cmp_counted(&self.keys[mid].0) {
                std::cmp::Ordering::Equal => return (Ok(mid), cmps),
                std::cmp::Ordering::Less => hi = mid,
                std::cmp::Ordering::Greater => lo = mid + 1,
            }
        }
        (Err(lo), cmps)
    }

    fn split_child(&mut self, i: usize) {
        let child = &mut self.children[i];
        let mut right = Node {
            keys: child.keys.split_off(T),
            ..Node::default()
        };
        let median = child.keys.pop().expect("full child has 2t-1 keys");
        if !child.leaf() {
            right.children = child.children.split_off(T);
        }
        self.keys.insert(i, median);
        self.children.insert(i + 1, right);
    }

    fn insert_nonfull(&mut self, oid: Oid, value: u64, cmps: &mut usize) -> bool {
        let (pos, c) = self.search(&oid);
        *cmps += c;
        match pos {
            Ok(i) => {
                self.keys[i].1 = value;
                false
            }
            Err(i) => {
                if self.leaf() {
                    self.keys.insert(i, (oid, value));
                    true
                } else {
                    let mut i = i;
                    if self.children[i].keys.len() == MAX_KEYS {
                        self.split_child(i);
                        *cmps += 1;
                        match oid.cmp_counted(&self.keys[i].0) {
                            std::cmp::Ordering::Equal => {
                                self.keys[i].1 = value;
                                return false;
                            }
                            std::cmp::Ordering::Greater => i += 1,
                            std::cmp::Ordering::Less => {}
                        }
                    }
                    self.children[i].insert_nonfull(oid, value, cmps)
                }
            }
        }
    }
}

/// The B-tree store.
#[derive(Debug, Clone, Default)]
pub struct BtreeMib {
    root: Node,
    len: usize,
}

impl BtreeMib {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Height (for structural tests).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = &self.root;
        while !n.leaf() {
            h += 1;
            n = &n.children[0];
        }
        h
    }

    /// Checks B-tree invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics on a violated invariant.
    pub fn check_invariants(&self) {
        fn walk(n: &Node, is_root: bool, depth: usize, leaf_depth: &mut Option<usize>) {
            assert!(n.keys.len() <= MAX_KEYS, "node too full");
            if !is_root {
                assert!(n.keys.len() >= T - 1, "node underfull");
            }
            assert!(
                n.keys.windows(2).all(|w| w[0].0 < w[1].0),
                "keys out of order"
            );
            if n.leaf() {
                match leaf_depth {
                    Some(d) => assert_eq!(*d, depth, "leaves at differing depths"),
                    None => *leaf_depth = Some(depth),
                }
            } else {
                assert_eq!(n.children.len(), n.keys.len() + 1);
                for (i, c) in n.children.iter().enumerate() {
                    if i > 0 {
                        assert!(c.keys.first().expect("non-empty").0 > n.keys[i - 1].0);
                    }
                    if i < n.keys.len() {
                        assert!(c.keys.last().expect("non-empty").0 < n.keys[i].0);
                    }
                    walk(c, false, depth + 1, leaf_depth);
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, true, 0, &mut leaf_depth);
    }
}

impl Mib for BtreeMib {
    fn set(&mut self, oid: Oid, value: u64) -> usize {
        let mut cmps = 0;
        if self.root.keys.len() == MAX_KEYS {
            let old_root = std::mem::take(&mut self.root);
            self.root.children.push(old_root);
            self.root.split_child(0);
        }
        if self.root.insert_nonfull(oid, value, &mut cmps) {
            self.len += 1;
        }
        cmps
    }

    fn get(&self, oid: &Oid) -> (Option<u64>, usize) {
        let mut n = &self.root;
        let mut cmps = 0;
        loop {
            let (pos, c) = n.search(oid);
            cmps += c;
            match pos {
                Ok(i) => return (Some(n.keys[i].1), cmps),
                Err(i) => {
                    if n.leaf() {
                        return (None, cmps);
                    }
                    n = &n.children[i];
                }
            }
        }
    }

    fn get_next(&self, oid: &Oid) -> (Option<(Oid, u64)>, usize) {
        let mut n = &self.root;
        let mut cmps = 0;
        let mut candidate: Option<&(Oid, u64)> = None;
        loop {
            let (pos, c) = n.search(oid);
            cmps += c;
            let idx = match pos {
                Ok(i) => i + 1, // strictly greater
                Err(i) => i,
            };
            if idx < n.keys.len() {
                candidate = Some(&n.keys[idx]);
            }
            if n.leaf() {
                // End-of-MIB answers still charge at least the
                // emptiness check: an empty root performs no key
                // comparisons, but the agent did real work to
                // determine "no successor" (see the trait contract).
                return (candidate.cloned(), cmps.max(1));
            }
            n = &n.children[idx.min(n.children.len() - 1)];
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u32) -> Oid {
        Oid::new(vec![1, 3, i / 100, i % 100])
    }

    #[test]
    fn insert_get_and_invariants() {
        let mut t = BtreeMib::new();
        for i in 0..1000u32 {
            t.set(oid(i.wrapping_mul(37) % 1000), u64::from(i));
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 3, "height {}", t.height());
        // Overwrites don't grow the tree.
        t.set(oid(5), 999);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(&oid(5)).0, Some(999));
        assert_eq!(t.get(&Oid::new(vec![9, 9, 9])).0, None);
    }

    #[test]
    fn get_next_walks_in_order() {
        let mut t = BtreeMib::new();
        for i in (0..500u32).rev() {
            t.set(oid(i), u64::from(i));
        }
        t.check_invariants();
        let mut cur = Oid::new(vec![0]);
        let mut count = 0;
        let mut last: Option<Oid> = None;
        while let (Some((k, _)), _) = t.get_next(&cur) {
            if let Some(l) = &last {
                assert!(l < &k);
            }
            last = Some(k.clone());
            cur = k;
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn get_next_edges_charge_comparisons() {
        // Empty store: the end-of-MIB determination is not free, and
        // matches LinearMib's accounting exactly.
        let empty = BtreeMib::new();
        assert_eq!(empty.get_next(&Oid::new(vec![1])), (None, 1));

        // Max-OID edge: termination costs one root-to-leaf descent —
        // bounded by height * log2(node width), never zero.
        let mut t = BtreeMib::new();
        for i in 0..1000u32 {
            t.set(oid(i), u64::from(i));
        }
        let max = oid(999);
        let (next, cmps) = t.get_next(&max);
        assert_eq!(next, None);
        assert!(cmps >= 1);
        assert!(
            cmps <= t.height() * 5,
            "descent cost {cmps} exceeds height {} * ceil(log2(16))",
            t.height()
        );
        // Repeating the terminator charges the same amount.
        assert_eq!(t.get_next(&max).1, cmps);
        // Beyond every key entirely: still a charged descent.
        let (next, cmps) = t.get_next(&Oid::new(vec![200]));
        assert_eq!(next, None);
        assert!(cmps >= 1);
    }

    #[test]
    fn order_of_magnitude_fewer_comparisons_than_linear() {
        use crate::linear::LinearMib;
        let mut bt = BtreeMib::new();
        let mut lin = LinearMib::new();
        for i in 0..1000u32 {
            bt.set(oid(i), 1);
            lin.set(oid(i), 1);
        }
        let mut bt_c = 0;
        let mut lin_c = 0;
        for i in (0..1000u32).step_by(7) {
            bt_c += bt.get(&oid(i)).1;
            lin_c += lin.get(&oid(i)).1;
        }
        assert!(
            lin_c >= bt_c * 10,
            "linear {lin_c} vs btree {bt_c}: the order-of-magnitude claim"
        );
    }
}
