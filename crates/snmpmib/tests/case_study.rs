//! The end-to-end SNMP case study: agent on the simulated 68020 board,
//! client on the wire, CPU per request measured — linear vs B-tree.

use hwprof_snmpmib::agent::{cpu_us_per_request, populate, run_case_study};
use hwprof_snmpmib::{BtreeMib, LinearMib};

#[test]
fn agent_answers_a_walk_end_to_end() {
    let mut mib = BtreeMib::new();
    populate(&mut mib, 300);
    let (k, n) = run_case_study(Box::new(mib), 40);
    assert_eq!(n, 40);
    // 40 requests + 40 replies crossed the wire.
    assert!(k.stats.packets_in >= 40, "in {}", k.stats.packets_in);
    assert!(k.stats.packets_out >= 40, "out {}", k.stats.packets_out);
    assert_eq!(k.stats.cksum_drops, 0);
}

#[test]
fn btree_cuts_cpu_by_an_order_of_magnitude() {
    // 2000-object MIB, as a loaded SNMP stack would carry.
    let mut lin = LinearMib::new();
    populate(&mut lin, 2000);
    let mut bt = BtreeMib::new();
    populate(&mut bt, 2000);
    let requests = 60;
    let lin_us = cpu_us_per_request(Box::new(lin), requests);
    let bt_us = cpu_us_per_request(Box::new(bt), requests);
    // "reduced the CPU cycles required to respond to SNMP requests by an
    // order of magnitude" — the fixed per-request overhead (packet
    // handling, encode/decode) damps the pure-search ratio a little.
    let ratio = lin_us as f64 / bt_us as f64;
    assert!(
        ratio >= 8.0,
        "linear {lin_us} us vs btree {bt_us} us per request (ratio {ratio:.1})"
    );
}
