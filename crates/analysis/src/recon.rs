//! Call-path reconstruction from the decoded event stream.
//!
//! "Identification of function entry and exit points allow a code path
//! trace to be constructed with timing information at each call and
//! return point."  The hard part is the kernel's multiplexed control
//! flow: at a `!`-tagged function (`swtch`) "a discontinuous change in
//! the subroutine call/return model" occurs.  The reconstructor keeps one
//! stack per thread of control; at each `swtch` exit it decides which
//! suspended stack resumed by looking ahead for the first unmatched
//! function exit (the resumed process must unwind through the function
//! that called `swtch`).

use crate::anomaly::Anomalies;
use crate::events::{EvKind, Event, SymId, Symbols};
use hwprof_profiler::Coverage;

/// Aggregate statistics for one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnAgg {
    /// Completed entry/exit pairs.
    pub calls: u64,
    /// Inline-trigger hits (for `=` tags).
    pub inline_hits: u64,
    /// Accumulated elapsed (inclusive) microseconds.
    pub elapsed: u64,
    /// Accumulated net (exclusive) microseconds.
    pub net: u64,
    /// Largest per-call net.
    pub max_net: u64,
    /// Smallest per-call net.
    pub min_net: u64,
}

impl FnAgg {
    /// Folds `other` into `self` (the monoid the streaming analyzer
    /// merges chunk results with).  Merging per-session aggregates in
    /// session order reproduces the sequential accumulation exactly:
    /// every field is a sum, a max, or a min over completed calls.
    pub fn merge(&mut self, other: &FnAgg) {
        if other.calls > 0 {
            self.min_net = if self.calls == 0 {
                other.min_net
            } else {
                self.min_net.min(other.min_net)
            };
            self.max_net = self.max_net.max(other.max_net);
        }
        self.calls += other.calls;
        self.inline_hits += other.inline_hits;
        self.elapsed += other.elapsed;
        self.net += other.net;
    }
}

/// One rendered-trace element (the trace report works from these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceItem {
    /// Event time (µs from session start).
    pub t: u64,
    /// Nesting depth at the event.
    pub depth: usize,
    /// Thread of control the item belongs to, numbered per session in
    /// order of first appearance (0 is the thread running at capture
    /// start; each birth allocates the next lane).  The exporters use
    /// this to split the paper's `!`-multiplexed stream into per-pid
    /// lanes; the ASCII renderer ignores it.
    pub lane: u32,
    /// What happened.
    pub kind: ItemKind,
}

/// Trace element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A call; times are patched in when the frame closes.
    Call {
        /// Function.
        sym: SymId,
        /// Net µs (valid when `closed`).
        net: u64,
        /// Elapsed µs (valid when `closed`).
        elapsed: u64,
        /// Subcalls observed.
        children: u32,
        /// A context switch occurred inside this frame.
        spans_switch: bool,
        /// The frame closed before the capture ended.
        closed: bool,
    },
    /// An explicit return line (context-switch frames and frames that
    /// span a switch get these).
    Return {
        /// Function (None renders as a bare `<-`).
        sym: Option<SymId>,
        /// Net µs.
        net: u64,
        /// Elapsed µs.
        elapsed: u64,
    },
    /// An inline trigger.
    Inline {
        /// The point.
        sym: SymId,
    },
    /// Control switched to a different thread of control.
    SwitchIn {
        /// The resumed stack had never been seen before (process birth).
        birth: bool,
    },
    /// Boundary between concatenated capture sessions.
    SessionBreak,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    sym: SymId,
    entered: u64,
    child: u64,
    item: usize,
    children: u32,
    spans_switch: bool,
    is_cswitch: bool,
}

#[derive(Debug, Default)]
struct PStack {
    frames: Vec<Frame>,
    /// Lane id carried by trace items while this stack is active.
    lane: u32,
}

/// The full result of reconstruction.
///
/// `Reconstruction` is a monoid: [`Reconstruction::empty`] is the
/// identity and [`Reconstruction::merge`] combines per-session results
/// in session order into exactly what one sequential pass over the
/// concatenated sessions would produce.  That property is what lets
/// the streaming analyzer fan sessions out across worker threads — and
/// what lets a fleet aggregator fold per-machine reconstructions into
/// one fleet-wide profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    /// Symbol table used.
    pub syms: Symbols,
    /// Per-symbol aggregates.
    pub stats: Vec<FnAgg>,
    /// Wall-clock µs covered (sum over sessions).
    pub total_elapsed: u64,
    /// Idle µs (inside `swtch`, less device interrupts).
    pub idle: u64,
    /// Total hardware events.
    pub tags: usize,
    /// Completed `swtch` intervals that changed the thread of control.
    pub context_switches: u64,
    /// Completed `swtch` frames (any resume).
    pub swtch_calls: u64,
    /// Exits with no matching open frame (capture started mid-call).
    pub unmatched_exits: u64,
    /// Tags absent from the name file.
    pub unknown_tags: u64,
    /// Frames still open when the capture ended.
    pub open_at_end: u64,
    /// Threads of control first seen at a `swtch` exit.
    pub births: u64,
    /// Trace elements (across all sessions, with breaks).
    pub trace: Vec<TraceItem>,
    /// Call-graph edges: (caller, callee) -> completed calls.
    pub edges: std::collections::HashMap<(SymId, SymId), u64>,
    /// Number of capture sessions analyzed.
    pub sessions: usize,
    /// Classified anomaly summary (always populated from the counters
    /// above plus any decode/upload-level anomalies folded in with
    /// [`Reconstruction::note`]).
    pub anomalies: Anomalies,
    /// Timeline coverage of the capture(s) behind this reconstruction.
    /// Zero (the merge identity) for plain captures; populated via
    /// [`Reconstruction::note_coverage`] when sessions come from a
    /// supervised run.  Merges field-wise like every other counter.
    pub coverage: Coverage,
}

impl Reconstruction {
    /// The merge identity: zero sessions analyzed against `syms`.
    pub fn empty(syms: Symbols) -> Self {
        let n = syms.len();
        Reconstruction {
            syms,
            stats: vec![FnAgg::default(); n],
            total_elapsed: 0,
            idle: 0,
            tags: 0,
            context_switches: 0,
            swtch_calls: 0,
            unmatched_exits: 0,
            unknown_tags: 0,
            open_at_end: 0,
            births: 0,
            trace: Vec::new(),
            edges: std::collections::HashMap::new(),
            sessions: 0,
            anomalies: Anomalies::default(),
            coverage: Coverage::empty(),
        }
    }

    /// Folds `other` (the next sessions in order) into `self`.
    ///
    /// Every aggregate is a per-session sum/max/min and the trace is a
    /// concatenation, so `empty ∘ merge` over per-session results is
    /// bit-identical to one sequential pass: reconstruction state
    /// (stacks, idle windows) never crosses a session boundary.
    pub fn merge(&mut self, other: Reconstruction) {
        debug_assert_eq!(self.syms.len(), other.syms.len(), "same tag file");
        for (a, b) in self.stats.iter_mut().zip(&other.stats) {
            a.merge(b);
        }
        self.total_elapsed += other.total_elapsed;
        self.idle += other.idle;
        self.tags += other.tags;
        self.context_switches += other.context_switches;
        self.swtch_calls += other.swtch_calls;
        self.unmatched_exits += other.unmatched_exits;
        self.unknown_tags += other.unknown_tags;
        self.open_at_end += other.open_at_end;
        self.births += other.births;
        self.trace.extend(other.trace);
        for (k, v) in other.edges {
            *self.edges.entry(k).or_insert(0) += v;
        }
        self.sessions += other.sessions;
        self.anomalies.merge(&other.anomalies);
        self.coverage.merge(&other.coverage);
    }

    /// Folds decode- or upload-level anomalies (duplicates, time jumps,
    /// truncations — flagged before events reach reconstruction) into
    /// the summary.
    pub fn note(&mut self, a: &Anomalies) {
        self.anomalies.merge(a);
    }

    /// Folds supervised-run coverage accounting (gaps, mask downgrades,
    /// transport retries) into the result, exactly like
    /// [`Reconstruction::note`] folds anomalies.
    pub fn note_coverage(&mut self, c: &Coverage) {
        self.coverage.merge(c);
    }

    /// Accumulated non-idle µs.
    pub fn run_time(&self) -> u64 {
        self.total_elapsed.saturating_sub(self.idle)
    }

    /// Aggregate for a named function, if present.
    pub fn agg(&self, name: &str) -> Option<FnAgg> {
        self.syms.lookup(name).map(|s| self.stats[s as usize])
    }

    /// Net µs of `name` as a fraction of total elapsed (the `% real`
    /// column).
    pub fn pct_real(&self, name: &str) -> f64 {
        let a = self.agg(name).unwrap_or_default();
        if self.total_elapsed == 0 {
            0.0
        } else {
            a.net as f64 * 100.0 / self.total_elapsed as f64
        }
    }

    /// Net µs of `name` as a fraction of non-idle time (`% net`).
    pub fn pct_net(&self, name: &str) -> f64 {
        let a = self.agg(name).unwrap_or_default();
        let run = self.run_time();
        if run == 0 {
            0.0
        } else {
            a.net as f64 * 100.0 / run as f64
        }
    }
}

/// The reusable session reconstructor — the arena of the hot path.
///
/// Reconstruction used to build a throwaway machine per session: two
/// symbol-table clones, two stats vectors, a fresh edges map and trace
/// vector, plus a newly grown frame stack for every process birth —
/// all dropped at session end and re-grown for the next bank.  At
/// fleet scale that allocator churn dominates.  A `SessionRecon` is
/// created once and fed many sessions:
///
/// * results accumulate **directly into a shared [`Reconstruction`]**
///   ([`session_into`](SessionRecon::session_into)) — bit-identical to
///   merging per-session results, since every field is a sum, min, max
///   or concatenation (the monoid argument), with zero intermediate
///   allocation;
/// * frame stacks come from an internal **free pool**: a stack retired
///   at a context switch or session end keeps its capacity and is
///   handed to the next birth, so steady-state reconstruction performs
///   no frame allocation at all.
pub struct SessionRecon<'a> {
    syms: &'a Symbols,
    recover: bool,
    active: PStack,
    suspended: Vec<PStack>,
    /// Retired frame stacks, capacity kept for the next birth/session.
    free: Vec<Vec<Frame>>,
    /// Next lane id to hand a freshly born thread of control.
    next_lane: u32,
    in_switch: bool,
    switch_start: u64,
    intr_in_switch: u64,
}

/// Outcome of the forward scan after a `swtch` exit.
enum ResumeId {
    /// First unmatched exit: the resumed stack unwinds through this.
    Exit(SymId),
    /// A new switch began before any unmatched exit — only a freshly
    /// born thread of control runs entries-only to its next switch.
    NextSwitch,
    /// The capture ended first; ambiguous.
    End,
}

/// Scans forward from a `swtch` exit for the function the resumed stack
/// unwinds through: the first exit not matching a post-resume entry.
fn identify_resume(events: &[Event], syms: &Symbols) -> ResumeId {
    let mut depth = 0i64;
    for ev in events {
        match ev.kind {
            EvKind::Entry(s) => {
                if syms.is_cswitch(s) {
                    return ResumeId::NextSwitch;
                }
                depth += 1;
            }
            EvKind::Exit(s) => {
                if depth > 0 {
                    depth -= 1;
                } else {
                    return ResumeId::Exit(s);
                }
            }
            EvKind::Inline(_) | EvKind::Unknown(_) => {}
        }
    }
    ResumeId::End
}

impl<'a> SessionRecon<'a> {
    /// A fresh reconstructor over `syms`; `recover` selects the
    /// resynchronizing mode (see
    /// [`reconstruct_session_recovering`]).
    pub fn new(syms: &'a Symbols, recover: bool) -> Self {
        SessionRecon {
            syms,
            recover,
            active: PStack::default(),
            suspended: Vec::new(),
            free: Vec::new(),
            next_lane: 1,
            in_switch: false,
            switch_start: 0,
            intr_in_switch: 0,
        }
    }

    /// Pops the top frame without contributing to any statistic: its
    /// exit was never seen, so its times are unknowable.  The trace
    /// item stays unclosed and the parent's child-time accumulator is
    /// untouched (the orphaned interval will be net time of whichever
    /// ancestor does close cleanly).
    fn force_close(&mut self, out: &mut Reconstruction) {
        self.active.frames.pop().expect("caller checked");
        out.anomalies.unmatched_entries += 1;
    }

    fn push(&mut self, out: &mut Reconstruction, sym: SymId, t: u64, is_cswitch: bool) {
        let depth = self.active.frames.len();
        let item = out.trace.len();
        out.trace.push(TraceItem {
            t,
            depth,
            lane: self.active.lane,
            kind: ItemKind::Call {
                sym,
                net: 0,
                elapsed: 0,
                children: 0,
                spans_switch: false,
                closed: false,
            },
        });
        self.active.frames.push(Frame {
            sym,
            entered: t,
            child: 0,
            item,
            children: 0,
            spans_switch: false,
            is_cswitch,
        });
    }

    /// Pops the active top frame at time `t`, accounting and patching
    /// its trace item.
    fn pop(&mut self, out: &mut Reconstruction, t: u64) -> Frame {
        let f = self.active.frames.pop().expect("caller checked");
        let elapsed = t.saturating_sub(f.entered);
        let net = elapsed.saturating_sub(f.child);
        if let Some(parent) = self.active.frames.last_mut() {
            parent.child += elapsed;
            parent.children += 1;
        }
        if f.is_cswitch {
            out.swtch_calls += 1;
        } else {
            let a = &mut out.stats[f.sym as usize];
            a.calls += 1;
            a.elapsed += elapsed;
            a.net += net;
            a.max_net = a.max_net.max(net);
            a.min_net = if a.calls == 1 {
                net
            } else {
                a.min_net.min(net)
            };
            // An interrupt completing directly under an open swtch frame
            // during the idle window is run time, not idle.
            if self.in_switch && self.active.frames.last().is_some_and(|p| p.is_cswitch) {
                self.intr_in_switch += elapsed;
            }
        }
        if let ItemKind::Call {
            net: n,
            elapsed: e,
            children,
            spans_switch,
            closed,
            ..
        } = &mut out.trace[f.item].kind
        {
            *n = net;
            *e = elapsed;
            *children = f.children;
            *spans_switch = f.spans_switch;
            *closed = true;
        }
        // Call-graph edge.
        if let Some(parent) = self.active.frames.last() {
            *out.edges.entry((parent.sym, f.sym)).or_insert(0) += 1;
        }
        // Explicit return lines for frames the renderer may want to
        // close visually: switch spanners (named, with times) and
        // non-leaf frames (bare).
        if !f.is_cswitch && (f.spans_switch || f.children > 0) {
            out.trace.push(TraceItem {
                t,
                depth: self.active.frames.len(),
                lane: self.active.lane,
                kind: ItemKind::Return {
                    sym: if f.spans_switch { Some(f.sym) } else { None },
                    net,
                    elapsed,
                },
            });
        }
        f
    }

    fn handle_cswitch_exit(&mut self, out: &mut Reconstruction, t: u64, rest: &[Event]) {
        // Close the idle window.
        if self.in_switch {
            let window = t.saturating_sub(self.switch_start);
            out.idle += window.saturating_sub(self.intr_in_switch);
            self.in_switch = false;
        }
        let wanted = identify_resume(rest, self.syms);
        let top_is_swtch = |st: &PStack| st.frames.last().is_some_and(|f| f.is_cswitch);
        let matches_exit = |st: &PStack, x: SymId| -> bool {
            top_is_swtch(st) && st.frames.len().checked_sub(2).map(|i| st.frames[i].sym) == Some(x)
        };
        // A thread suspended at top level (a lone swtch frame) resumes to
        // entries-only execution, indistinguishable from a birth except
        // that its stack exists.
        let lone_swtch = |st: &PStack| st.frames.len() == 1 && top_is_swtch(st);
        let choice: Choice = match wanted {
            ResumeId::Exit(x) => {
                if matches_exit(&self.active, x) {
                    Choice::Active
                } else if let Some(i) = self.suspended.iter().rposition(|s| matches_exit(s, x)) {
                    Choice::Suspended(i)
                } else {
                    Choice::Birth
                }
            }
            ResumeId::NextSwitch => {
                if lone_swtch(&self.active) {
                    Choice::Active
                } else if let Some(i) = self.suspended.iter().rposition(lone_swtch) {
                    Choice::Suspended(i)
                } else {
                    Choice::Birth
                }
            }
            ResumeId::End => {
                if top_is_swtch(&self.active) {
                    Choice::Active
                } else if let Some(i) = self.suspended.iter().rposition(top_is_swtch) {
                    Choice::Suspended(i)
                } else {
                    Choice::Birth
                }
            }
        };
        let depth_for_item = |frames: &PStack| frames.frames.len().saturating_sub(1);
        match choice {
            Choice::Active => {
                out.trace.push(TraceItem {
                    t,
                    depth: depth_for_item(&self.active),
                    lane: self.active.lane,
                    kind: ItemKind::Return {
                        sym: self.active.frames.last().map(|f| f.sym),
                        net: 0,
                        elapsed: 0,
                    },
                });
                self.pop(out, t);
            }
            Choice::Suspended(i) => {
                let resumed = self.suspended.remove(i);
                let old = std::mem::replace(&mut self.active, resumed);
                self.suspended.push(old);
                out.context_switches += 1;
                // Everything still open on the resumed stack spans a
                // switch.
                for f in &mut self.active.frames {
                    f.spans_switch = true;
                }
                out.trace.push(TraceItem {
                    t,
                    depth: 0,
                    lane: self.active.lane,
                    kind: ItemKind::SwitchIn { birth: false },
                });
                out.trace.push(TraceItem {
                    t,
                    depth: depth_for_item(&self.active),
                    lane: self.active.lane,
                    kind: ItemKind::Return {
                        sym: self.active.frames.last().map(|f| f.sym),
                        net: 0,
                        elapsed: 0,
                    },
                });
                self.pop(out, t);
            }
            Choice::Birth => {
                // The fresh stack comes from the arena's free pool; the
                // outgoing one parks on `suspended` with its capacity
                // (an empty one goes straight back to the pool).
                let fresh = PStack {
                    frames: self.free.pop().unwrap_or_default(),
                    lane: 0,
                };
                let old = std::mem::replace(&mut self.active, fresh);
                if old.frames.is_empty() {
                    self.free.push(old.frames);
                } else {
                    self.suspended.push(old);
                }
                self.active.lane = self.next_lane;
                self.next_lane += 1;
                out.context_switches += 1;
                out.births += 1;
                out.trace.push(TraceItem {
                    t,
                    depth: 0,
                    lane: self.active.lane,
                    kind: ItemKind::SwitchIn { birth: true },
                });
            }
        }
    }

    /// Reconstructs one capture session, accumulating the result
    /// directly into `out` — exactly what
    /// `out.merge(reconstruct_session(syms, events))` would produce,
    /// without building the intermediate `Reconstruction` (every field
    /// is a sum, min, max or concatenation, so direct accumulation and
    /// merge-of-parts are the same fold).  Reconstruction state never
    /// crosses a session boundary; the frame pool does, which is the
    /// point.
    pub fn session_into(&mut self, events: &[Event], out: &mut Reconstruction) {
        debug_assert_eq!(self.syms.len(), out.syms.len(), "same tag file");
        out.sessions += 1;
        out.tags += events.len();
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            out.total_elapsed += last.t - first.t;
        }
        for (i, ev) in events.iter().enumerate() {
            match ev.kind {
                EvKind::Entry(sym) => {
                    let cs = self.syms.is_cswitch(sym);
                    self.push(out, sym, ev.t, cs);
                    if cs {
                        self.in_switch = true;
                        self.switch_start = ev.t;
                        self.intr_in_switch = 0;
                    }
                }
                EvKind::Exit(sym) => {
                    if self.syms.is_cswitch(sym) {
                        self.handle_cswitch_exit(out, ev.t, &events[i + 1..]);
                    } else if self
                        .active
                        .frames
                        .last()
                        .is_some_and(|f| f.sym == sym && !f.is_cswitch)
                    {
                        self.pop(out, ev.t);
                    } else if self.recover {
                        // Resynchronize: a dropped entry-or-exit leaves
                        // the matching frame deeper on the stack (or
                        // nowhere).  Search top-down — never across a
                        // context-switch frame, which belongs to a
                        // different control discontinuity — and
                        // force-close the skipped frames.
                        let mut found = None;
                        for (fi, f) in self.active.frames.iter().enumerate().rev() {
                            if f.is_cswitch {
                                break;
                            }
                            if f.sym == sym {
                                found = Some(fi);
                                break;
                            }
                        }
                        if let Some(fi) = found {
                            while self.active.frames.len() > fi + 1 {
                                self.force_close(out);
                            }
                            self.pop(out, ev.t);
                        } else {
                            out.unmatched_exits += 1;
                            out.anomalies.orphan_exits += 1;
                        }
                    } else {
                        out.unmatched_exits += 1;
                        out.anomalies.orphan_exits += 1;
                    }
                }
                EvKind::Inline(sym) => {
                    out.stats[sym as usize].inline_hits += 1;
                    out.trace.push(TraceItem {
                        t: ev.t,
                        depth: self.active.frames.len(),
                        lane: self.active.lane,
                        kind: ItemKind::Inline { sym },
                    });
                }
                EvKind::Unknown(_) => {
                    out.unknown_tags += 1;
                    out.anomalies.unknown_tags += 1;
                }
            }
        }
        // Session teardown: open frames are incomplete calls.
        let open: usize =
            self.active.frames.len() + self.suspended.iter().map(|s| s.frames.len()).sum::<usize>();
        out.open_at_end += open as u64;
        out.anomalies.unmatched_entries += open as u64;
        // Retire every stack into the free pool, keeping capacity for
        // the next session.
        self.active.frames.clear();
        self.active.lane = 0;
        for mut s in self.suspended.drain(..) {
            s.frames.clear();
            self.free.push(s.frames);
        }
        self.next_lane = 1;
        self.in_switch = false;
        out.trace.push(TraceItem {
            t: events.last().map_or(0, |e| e.t),
            depth: 0,
            lane: 0,
            kind: ItemKind::SessionBreak,
        });
    }
}

enum Choice {
    Active,
    Suspended(usize),
    Birth,
}

/// Reconstructs a single capture session in isolation.
///
/// This is the unit of work the streaming analyzer hands to worker
/// threads; per-session results combine with
/// [`Reconstruction::merge`].  Session loops should hold a
/// [`SessionRecon`] instead and call
/// [`session_into`](SessionRecon::session_into) — same result, none of
/// the per-session allocation.
pub fn reconstruct_session(syms: &Symbols, events: &[Event]) -> Reconstruction {
    let mut out = Reconstruction::empty(syms.clone());
    SessionRecon::new(syms, false).session_into(events, &mut out);
    out
}

/// Reconstructs a single capture session in recovery mode.
///
/// Where strict reconstruction counts a mismatched exit as an orphan
/// and keeps going, recovery mode first tries to resynchronize: the
/// stack is searched top-down (stopping at a context-switch frame) for
/// a frame matching the exit, and any frames above it — entries whose
/// exits were lost — are force-closed without contributing statistics.
/// Every intervention lands in [`Reconstruction::anomalies`].
pub fn reconstruct_session_recovering(syms: &Symbols, events: &[Event]) -> Reconstruction {
    let mut out = Reconstruction::empty(syms.clone());
    SessionRecon::new(syms, true).session_into(events, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::decode;
    use hwprof_profiler::RawRecord;
    use hwprof_tagfile::parse;

    fn rec(tag: u16, time: u32) -> RawRecord {
        RawRecord { tag, time }
    }

    // These tests pin the reconstruction semantics, which live behind
    // the facade.
    fn analyze(syms: &Symbols, events: &[Event]) -> Reconstruction {
        crate::Analyzer::new(syms).session(events).expect("ungated")
    }

    fn analyze_sessions(syms: &Symbols, sessions: &[Vec<Event>]) -> Reconstruction {
        crate::Analyzer::new(syms)
            .sessions(sessions)
            .expect("ungated")
    }

    const TF: &str = "a/100\nb/102\nc/104\nswtch/200!\nMARK/300=\n";

    #[test]
    fn simple_nesting() {
        let tf = parse(TF).unwrap();
        // a[0..100] calling b[20..50].
        let recs = [rec(100, 0), rec(102, 20), rec(103, 50), rec(101, 100)];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let a = r.agg("a").unwrap();
        assert_eq!(a.calls, 1);
        assert_eq!(a.elapsed, 100);
        assert_eq!(a.net, 70);
        let b = r.agg("b").unwrap();
        assert_eq!(b.net, 30);
        assert_eq!(r.total_elapsed, 100);
        assert_eq!(r.idle, 0);
        assert_eq!(r.unmatched_exits, 0);
    }

    #[test]
    fn context_switch_splits_stacks() {
        let tf = parse(TF).unwrap();
        // Process P: a -> b -> swtch (switch out at t=30).
        // Process Q resumes: swtch exit, then exits c (its sleeper),
        // runs a bit, re-enters swtch at t=90; P resumes, exits b and a.
        let recs = [
            // P
            rec(100, 0),  // a enter
            rec(102, 10), // b enter
            rec(200, 30), // swtch enter (P out)
            // Q was suspended before capture inside c -> swtch; its
            // stack is unknown, so this resume is a birth.
            rec(201, 40),  // swtch exit (Q in) -- birth
            rec(105, 50),  // c exit (unmatched on fresh stack)
            rec(104, 60),  // c enter
            rec(105, 70),  // c exit
            rec(200, 90),  // swtch enter (Q out)
            rec(201, 95),  // swtch exit (P in)
            rec(103, 120), // b exit
            rec(101, 140), // a exit
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        // P's frames survived the switch.
        let a = r.agg("a").unwrap();
        assert_eq!(a.calls, 1);
        assert_eq!(a.elapsed, 140);
        let b = r.agg("b").unwrap();
        assert_eq!(b.elapsed, 110); // 10..120, spanning the switch
                                    // Q's completed c call counted; the stray first exit tolerated.
        let c = r.agg("c").unwrap();
        assert_eq!(c.calls, 1);
        assert_eq!(c.net, 10);
        assert_eq!(r.unmatched_exits, 1);
        assert_eq!(r.births, 1);
        assert!(r.context_switches >= 2);
        // Idle: windows 30..40 and 90..95.
        assert_eq!(r.idle, 15);
        // b's net excludes the whole swtch interval 30..95.
        assert_eq!(b.net, 110 - 65);
    }

    #[test]
    fn interrupt_during_idle_is_not_idle() {
        let tf = parse(TF).unwrap();
        let recs = [
            rec(100, 0),  // a enter
            rec(200, 10), // swtch enter: idle starts
            rec(104, 20), // c enter (device interrupt in idle loop)
            rec(105, 45), // c exit
            rec(201, 50), // swtch exit, same process resumes
            rec(101, 60), // a exit
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        // Window is 40 us, of which 25 was the interrupt.
        assert_eq!(r.idle, 15);
        assert_eq!(r.agg("c").unwrap().net, 25);
        assert_eq!(r.context_switches, 0, "same stack resumed");
        assert_eq!(r.swtch_calls, 1);
    }

    #[test]
    fn inline_tags_count_without_frames() {
        let tf = parse(TF).unwrap();
        let recs = [rec(100, 0), rec(300, 5), rec(300, 8), rec(101, 20)];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        assert_eq!(r.agg("MARK").unwrap().inline_hits, 2);
        assert_eq!(r.agg("a").unwrap().net, 20);
    }

    #[test]
    fn capture_starting_mid_call_is_tolerated() {
        let tf = parse(TF).unwrap();
        let recs = [rec(103, 5), rec(101, 10), rec(100, 20), rec(101, 30)];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        assert_eq!(r.unmatched_exits, 2);
        assert_eq!(r.agg("a").unwrap().calls, 1);
        assert_eq!(r.agg("a").unwrap().net, 10);
    }

    #[test]
    fn open_frames_at_end_are_not_counted() {
        let tf = parse(TF).unwrap();
        let recs = [rec(100, 0), rec(102, 10)];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        assert_eq!(r.agg("a").unwrap().calls, 0);
        assert_eq!(r.open_at_end, 2);
    }

    #[test]
    fn sessions_accumulate() {
        let tf = parse(TF).unwrap();
        let s1 = [rec(100, 0), rec(101, 50)];
        let s2 = [rec(100, 0), rec(101, 70)];
        let (syms, e1) = decode(&s1, &tf);
        let (_, e2) = decode(&s2, &tf);
        let r = analyze_sessions(&syms, &[e1, e2]);
        assert_eq!(r.agg("a").unwrap().calls, 2);
        assert_eq!(r.agg("a").unwrap().elapsed, 120);
        assert_eq!(r.total_elapsed, 120);
        assert_eq!(r.sessions, 2);
    }

    #[test]
    fn unknown_tags_are_counted_not_fatal() {
        let tf = parse(TF).unwrap();
        let recs = [rec(100, 0), rec(999, 5), rec(101, 10)];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        assert_eq!(r.unknown_tags, 1);
        assert_eq!(r.agg("a").unwrap().calls, 1);
    }
}
