//! Gap-aware stitching of supervised captures.
//!
//! A [`SupervisedRun`] is a sequence of per-bank capture sessions
//! separated by explicit dark windows ([`Gap`]s).  Stitching joins
//! those sessions into one timeline reconstruction:
//!
//! * each bank is one capture session, reconstructed in isolation and
//!   merged in bank order through the [`Reconstruction`] monoid — so
//!   nothing is charged during gaps (elapsed time is summed per
//!   session, and gaps lie between sessions);
//! * the run's [`Coverage`] accounting (gaps, mask downgrades, retry
//!   totals) is folded in field-wise, and surfaces in the report's
//!   "Coverage" block;
//! * per-function statistics can be rescaled by per-mask-level
//!   coverage: a function whose tags were masked at some ladder level
//!   was only *observable* during the covered time at the levels that
//!   admit it, so its whole-timeline rate is estimated by dividing by
//!   the visible time, not the total time.  Masking is a pure filter
//!   applied before the board — it removes events without disturbing
//!   the rest of the stream — so under a steady workload the estimate
//!   is unbiased.
//!
//! The three stitch flavours (sequential, parallel, streaming) are
//! bit-identical by the same argument as the plain analysis paths:
//! identical per-session work, associative merge, merge order fixed by
//! bank index.

use hwprof_profiler::{Coverage, SupervisedRun};
use hwprof_tagfile::{TagFile, TagKind};

use crate::events::{SessionDecoder, Symbols, TagMap};
use crate::recon::Reconstruction;

/// When a function's tags pass the EE-PAL, by ladder level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskVisibility {
    /// Context-switch (`!`) tags: admitted at every level.
    AllLevels,
    /// Ordinary tags: admitted unless the ladder is at `SwitchOnly`.
    UnlessSwitchOnly,
    /// Hot-masked tags: admitted only at `All`.
    AllOnly,
}

/// Decodes each delivered session of a supervised run into events —
/// exactly as the streaming workers do (strict per-bank decode) — and
/// returns them in bank order.
pub fn stitch_events(tf: &TagFile, run: &SupervisedRun) -> (Symbols, Vec<Vec<crate::Event>>) {
    let map = TagMap::from_tagfile(tf);
    let syms = Symbols::from_tagfile(tf);
    let sessions = run
        .sessions
        .iter()
        .map(|s| {
            let mut decoder = SessionDecoder::new(&map);
            let mut events = Vec::new();
            decoder.extend(&s.records, &mut events);
            events
        })
        .collect();
    (syms, sessions)
}

/// Classifies when `name`'s tags were visible during a supervised run.
pub fn visibility(tf: &TagFile, run: &SupervisedRun, name: &str) -> Option<MaskVisibility> {
    let entry = tf.entry_of(name)?;
    if entry.kind == TagKind::ContextSwitch {
        return Some(MaskVisibility::AllLevels);
    }
    if run.hot_tags.binary_search(&entry.tag).is_ok() {
        return Some(MaskVisibility::AllOnly);
    }
    Some(MaskVisibility::UnlessSwitchOnly)
}

/// Covered microseconds during which tags of the given visibility class
/// reached the board.
pub fn visible_us(cov: &Coverage, vis: MaskVisibility) -> u64 {
    match vis {
        MaskVisibility::AllLevels => cov.covered_us,
        MaskVisibility::UnlessSwitchOnly => cov.level_us[0] + cov.level_us[1],
        MaskVisibility::AllOnly => cov.level_us[0],
    }
}

/// The factor that extrapolates an observed per-function count to the
/// whole timeline: timeline time over visible time.  `None` when the
/// class was never visible (nothing to extrapolate from).
pub fn scale_factor(cov: &Coverage, vis: MaskVisibility) -> Option<f64> {
    let vis_us = visible_us(cov, vis);
    if vis_us == 0 || cov.timeline_us == 0 {
        None
    } else {
        Some(cov.timeline_us as f64 / vis_us as f64)
    }
}

/// Estimated whole-timeline call count for `name`: observed calls
/// scaled by the coverage of the mask levels that admitted its tags.
/// `None` if the name is unknown or its class was never visible.
pub fn scaled_calls(
    tf: &TagFile,
    run: &SupervisedRun,
    r: &Reconstruction,
    name: &str,
) -> Option<f64> {
    let vis = visibility(tf, run, name)?;
    let factor = scale_factor(&r.coverage, vis)?;
    let calls = r.agg(name)?.calls;
    Some(calls as f64 * factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_machine::EpromTap;
    use hwprof_profiler::{
        BoardConfig, CaptureSupervisor, MemoryTransport, Profiler, RetryPolicy, SupervisorPolicy,
        TagMask, TagMaskLevel,
    };

    const TF: &str = "a/500\nb/502\nswtch/200!\n";

    fn supervised_fixture() -> (TagFile, SupervisedRun) {
        let tf = hwprof_tagfile::parse(TF).expect("static tag file");
        let board = Profiler::new(BoardConfig {
            capacity: 8,
            time_bits: 24,
        });
        let mask = TagMask::new([200u16]);
        let policy = SupervisorPolicy {
            drain_budget_us: 10,
            ladder: false,
            max_session_us: u64::MAX,
            retry: RetryPolicy {
                max_attempts: 1,
                base_backoff_us: 1,
                max_backoff_us: 1,
                jitter_ppm: 0,
            },
            ..SupervisorPolicy::default()
        };
        let mut sup = CaptureSupervisor::new(board, mask, policy, Box::new(MemoryTransport::new()));
        // Nested a{b{}} call pairs with occasional switches, enough to
        // roll through several banks.
        let mut t = 1_000u64;
        for i in 0..40u64 {
            sup.on_read(500, t);
            sup.on_read(502, t + 2);
            sup.on_read(503, t + 5);
            sup.on_read(501, t + 9);
            if i % 5 == 4 {
                sup.on_read(200, t + 11);
                sup.on_read(201, t + 14);
            }
            t += 20;
        }
        (tf, sup.finish())
    }

    #[test]
    fn stitched_charges_nothing_during_gaps() {
        let (tf, run) = supervised_fixture();
        assert!(run.sessions.len() > 1, "several banks");
        assert!(!run.gaps.is_empty());
        let r = crate::Analyzer::for_tagfile(&tf)
            .run(&run)
            .expect("ungated");
        // Elapsed is summed inside sessions only: it never exceeds the
        // covered time.
        assert!(r.total_elapsed <= run.coverage.covered_us);
        assert_eq!(r.sessions, run.sessions.len());
        assert_eq!(r.coverage, run.coverage);
        assert!(r.agg("a").expect("known").calls > 0);
    }

    #[test]
    fn three_stitch_paths_are_bit_identical() {
        let (tf, run) = supervised_fixture();
        let seq = crate::Analyzer::for_tagfile(&tf)
            .run(&run)
            .expect("ungated");
        for workers in [1, 2, 3] {
            let a = crate::Analyzer::for_tagfile(&tf).workers(workers);
            let par = a.run(&run).expect("ungated");
            assert_eq!(seq, par, "parallel({workers}) diverged");
            let streamed = a.run_streaming(&run).expect("pipeline open");
            assert_eq!(seq, streamed, "streaming({workers}) diverged");
        }
    }

    #[test]
    fn report_carries_coverage_block() {
        let (tf, run) = supervised_fixture();
        let r = crate::Analyzer::for_tagfile(&tf)
            .run(&run)
            .expect("ungated");
        let rep = crate::report::summary_report(&r, Some(5));
        assert!(rep.contains("Coverage:"), "report:\n{rep}");
        assert!(rep.contains("covered"));
    }

    #[test]
    fn visibility_classes_and_scaling() {
        let tf = hwprof_tagfile::parse(TF).expect("static tag file");
        let run = SupervisedRun {
            sessions: Vec::new(),
            gaps: Vec::new(),
            coverage: Coverage {
                timeline_us: 100,
                covered_us: 80,
                gap_us: 20,
                gaps: 1,
                level_us: [40, 30, 10],
                ..Coverage::empty()
            },
            final_level: TagMaskLevel::All,
            hot_tags: vec![502, 503],
        };
        assert_eq!(
            visibility(&tf, &run, "swtch"),
            Some(MaskVisibility::AllLevels)
        );
        assert_eq!(
            visibility(&tf, &run, "b"),
            Some(MaskVisibility::AllOnly),
            "b is in the hot set"
        );
        assert_eq!(
            visibility(&tf, &run, "a"),
            Some(MaskVisibility::UnlessSwitchOnly)
        );
        assert_eq!(visibility(&tf, &run, "nosuch"), None);
        assert_eq!(visible_us(&run.coverage, MaskVisibility::AllLevels), 80);
        assert_eq!(
            visible_us(&run.coverage, MaskVisibility::UnlessSwitchOnly),
            70
        );
        assert_eq!(visible_us(&run.coverage, MaskVisibility::AllOnly), 40);
        let f = scale_factor(&run.coverage, MaskVisibility::AllOnly).expect("visible");
        assert!((f - 2.5).abs() < 1e-9);
        // Nothing visible -> no extrapolation.
        let dark = Coverage {
            timeline_us: 100,
            gap_us: 100,
            gaps: 1,
            ..Coverage::empty()
        };
        assert_eq!(scale_factor(&dark, MaskVisibility::AllOnly), None);
    }

    #[test]
    fn scaled_calls_extrapolates_masked_functions() {
        let (tf, run) = supervised_fixture();
        let r = crate::Analyzer::for_tagfile(&tf)
            .run(&run)
            .expect("ungated");
        // Ladder disabled: everything ran at All, so scaling inflates
        // exactly by timeline/covered.
        let a_calls = r.agg("a").expect("known").calls as f64;
        let scaled = scaled_calls(&tf, &run, &r, "a").expect("visible");
        let expect = a_calls * run.coverage.timeline_us as f64 / run.coverage.covered_us as f64;
        assert!((scaled - expect).abs() < 1e-9);
        assert!(scaled >= a_calls);
    }
}
