//! Standards-based trace export.
//!
//! The paper renders its reconstruction as the Figure 4 ASCII report;
//! this module lifts the same [`Reconstruction`] into three formats
//! modern tooling consumes directly:
//!
//! * **Chrome Trace Event JSON** ([`Exporter::chrome_trace`]) — loads
//!   in Perfetto / `chrome://tracing`.  Each capture session becomes a
//!   process, and each thread of control the reconstructor untangled
//!   from the paper's `!`-multiplexed stream becomes a thread lane of
//!   nested `B`/`E` spans.  When a [`SupervisedRun`] is attached,
//!   coverage [`Gap`](hwprof_profiler::Gap)s and mask-ladder moves are
//!   emitted as instant
//!   events on a "capture timeline" process, anomaly totals as a
//!   counter track, and a [`SpanLog`] journal renders as pipeline lanes
//!   (supervisor / transport / analyzer / board) on the same clock — a
//!   supervised run reads as one unified timeline.
//! * **speedscope JSON** ([`Exporter::speedscope`]) — one evented
//!   profile per thread of control.
//! * **folded stacks** ([`Exporter::folded`]) — `a;b;c net_us` lines
//!   for flamegraph tooling, aggregated across the whole run.  The
//!   weights are per-call *net* (exclusive) microseconds, so the folded
//!   total equals the reconstruction's net-time accounting exactly.
//!
//! Output is deterministic: lanes are emitted in (session, lane) order,
//! span-journal events are totally ordered by a fixed key, and all JSON
//! is hand-built with a fixed field order — goldens diff cleanly.
//!
//! Every timestamp is microseconds.  Plain exports place each session
//! at its own µs-from-session-start times; attaching a run re-bases
//! every session at its recorded place on the supervised timeline.

use std::collections::BTreeMap;

use hwprof_profiler::{GapCause, SupervisedRun, TagMaskLevel};
use hwprof_telemetry::{SpanEvent, SpanLog, SpanName, SpanPhase, SpanTrack};

use crate::events::SymId;
use crate::recon::{ItemKind, Reconstruction, TraceItem};
use crate::sentinel::AlertEntry;

/// Synthetic pid of the coverage/anomaly overlay process.
const OVERLAY_PID: u64 = 0;
/// Synthetic pid of the span-journal pipeline process.
const PIPELINE_PID: u64 = 1_000_000;

/// Builder that renders a [`Reconstruction`] (plus optional supervised
/// run context and span journal) into the three export formats.
#[derive(Debug, Clone)]
pub struct Exporter<'a> {
    r: &'a Reconstruction,
    run: Option<&'a SupervisedRun>,
    spans: Vec<SpanEvent>,
    alerts: Vec<AlertEntry>,
    name: String,
}

impl<'a> Exporter<'a> {
    /// An exporter over a plain reconstruction.
    pub fn new(r: &'a Reconstruction) -> Self {
        Exporter {
            r,
            run: None,
            spans: Vec::new(),
            alerts: Vec::new(),
            name: "hwprof".to_string(),
        }
    }

    /// Profile name stamped into the JSON outputs.
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Attaches supervised-run context: sessions are re-based onto the
    /// run timeline, and gaps / mask moves / coverage render as overlay
    /// events.
    pub fn run(mut self, run: &'a SupervisedRun) -> Self {
        self.run = Some(run);
        self
    }

    /// Attaches a span journal; its events render as pipeline lanes in
    /// the Chrome trace.
    pub fn spans(self, log: &SpanLog) -> Self {
        let events = log.snapshot();
        self.span_events(events)
    }

    /// Attaches sentinel alert-journal entries; they render as instant
    /// markers on a dedicated overlay lane in the Chrome trace.  An
    /// empty slice leaves every output byte-identical to an exporter
    /// with no alerts attached.
    pub fn alerts(mut self, entries: &[AlertEntry]) -> Self {
        self.alerts = entries.to_vec();
        self
    }

    /// Like [`Exporter::spans`], from an already-snapshotted event list.
    pub fn span_events(mut self, mut events: Vec<SpanEvent>) -> Self {
        // Concurrent writers (analysis workers) make the journal's slot
        // order nondeterministic; a total order on the event value
        // itself makes every export deterministic.
        events.sort_by_key(|e| (e.t_us, e.track, e.name, e.id, e.phase, e.arg));
        self.spans = events;
        self
    }

    // ---- shared walk ---------------------------------------------------

    /// Crate-internal constructor for [`Profile`](crate::Profile), the
    /// one place outside this module allowed to assemble an exporter:
    /// every other caller goes through the `Profile` surface.
    pub(crate) fn assemble(
        r: &'a Reconstruction,
        run: Option<&'a SupervisedRun>,
        spans: Vec<SpanEvent>,
        alerts: Vec<AlertEntry>,
        name: &str,
    ) -> Self {
        let mut ex = Exporter::new(r).name(name).span_events(spans);
        ex.run = run;
        ex.alerts = alerts;
        ex
    }

    /// Trace items grouped per (session, lane), in deterministic order.
    fn lanes(&self) -> BTreeMap<(usize, u32), Vec<&'a TraceItem>> {
        let mut lanes: BTreeMap<(usize, u32), Vec<&TraceItem>> = BTreeMap::new();
        let mut session = 0usize;
        for item in &self.r.trace {
            if matches!(item.kind, ItemKind::SessionBreak) {
                session += 1;
                continue;
            }
            lanes.entry((session, item.lane)).or_default().push(item);
        }
        lanes
    }

    /// First microsecond of the supervised timeline (the exporter's
    /// time origin when a run is attached).
    fn base(&self) -> u64 {
        let Some(run) = self.run else { return 0 };
        run.sessions
            .iter()
            .map(|s| s.start_us)
            .chain(run.gaps.iter().map(|g| g.start_us))
            .min()
            .unwrap_or(0)
    }

    /// Timeline offset added to session-local µs of `session`.
    fn session_offset(&self, session: usize, base: u64) -> u64 {
        self.run
            .and_then(|run| run.sessions.get(session))
            .map(|s| s.start_us.saturating_sub(base))
            .unwrap_or(0)
    }

    /// Last microsecond of the export (for counter tracks).
    fn end_ts(&self, base: u64) -> u64 {
        if let Some(run) = self.run {
            return run.coverage.timeline_us;
        }
        let _ = base;
        self.r
            .trace
            .iter()
            .map(|it| match it.kind {
                ItemKind::Call { elapsed, .. } => it.t + elapsed,
                _ => it.t,
            })
            .max()
            .unwrap_or(0)
    }

    // ---- Chrome Trace Event JSON ---------------------------------------

    /// Chrome Trace Event JSON (object form), loadable in Perfetto or
    /// `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        let base = self.base();
        let lanes = self.lanes();
        let mut ev: Vec<String> = Vec::new();

        // Metadata: name every process and thread lane up front.
        ev.push(meta_process(OVERLAY_PID, "capture timeline"));
        ev.push(meta_thread(OVERLAY_PID, 0, "coverage"));
        if !self.alerts.is_empty() {
            ev.push(meta_thread(OVERLAY_PID, 1, "alerts"));
        }
        let mut named_session = usize::MAX;
        for &(session, lane) in lanes.keys() {
            if session != named_session {
                named_session = session;
                let label = match self.run.and_then(|r| r.sessions.get(session)) {
                    Some(s) => format!(
                        "kernel session {session} (bank {}, {})",
                        s.index,
                        level_label(s.level)
                    ),
                    None => format!("kernel session {session}"),
                };
                ev.push(meta_process(session as u64 + 1, &label));
            }
            ev.push(meta_thread(
                session as u64 + 1,
                u64::from(lane) + 1,
                &format!("control {lane}"),
            ));
        }
        if !self.spans.is_empty() {
            ev.push(meta_process(PIPELINE_PID, "capture pipeline"));
            for track in [
                SpanTrack::Supervisor,
                SpanTrack::Transport,
                SpanTrack::Analyzer,
                SpanTrack::Board,
                SpanTrack::Recorder,
            ] {
                ev.push(meta_thread(
                    PIPELINE_PID,
                    u64::from(track.idx()) + 1,
                    track.label(),
                ));
            }
        }

        // Kernel lanes.
        for (&(session, lane), items) in &lanes {
            let pid = session as u64 + 1;
            let tid = u64::from(lane) + 1;
            let off = self.session_offset(session, base);
            for cev in lane_call_events(items) {
                match cev {
                    CallEv::Open {
                        sym,
                        t,
                        net,
                        elapsed,
                    } => ev.push(format!(
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                         \"args\":{{\"net_us\":{net},\"elapsed_us\":{elapsed}}}}}",
                        t + off,
                        esc(self.r.syms.name(sym)),
                    )),
                    CallEv::Close { sym, t } => ev.push(format!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\"}}",
                        t + off,
                        esc(self.r.syms.name(sym)),
                    )),
                    CallEv::Mark { sym, t } => ev.push(instant(
                        pid,
                        tid,
                        t + off,
                        &format!("== {}", self.r.syms.name(sym)),
                    )),
                    CallEv::OpenEnd { sym, t } => ev.push(instant(
                        pid,
                        tid,
                        t + off,
                        &format!("{} (open at capture end)", self.r.syms.name(sym)),
                    )),
                    CallEv::Switch { t, birth } => ev.push(instant(
                        pid,
                        tid,
                        t + off,
                        if birth {
                            "switch in (new process)"
                        } else {
                            "switch in"
                        },
                    )),
                }
            }
        }

        // Coverage overlay: one slice plus one instant per dark window,
        // and an instant at every mask-level change.
        if let Some(run) = self.run {
            for (i, gap) in run.gaps.iter().enumerate() {
                let ts = gap.start_us.saturating_sub(base);
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{OVERLAY_PID},\"tid\":0,\"ts\":{ts},\"dur\":{},\
                     \"name\":\"dark ({})\",\"args\":{{\"gap\":{i},\"span_us\":{}}}}}",
                    gap.span_us(),
                    cause_label(gap.cause),
                    gap.span_us(),
                ));
                ev.push(instant(
                    OVERLAY_PID,
                    0,
                    ts,
                    &format!("gap ({})", cause_label(gap.cause)),
                ));
            }
            let mut level: Option<TagMaskLevel> = None;
            for s in &run.sessions {
                if level != Some(s.level) {
                    level = Some(s.level);
                    ev.push(instant(
                        OVERLAY_PID,
                        0,
                        s.start_us.saturating_sub(base),
                        &format!("mask level = {}", level_label(s.level)),
                    ));
                }
            }
        }

        // Anomaly totals as a counter track (flat line start -> end).
        let a = &self.r.anomalies;
        let counters = format!(
            "{{\"orphan_exits\":{},\"unmatched_entries\":{},\"unknown_tags\":{},\
             \"time_jumps\":{},\"duplicates\":{},\"truncations\":{}}}",
            a.orphan_exits,
            a.unmatched_entries,
            a.unknown_tags,
            a.time_jumps,
            a.duplicates,
            a.truncations,
        );
        for ts in [0, self.end_ts(base)] {
            ev.push(format!(
                "{{\"ph\":\"C\",\"pid\":{OVERLAY_PID},\"tid\":0,\"ts\":{ts},\
                 \"name\":\"anomalies\",\"args\":{counters}}}",
            ));
        }

        // Sentinel alert transitions as instant markers on their own
        // overlay lane, in journal order.
        for a in &self.alerts {
            ev.push(instant(
                OVERLAY_PID,
                1,
                a.at_us.saturating_sub(base),
                &format!(
                    "{} {}({}) delta {:+} {}",
                    a.transition.label(),
                    a.detector.label(),
                    esc(&a.subject),
                    a.delta,
                    a.detector.unit(),
                ),
            ));
        }

        // Pipeline lanes from the span journal: begin/end pairs render
        // as complete (`X`) slices, instants as instants.
        for span in self.paired_spans(base) {
            let pid = PIPELINE_PID;
            let tid = u64::from(span.track.idx()) + 1;
            match span.dur {
                Some(dur) => ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{dur},\
                     \"name\":\"{}\",\"args\":{{\"id\":{},\"arg\":{}}}}}",
                    span.ts,
                    esc(&span.name),
                    span.id,
                    span.arg,
                )),
                None => ev.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                     \"name\":\"{}\",\"args\":{{\"id\":{},\"arg\":{}}}}}",
                    span.ts,
                    esc(&span.name),
                    span.id,
                    span.arg,
                )),
            }
        }

        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"exporter\":\"{}\",\
             \"sessions\":{},\"context_switches\":{}}},\"traceEvents\":[{}]}}",
            esc(&self.name),
            self.r.sessions,
            self.r.context_switches,
            ev.join(","),
        )
    }

    /// Span-journal events with begin/end pairs joined and times
    /// re-based onto the export timeline.
    fn paired_spans(&self, base: u64) -> Vec<PairedSpan> {
        let rebase = |ev: &SpanEvent| -> u64 {
            match (ev.track, self.run) {
                // Analysis workers only know bank-relative time; place
                // them at their session's spot on the timeline.
                (SpanTrack::Analyzer, Some(run)) => {
                    let off = run
                        .sessions
                        .get(ev.id as usize)
                        .map(|s| s.start_us.saturating_sub(base))
                        .unwrap_or(0);
                    ev.t_us + off
                }
                (_, Some(_)) => ev.t_us.saturating_sub(base),
                (_, None) => ev.t_us,
            }
        };
        let mut open: BTreeMap<(SpanTrack, SpanName, u64), (u64, u64)> = BTreeMap::new();
        let mut out = Vec::new();
        for ev in &self.spans {
            let ts = rebase(ev);
            match ev.phase {
                SpanPhase::Begin => {
                    open.insert((ev.track, ev.name, ev.id), (ts, ev.arg));
                }
                SpanPhase::End => match open.remove(&(ev.track, ev.name, ev.id)) {
                    Some((begin_ts, _)) => out.push(PairedSpan {
                        track: ev.track,
                        name: ev.name.label().to_string(),
                        ts: begin_ts,
                        dur: Some(ts.saturating_sub(begin_ts)),
                        id: ev.id,
                        arg: ev.arg,
                    }),
                    None => out.push(PairedSpan {
                        track: ev.track,
                        name: format!("{} (unmatched end)", ev.name.label()),
                        ts,
                        dur: None,
                        id: ev.id,
                        arg: ev.arg,
                    }),
                },
                SpanPhase::Instant => out.push(PairedSpan {
                    track: ev.track,
                    name: ev.name.label().to_string(),
                    ts,
                    dur: None,
                    id: ev.id,
                    arg: ev.arg,
                }),
            }
        }
        for ((track, name, id), (ts, arg)) in open {
            out.push(PairedSpan {
                track,
                name: format!("{} (open at capture end)", name.label()),
                ts,
                dur: None,
                id,
                arg,
            });
        }
        out.sort_by(|a, b| (a.ts, a.track, &a.name, a.id).cmp(&(b.ts, b.track, &b.name, b.id)));
        out
    }

    // ---- speedscope ----------------------------------------------------

    /// speedscope JSON: one evented profile per thread of control.
    pub fn speedscope(&self) -> String {
        let base = self.base();
        let frames: Vec<String> = (0..self.r.syms.len())
            .map(|i| format!("{{\"name\":\"{}\"}}", esc(self.r.syms.name(i as SymId))))
            .collect();
        let mut profiles: Vec<String> = Vec::new();
        for (&(session, lane), items) in &self.lanes() {
            let off = self.session_offset(session, base);
            let mut events: Vec<String> = Vec::new();
            let mut first = None;
            let mut last = 0u64;
            for cev in lane_call_events(items) {
                let (ty, sym, at) = match cev {
                    CallEv::Open { sym, t, .. } => ("O", sym, t + off),
                    CallEv::Close { sym, t } => ("C", sym, t + off),
                    // Inline marks, unclosed frames and switch points
                    // have no evented-profile representation.
                    _ => continue,
                };
                first.get_or_insert(at);
                last = last.max(at);
                events.push(format!("{{\"type\":\"{ty}\",\"frame\":{sym},\"at\":{at}}}"));
            }
            let Some(first) = first else { continue };
            profiles.push(format!(
                "{{\"type\":\"evented\",\"name\":\"session {session} control {lane}\",\
                 \"unit\":\"microseconds\",\"startValue\":{first},\"endValue\":{last},\
                 \"events\":[{}]}}",
                events.join(","),
            ));
        }
        format!(
            "{{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\
             \"name\":\"{}\",\"activeProfileIndex\":0,\"exporter\":\"hwprof\",\
             \"shared\":{{\"frames\":[{}]}},\"profiles\":[{}]}}",
            esc(&self.name),
            frames.join(","),
            profiles.join(","),
        )
    }

    // ---- folded stacks -------------------------------------------------

    /// Folded-stack flamegraph text: `a;b;c net_us` per line, sorted,
    /// aggregated over every session and thread of control.  Weights
    /// are per-call net µs, so the column total equals the
    /// reconstruction's total net time exactly.
    pub fn folded(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for items in self.lanes().values() {
            let mut path: Vec<SymId> = Vec::new();
            for cev in lane_call_events(items) {
                match cev {
                    CallEv::Open { sym, net, .. } => {
                        path.push(sym);
                        // Context-switch frames shape the path but have
                        // no net time of their own in the accounting.
                        if !self.r.syms.is_cswitch(sym) {
                            let key = path
                                .iter()
                                .map(|&s| self.r.syms.name(s))
                                .collect::<Vec<_>>()
                                .join(";");
                            *agg.entry(key).or_insert(0) += net;
                        }
                    }
                    CallEv::Close { .. } => {
                        path.pop();
                    }
                    _ => {}
                }
            }
        }
        let mut out = String::new();
        for (path, net) in agg {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&net.to_string());
            out.push('\n');
        }
        out
    }
}

/// One pipeline slice or point ready for the Chrome writer.
struct PairedSpan {
    track: SpanTrack,
    name: String,
    ts: u64,
    dur: Option<u64>,
    id: u64,
    arg: u64,
}

/// Balanced per-lane call stream derived from trace items.
enum CallEv {
    /// A completed call opens (its net/elapsed are known).
    Open {
        sym: SymId,
        t: u64,
        net: u64,
        elapsed: u64,
    },
    /// A previously opened call closes.
    Close { sym: SymId, t: u64 },
    /// An inline trigger point.
    Mark { sym: SymId, t: u64 },
    /// A call whose exit was never captured.
    OpenEnd { sym: SymId, t: u64 },
    /// Control switched onto this lane.
    Switch { t: u64, birth: bool },
}

/// Replays one lane's trace items into a balanced open/close stream.
///
/// Only *closed* calls open spans (their end time is `t + elapsed`);
/// a span is closed as soon as a later call at the same-or-shallower
/// depth proves the frame ended, or at lane end.  Closes pop deepest
/// first, so spans nest properly and times never run backwards.
fn lane_call_events(items: &[&TraceItem]) -> Vec<CallEv> {
    let mut out = Vec::new();
    // (sym, end time, depth) of every call still open.
    let mut stack: Vec<(SymId, u64, usize)> = Vec::new();
    for item in items {
        match item.kind {
            ItemKind::Call {
                sym,
                net,
                elapsed,
                closed,
                ..
            } => {
                while stack.last().is_some_and(|&(_, _, d)| d >= item.depth) {
                    let (s, end, _) = stack.pop().expect("guarded");
                    out.push(CallEv::Close { sym: s, t: end });
                }
                if closed {
                    out.push(CallEv::Open {
                        sym,
                        t: item.t,
                        net,
                        elapsed,
                    });
                    stack.push((sym, item.t + elapsed, item.depth));
                } else {
                    out.push(CallEv::OpenEnd { sym, t: item.t });
                }
            }
            ItemKind::Inline { sym } => out.push(CallEv::Mark { sym, t: item.t }),
            ItemKind::SwitchIn { birth } => out.push(CallEv::Switch { t: item.t, birth }),
            ItemKind::Return { .. } | ItemKind::SessionBreak => {}
        }
    }
    while let Some((s, end, _)) = stack.pop() {
        out.push(CallEv::Close { sym: s, t: end });
    }
    out
}

fn meta_process(pid: u64, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    )
}

fn meta_thread(pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    )
}

fn instant(pid: u64, tid: u64, ts: u64, name: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
         \"name\":\"{}\"}}",
        esc(name)
    )
}

fn level_label(level: TagMaskLevel) -> &'static str {
    match level {
        TagMaskLevel::All => "All",
        TagMaskLevel::HotMasked => "HotMasked",
        TagMaskLevel::SwitchOnly => "SwitchOnly",
    }
}

fn cause_label(cause: GapCause) -> &'static str {
    match cause {
        GapCause::Overflow => "overflow",
        GapCause::Drain => "drain",
        GapCause::BankLost => "bank lost",
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---- minimal JSON reader (for gates and property tests) ----------------

/// Parsed JSON value, produced by [`validate_json`].  Just enough
/// structure for the repro gates and property tests to walk exported
/// documents without external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses `s` as one JSON document, rejecting trailing garbage.  This
/// is the schema floor every exported JSON must clear; the repro gate
/// and property tests run all output through it.
pub fn validate_json(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&x| x as char),
            *pos
        )),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            other.map(|&x| x as char),
                            *pos
                        ))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(out));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {} (found {:?})",
                    *pos,
                    other.map(|&x| x as char)
                ))
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(out));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {} (found {:?})",
                    *pos,
                    other.map(|&x| x as char)
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::decode;
    use hwprof_profiler::RawRecord;

    fn rec(tag: u16, time: u32) -> RawRecord {
        RawRecord { tag, time }
    }

    const TF: &str = "a/100\nb/102\nc/104\nswtch/200!\nMARK/300=\n";

    fn fixture() -> Reconstruction {
        let tf = hwprof_tagfile::parse(TF).unwrap();
        // a{ b{} MARK } with a switch to a newborn process running c{}.
        let recs = [
            rec(100, 0),
            rec(102, 10),
            rec(103, 40),
            rec(300, 45),
            rec(200, 50),
            rec(201, 60), // birth
            rec(104, 70),
            rec(105, 90),
            rec(200, 95),
            rec(201, 100), // back to the first lane
            rec(101, 120),
        ];
        let (syms, ev) = decode(&recs, &tf);
        crate::Analyzer::new(&syms).session(&ev).expect("ungated")
    }

    #[test]
    fn chrome_trace_is_valid_json_with_balanced_spans() {
        let r = fixture();
        let out = Exporter::new(&r).chrome_trace();
        let doc = validate_json(&out).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Per (pid, tid, name): every B is eventually closed by an E at
        // a time >= its own.
        let mut open: std::collections::HashMap<(u64, u64, String), Vec<u64>> =
            std::collections::HashMap::new();
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            if ph != "B" && ph != "E" {
                continue;
            }
            let key = (
                ev.get("pid").unwrap().as_u64().unwrap(),
                ev.get("tid").unwrap().as_u64().unwrap(),
                ev.get("name").unwrap().as_str().unwrap().to_string(),
            );
            let ts = ev.get("ts").unwrap().as_u64().unwrap();
            if ph == "B" {
                open.entry(key).or_default().push(ts);
            } else {
                let begin = open
                    .get_mut(&key)
                    .and_then(|v| v.pop())
                    .unwrap_or_else(|| panic!("E without B: {key:?}"));
                assert!(ts >= begin, "negative duration for {key:?}");
            }
        }
        for (key, stack) in open {
            assert!(stack.is_empty(), "unclosed B events for {key:?}");
        }
        // The two threads of control got distinct lanes.
        assert!(out.contains("\"name\":\"control 0\""));
        assert!(out.contains("\"name\":\"control 1\""));
        assert!(out.contains("== MARK"));
    }

    #[test]
    fn speedscope_profiles_are_monotonic() {
        let r = fixture();
        let out = Exporter::new(&r).speedscope();
        let doc = validate_json(&out).expect("valid JSON");
        let profiles = doc.get("profiles").unwrap().as_array().unwrap();
        assert!(!profiles.is_empty());
        for p in profiles {
            let events = p.get("events").unwrap().as_array().unwrap();
            let mut depth = 0i64;
            let mut last = 0u64;
            for ev in events {
                let at = ev.get("at").unwrap().as_u64().unwrap();
                assert!(at >= last, "time went backwards");
                last = at;
                match ev.get("type").unwrap().as_str().unwrap() {
                    "O" => depth += 1,
                    "C" => depth -= 1,
                    other => panic!("unexpected event type {other}"),
                }
                assert!(depth >= 0, "close before open");
            }
            assert_eq!(depth, 0, "profile left frames open");
            let start = p.get("startValue").unwrap().as_u64().unwrap();
            let end = p.get("endValue").unwrap().as_u64().unwrap();
            assert!(start <= end);
        }
    }

    #[test]
    fn folded_total_matches_net_accounting() {
        let r = fixture();
        let out = Exporter::new(&r).folded();
        let total: u64 = out
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let net: u64 = r.stats.iter().map(|a| a.net).sum();
        assert_eq!(total, net, "folded:\n{out}");
        // Nested paths show up folded.
        assert!(out.contains("a;b "), "folded:\n{out}");
        // The newborn lane's call is its own root.
        assert!(out.lines().any(|l| l.starts_with("c ")), "folded:\n{out}");
    }

    #[test]
    fn span_journal_renders_as_pipeline_lanes() {
        let r = fixture();
        let log = SpanLog::with_capacity(16);
        log.begin(SpanTrack::Supervisor, SpanName::Bank, 10, 0, 0);
        log.end(SpanTrack::Supervisor, SpanName::Bank, 90, 0, 11);
        log.instant(SpanTrack::Transport, SpanName::Retry, 95, 0, 1);
        log.begin(SpanTrack::Transport, SpanName::Upload, 90, 0, 0);
        // Deliberately left open.
        let out = Exporter::new(&r).spans(&log).chrome_trace();
        validate_json(&out).expect("valid JSON");
        assert!(out.contains("\"name\":\"capture pipeline\""));
        assert!(out.contains("\"ph\":\"X\""), "paired span becomes a slice");
        assert!(out.contains("\"dur\":80"));
        assert!(out.contains("retry"));
        assert!(out.contains("upload (open at capture end)"));
    }

    #[test]
    fn validator_accepts_tricky_and_rejects_broken() {
        let ok = r#"{"a":[1,2.5,-3,true,false,null],"b":"q\"\\\u0041\n","c":{}}"#;
        let doc = validate_json(ok).expect("valid");
        assert_eq!(doc.get("b").unwrap().as_str(), Some("q\"\\A\n"));
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
