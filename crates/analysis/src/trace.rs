//! The real-time code path trace report (Figure 4).

use crate::recon::{ItemKind, Reconstruction};

/// Rendering options for the trace report.
#[derive(Debug, Clone, Copy)]
pub struct TraceStyle {
    /// Print a bare `<-` when a frame that had children closes.
    pub close_nested: bool,
    /// Indent width per nesting level.
    pub indent: usize,
    /// Maximum lines to emit (None = all).
    pub max_lines: Option<usize>,
    /// Skip events before this µs offset.
    pub from_us: u64,
}

impl Default for TraceStyle {
    fn default() -> Self {
        TraceStyle {
            close_nested: true,
            indent: 4,
            max_lines: None,
            from_us: 0,
        }
    }
}

/// Formats `t` microseconds as the paper's `s:mmm uuu` column.
pub fn fmt_time(t: u64) -> String {
    format!("{}:{:03} {:03}", t / 1_000_000, (t / 1000) % 1000, t % 1000)
}

/// Renders the nested code path trace: entries as
/// `-> func (net us, total total)`, inline triggers marked with `==`,
/// context switches flagged, and returns shown for frames that span a
/// switch (named) or contained subcalls (bare), per Figure 4.
pub fn trace_report(r: &Reconstruction, style: &TraceStyle) -> String {
    let mut out = String::new();
    let mut lines = 0usize;
    for item in &r.trace {
        if item.t < style.from_us {
            continue;
        }
        if let Some(max) = style.max_lines {
            if lines >= max {
                out.push_str("             ...\n");
                break;
            }
        }
        let pad = " ".repeat(style.indent * item.depth);
        let line = match item.kind {
            ItemKind::Call {
                sym,
                net,
                elapsed,
                children,
                closed,
                ..
            } => {
                let name = r.syms.name(sym);
                if !closed {
                    format!(
                        "{} {}-> {} (open at capture end)",
                        fmt_time(item.t),
                        pad,
                        name
                    )
                } else if children == 0 {
                    format!("{} {}-> {} ({} us)", fmt_time(item.t), pad, name, net)
                } else {
                    format!(
                        "{} {}-> {} ({} us, {} total)",
                        fmt_time(item.t),
                        pad,
                        name,
                        net,
                        elapsed
                    )
                }
            }
            ItemKind::Return { sym, net, elapsed } => match sym {
                Some(s) if r.syms.is_cswitch(s) => {
                    format!("{} {}<- {}", fmt_time(item.t), pad, r.syms.name(s))
                }
                Some(s) => format!(
                    "{} {}<- {} ({} us, {} total)",
                    fmt_time(item.t),
                    pad,
                    r.syms.name(s),
                    net,
                    elapsed
                ),
                None => {
                    if !style.close_nested {
                        continue;
                    }
                    format!("{} {}<-", fmt_time(item.t), pad)
                }
            },
            ItemKind::Inline { sym } => {
                format!("{} {}== {}", fmt_time(item.t), pad, r.syms.name(sym))
            }
            ItemKind::SwitchIn { birth } => format!(
                "{} <- ---- Context switch in{} ----",
                fmt_time(item.t),
                if birth { " (new process)" } else { "" }
            ),
            ItemKind::SessionBreak => {
                if r.sessions <= 1 {
                    continue;
                }
                format!(
                    "{} ======== capture session boundary ========",
                    fmt_time(item.t)
                )
            }
        };
        out.push_str(&line);
        out.push('\n');
        lines += 1;
    }
    if !r.anomalies.is_clean() {
        out.push_str(&format!(
            "          ---- capture integrity: {} ----\n",
            r.anomalies
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::decode;
    fn analyze(syms: &crate::Symbols, events: &[crate::Event]) -> crate::Reconstruction {
        crate::Analyzer::new(syms).session(events).expect("ungated")
    }
    use hwprof_profiler::RawRecord;

    #[test]
    fn time_format_matches_figure_4() {
        assert_eq!(fmt_time(2_671), "0:002 671");
        assert_eq!(fmt_time(5_488), "0:005 488");
        assert_eq!(fmt_time(1_000_001), "1:000 001");
    }

    #[test]
    fn trace_shows_nesting_and_inline_markers() {
        let tf = hwprof_tagfile::parse("outer/100\ninner/102\nMGET/300=\n").unwrap();
        let recs = [
            RawRecord {
                tag: 100,
                time: 1000,
            },
            RawRecord {
                tag: 102,
                time: 1010,
            },
            RawRecord {
                tag: 300,
                time: 1015,
            },
            RawRecord {
                tag: 103,
                time: 1030,
            },
            RawRecord {
                tag: 101,
                time: 1050,
            },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let t = trace_report(&r, &TraceStyle::default());
        assert!(t.contains("-> outer (30 us, 50 total)"), "trace:\n{t}");
        assert!(t.contains("    -> inner (20 us)"));
        assert!(t.contains("== MGET"));
        // outer had a child, so it closes with a bare return.
        assert!(t.contains("0:000 050 <-"));
    }

    #[test]
    fn context_switch_is_flagged() {
        let tf = hwprof_tagfile::parse("a/100\nswtch/200!\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 200, time: 10 },
            RawRecord { tag: 201, time: 30 },
            RawRecord { tag: 101, time: 40 },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let t = trace_report(&r, &TraceStyle::default());
        assert!(t.contains("<- swtch"), "trace:\n{t}");
    }
}
