//! The real-time code path trace report (Figure 4).

use crate::recon::{ItemKind, Reconstruction};

/// Rendering options for the trace report.
#[derive(Debug, Clone, Copy)]
pub struct TraceStyle {
    /// Print a bare `<-` when a frame that had children closes.
    pub close_nested: bool,
    /// Indent width per nesting level.
    pub indent: usize,
    /// Maximum lines to emit (None = all).  When the trace is longer, a
    /// `... truncated (N more lines)` marker closes the report.
    pub max_lines: Option<usize>,
    /// Skip events before this µs offset.
    pub from_us: u64,
    /// Lead with a column-legend header line.
    pub header: bool,
}

impl Default for TraceStyle {
    fn default() -> Self {
        TraceStyle {
            close_nested: true,
            indent: 4,
            max_lines: None,
            from_us: 0,
            header: false,
        }
    }
}

/// Formats `t` microseconds as the paper's `s:mmm uuu` column.
pub fn fmt_time(t: u64) -> String {
    format!("{}:{:03} {:03}", t / 1_000_000, (t / 1000) % 1000, t % 1000)
}

/// Renders the nested code path trace: entries as
/// `-> func (net us, total total)`, inline triggers marked with `==`,
/// context switches flagged, and returns shown for frames that span a
/// switch (named) or contained subcalls (bare), per Figure 4.
pub fn trace_report(r: &Reconstruction, style: &TraceStyle) -> String {
    let mut out = String::new();
    if style.header {
        out.push_str("    sec:ms  us  code path (-> call, <- return, == inline, ! switch)\n");
    }
    let mut lines = 0usize;
    let mut suppressed = 0usize;
    for item in &r.trace {
        if item.t < style.from_us {
            continue;
        }
        let Some(line) = render_item(r, style, item) else {
            continue;
        };
        if style.max_lines.is_some_and(|max| lines >= max) {
            suppressed += 1;
            continue;
        }
        out.push_str(&line);
        out.push('\n');
        lines += 1;
    }
    if suppressed > 0 {
        out.push_str(&format!(
            "             ... truncated ({suppressed} more line{})\n",
            if suppressed == 1 { "" } else { "s" }
        ));
    }
    if !r.anomalies.is_clean() {
        out.push_str(&format!(
            "          ---- capture integrity: {} ----\n",
            r.anomalies
        ));
    }
    out
}

/// Renders one trace item, or `None` for items the style suppresses.
fn render_item(
    r: &Reconstruction,
    style: &TraceStyle,
    item: &crate::recon::TraceItem,
) -> Option<String> {
    let pad = " ".repeat(style.indent * item.depth);
    let line = match item.kind {
        ItemKind::Call {
            sym,
            net,
            elapsed,
            children,
            closed,
            ..
        } => {
            let name = r.syms.name(sym);
            if !closed {
                format!(
                    "{} {}-> {} (open at capture end)",
                    fmt_time(item.t),
                    pad,
                    name
                )
            } else if children == 0 {
                format!("{} {}-> {} ({} us)", fmt_time(item.t), pad, name, net)
            } else {
                format!(
                    "{} {}-> {} ({} us, {} total)",
                    fmt_time(item.t),
                    pad,
                    name,
                    net,
                    elapsed
                )
            }
        }
        ItemKind::Return { sym, net, elapsed } => match sym {
            Some(s) if r.syms.is_cswitch(s) => {
                format!("{} {}<- {}", fmt_time(item.t), pad, r.syms.name(s))
            }
            Some(s) => format!(
                "{} {}<- {} ({} us, {} total)",
                fmt_time(item.t),
                pad,
                r.syms.name(s),
                net,
                elapsed
            ),
            None => {
                if !style.close_nested {
                    return None;
                }
                format!("{} {}<-", fmt_time(item.t), pad)
            }
        },
        ItemKind::Inline { sym } => {
            format!("{} {}== {}", fmt_time(item.t), pad, r.syms.name(sym))
        }
        ItemKind::SwitchIn { birth } => format!(
            "{} <- ---- Context switch in{} ----",
            fmt_time(item.t),
            if birth { " (new process)" } else { "" }
        ),
        ItemKind::SessionBreak => {
            if r.sessions <= 1 {
                return None;
            }
            format!(
                "{} ======== capture session boundary ========",
                fmt_time(item.t)
            )
        }
    };
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::decode;
    fn analyze(syms: &crate::Symbols, events: &[crate::Event]) -> crate::Reconstruction {
        crate::Analyzer::new(syms).session(events).expect("ungated")
    }
    use hwprof_profiler::RawRecord;

    #[test]
    fn time_format_matches_figure_4() {
        assert_eq!(fmt_time(2_671), "0:002 671");
        assert_eq!(fmt_time(5_488), "0:005 488");
        assert_eq!(fmt_time(1_000_001), "1:000 001");
    }

    #[test]
    fn trace_shows_nesting_and_inline_markers() {
        let tf = hwprof_tagfile::parse("outer/100\ninner/102\nMGET/300=\n").unwrap();
        let recs = [
            RawRecord {
                tag: 100,
                time: 1000,
            },
            RawRecord {
                tag: 102,
                time: 1010,
            },
            RawRecord {
                tag: 300,
                time: 1015,
            },
            RawRecord {
                tag: 103,
                time: 1030,
            },
            RawRecord {
                tag: 101,
                time: 1050,
            },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let t = trace_report(&r, &TraceStyle::default());
        assert!(t.contains("-> outer (30 us, 50 total)"), "trace:\n{t}");
        assert!(t.contains("    -> inner (20 us)"));
        assert!(t.contains("== MGET"));
        // outer had a child, so it closes with a bare return.
        assert!(t.contains("0:000 050 <-"));
    }

    #[test]
    fn truncation_is_explicit_and_counts_suppressed_lines() {
        let tf = hwprof_tagfile::parse("outer/100\ninner/102\n").unwrap();
        let mut recs = Vec::new();
        for i in 0..10u32 {
            recs.push(RawRecord {
                tag: 102,
                time: i * 10,
            });
            recs.push(RawRecord {
                tag: 103,
                time: i * 10 + 5,
            });
        }
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let full = trace_report(&r, &TraceStyle::default());
        let full_lines = full.lines().count();
        let style = TraceStyle {
            max_lines: Some(3),
            ..TraceStyle::default()
        };
        let t = trace_report(&r, &style);
        let expect = format!("... truncated ({} more lines)", full_lines - 3);
        assert!(t.contains(&expect), "trace:\n{t}");
        assert_eq!(t.lines().count(), 4, "3 lines + marker:\n{t}");
        // A limit the trace fits under adds no marker.
        let roomy = TraceStyle {
            max_lines: Some(1000),
            ..TraceStyle::default()
        };
        assert!(!trace_report(&r, &roomy).contains("truncated"));
    }

    #[test]
    fn header_line_is_opt_in() {
        let tf = hwprof_tagfile::parse("outer/100\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 101, time: 9 },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        assert!(!trace_report(&r, &TraceStyle::default()).contains("code path"));
        let style = TraceStyle {
            header: true,
            ..TraceStyle::default()
        };
        let t = trace_report(&r, &style);
        assert!(t.starts_with("    sec:ms  us  code path"), "trace:\n{t}");
    }

    #[test]
    fn context_switch_is_flagged() {
        let tf = hwprof_tagfile::parse("a/100\nswtch/200!\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 200, time: 10 },
            RawRecord { tag: 201, time: 30 },
            RawRecord { tag: 101, time: 40 },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let t = trace_report(&r, &TraceStyle::default());
        assert!(t.contains("<- swtch"), "trace:\n{t}");
    }
}
