//! The analysis software: "the raw data is then uploaded to a UNIX host.
//! The data is processed by matching the event data (with the microsecond
//! time values) with the function names as listed in the name file."
//!
//! Two reports are produced, exactly as in the paper:
//!
//! * a per-function **summary** "sorted by highest to lowest net CPU
//!   usage, headed by an overall summary of the profiling data"
//!   (Figure 3), and
//! * a **code path trace** showing nested calls in real time with
//!   accumulated and net times, context switches flagged (Figure 4).
//!
//! The analyzer must cope with everything the hardware throws at it:
//! 24-bit timestamp wraps (interval arithmetic only), captures that start
//! mid-call (orphan exits), and the control-flow discontinuities at
//! `swtch` — "it appears a different subroutine is being exited than was
//! called" — which it resolves by keeping one reconstructed stack per
//! thread of control and matching the resumed stack by its next
//! unmatched exit.

pub mod analyzer;
pub mod anomaly;
pub mod columnar;
pub mod events;
pub mod export;
pub mod graph;
pub mod groups;
pub mod hist;
pub mod profile;
#[cfg(test)]
mod proptests;
pub mod recon;
pub mod recorder;
pub mod report;
pub mod sentinel;
pub mod stitch;
pub mod stream;
pub mod trace;
pub mod whatif;

pub use analyzer::{Analyzer, AnalyzerError};
pub use anomaly::Anomalies;
pub use columnar::{ColumnarDecoder, DenseTagTable};
pub use events::{
    decode, decode_recovering, decode_recovering_scalar, decode_scalar, unwrap_times, EvKind,
    Event, SessionDecoder, SymId, Symbols, TagMap, TimeUnwrapper, TIME_JUMP_THRESHOLD,
};
pub use export::{validate_json, Exporter, JsonValue};
pub use profile::Profile;
pub use recon::{
    reconstruct_session, reconstruct_session_recovering, FnAgg, Reconstruction, SessionRecon,
};
pub use recorder::{DiffRow, FlightRecorder, RecorderLedger, WindowDiff, WindowRollup};
pub use report::{fmt_us, summary_report};
pub use sentinel::{
    AlertEntry, AlertJournal, AlertTransition, Baseline, Detector, FleetAlert, FleetSentinel,
    Sentinel, SentinelConfig, SentinelConfigBuilder, SentinelConfigError,
};
pub use stitch::{
    scale_factor, scaled_calls, stitch_events, visibility, visible_us, MaskVisibility,
};
pub use stream::{BankFeed, PipelineClosed, RecordStream, StreamAnalyzer};
pub use trace::{trace_report, TraceStyle};
