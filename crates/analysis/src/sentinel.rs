//! Deterministic regression sentinel over flight-recorder windows.
//!
//! The recorder (PR 8) can *show* a shift — `WindowDiff` ranks movers —
//! but nothing watches continuously and raises a hand.  The sentinel
//! closes that loop: a [`Baseline`] learns per-function rate statistics
//! over a configurable warm-up span using exact integer accumulation, a
//! fixed set of [`Detector`]s evaluates every window after it, and a
//! per-(detector, subject) hysteresis state machine (Pending → Firing →
//! Resolved, with consecutive-window thresholds) keeps one noisy window
//! from flapping an alert.  Every transition lands in an append-only
//! [`AlertJournal`] carrying exact evidence: the window index, the
//! baseline statistic, the observed statistic, and their delta.
//!
//! Everything here is integer/fixed-point arithmetic over the same
//! [`Reconstruction`] counters the reports print, so evaluation is
//! byte-reproducible: the same window stream produces the same journal,
//! byte for byte, on every run.
//!
//! ```
//! use hwprof_analysis::{Sentinel, SentinelConfig};
//! let cfg = SentinelConfig::builder().warmup_windows(2).build().unwrap();
//! let sentinel = Sentinel::new(cfg);
//! assert!(sentinel.journal().is_empty());
//! ```
//!
//! The fleet side is a pure fold: [`FleetSentinel::roll_up`] groups the
//! Firing transitions of member journals by (detector, subject) and
//! promotes any pair seen on at least `quorum` machines to a
//! fleet-level [`FleetAlert`]; single-machine outliers stay
//! member-level.

use std::collections::BTreeMap;

use hwprof_telemetry::{Counter, Gauge, Registry};

use crate::recon::Reconstruction;
use crate::recorder::{FlightRecorder, RecorderLedger};
use crate::stitch::{visible_us, MaskVisibility};

/// One million, the ppm denominator used throughout.
const PPM: u128 = 1_000_000;
/// Hysteresis key for the whole-window (non-per-function) detectors.
const GLOBAL: u32 = u32::MAX;

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Configuration for a [`Sentinel`]: the baseline warm-up span, the
/// hysteresis thresholds, and one threshold per detector.
///
/// Built with [`SentinelConfig::builder`]; the builder validates on
/// [`build`](SentinelConfigBuilder::build) and returns a
/// [`SentinelConfigError`] instead of clamping silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelConfig {
    /// Windows the [`Baseline`] accumulates before freezing.  No
    /// detector evaluates during warm-up.
    pub warmup_windows: u64,
    /// Consecutive breaching windows before a Pending alert fires.
    pub fire_after: u32,
    /// Consecutive clear windows before a Firing alert resolves.
    pub resolve_after: u32,
    /// Rate-shift threshold, in ppm of relative change of a function's
    /// coverage-scaled net rate vs its baseline (500_000 = ±50%).
    pub rate_shift_ppm: u32,
    /// Noise floor for the rate-shift detector: a function is only
    /// evaluated when its observed net time or its per-window baseline
    /// average reaches this many µs.
    pub min_net_us: u64,
    /// Coverage-drop threshold: breach when a window's covered ppm of
    /// its timeline falls below this.
    pub coverage_floor_ppm: u32,
    /// Mask-ladder residency threshold: breach when more than this ppm
    /// of a window's covered time ran below full visibility.
    pub ladder_residency_ppm: u32,
    /// Anomaly budget: breach when a window's anomalies exceed this
    /// ppm of its hardware events.
    pub anomaly_budget_ppm: u32,
    /// Eviction pressure: breach when the recorder ledger has written
    /// off more than this ppm of the elapsed timeline.
    pub eviction_ppm: u32,
}

impl SentinelConfig {
    /// Starts a builder with the defaults: 3-window warm-up, fire
    /// after 2 breaches, resolve after 2 clears, ±50% rate shift,
    /// 20 µs noise floor, 50% coverage floor, 50% ladder residency,
    /// 1% anomaly budget, 25% eviction pressure.
    pub fn builder() -> SentinelConfigBuilder {
        SentinelConfigBuilder {
            warmup_windows: 3,
            fire_after: 2,
            resolve_after: 2,
            rate_shift_ppm: 500_000,
            min_net_us: 20,
            coverage_floor_ppm: 500_000,
            ladder_residency_ppm: 500_000,
            anomaly_budget_ppm: 10_000,
            eviction_ppm: 250_000,
        }
    }
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig::builder().build().expect("defaults valid")
    }
}

/// Builder for [`SentinelConfig`].
#[must_use = "builders do nothing until .build() is called"]
#[derive(Debug, Clone, Copy)]
pub struct SentinelConfigBuilder {
    warmup_windows: u64,
    fire_after: u32,
    resolve_after: u32,
    rate_shift_ppm: u32,
    min_net_us: u64,
    coverage_floor_ppm: u32,
    ladder_residency_ppm: u32,
    anomaly_budget_ppm: u32,
    eviction_ppm: u32,
}

impl SentinelConfigBuilder {
    /// Sets the baseline warm-up span in windows.
    pub fn warmup_windows(mut self, windows: u64) -> Self {
        self.warmup_windows = windows;
        self
    }

    /// Sets the consecutive-breach threshold for Firing.
    pub fn fire_after(mut self, windows: u32) -> Self {
        self.fire_after = windows;
        self
    }

    /// Sets the consecutive-clear threshold for Resolved.
    pub fn resolve_after(mut self, windows: u32) -> Self {
        self.resolve_after = windows;
        self
    }

    /// Sets the rate-shift threshold in ppm of relative rate change.
    pub fn rate_shift_ppm(mut self, ppm: u32) -> Self {
        self.rate_shift_ppm = ppm;
        self
    }

    /// Sets the rate-shift noise floor in net µs.
    pub fn min_net_us(mut self, us: u64) -> Self {
        self.min_net_us = us;
        self
    }

    /// Sets the coverage floor in ppm of the window timeline.
    pub fn coverage_floor_ppm(mut self, ppm: u32) -> Self {
        self.coverage_floor_ppm = ppm;
        self
    }

    /// Sets the mask-ladder residency threshold in ppm of covered time.
    pub fn ladder_residency_ppm(mut self, ppm: u32) -> Self {
        self.ladder_residency_ppm = ppm;
        self
    }

    /// Sets the anomaly budget in ppm of hardware events.
    pub fn anomaly_budget_ppm(mut self, ppm: u32) -> Self {
        self.anomaly_budget_ppm = ppm;
        self
    }

    /// Sets the eviction-pressure threshold in ppm of elapsed time.
    pub fn eviction_ppm(mut self, ppm: u32) -> Self {
        self.eviction_ppm = ppm;
        self
    }

    /// Validates and builds the config.
    pub fn build(self) -> Result<SentinelConfig, SentinelConfigError> {
        if self.warmup_windows == 0 {
            return Err(SentinelConfigError::NoWarmup);
        }
        if self.fire_after == 0 {
            return Err(SentinelConfigError::NoFireThreshold);
        }
        if self.resolve_after == 0 {
            return Err(SentinelConfigError::NoResolveThreshold);
        }
        Ok(SentinelConfig {
            warmup_windows: self.warmup_windows,
            fire_after: self.fire_after,
            resolve_after: self.resolve_after,
            rate_shift_ppm: self.rate_shift_ppm,
            min_net_us: self.min_net_us,
            coverage_floor_ppm: self.coverage_floor_ppm,
            ladder_residency_ppm: self.ladder_residency_ppm,
            anomaly_budget_ppm: self.anomaly_budget_ppm,
            eviction_ppm: self.eviction_ppm,
        })
    }
}

/// Why a [`SentinelConfigBuilder`] refused to build.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentinelConfigError {
    /// `warmup_windows` was 0 — the baseline needs at least one window.
    NoWarmup,
    /// `fire_after` was 0 — an alert needs at least one breach.
    NoFireThreshold,
    /// `resolve_after` was 0 — an alert needs at least one clear.
    NoResolveThreshold,
}

impl std::fmt::Display for SentinelConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SentinelConfigError::NoWarmup => {
                write!(f, "sentinel warm-up must span at least one window")
            }
            SentinelConfigError::NoFireThreshold => {
                write!(f, "sentinel must fire after at least one breach")
            }
            SentinelConfigError::NoResolveThreshold => {
                write!(f, "sentinel must resolve after at least one clear")
            }
        }
    }
}

impl std::error::Error for SentinelConfigError {}

// ---------------------------------------------------------------------
// Detectors, transitions, journal
// ---------------------------------------------------------------------

/// The fixed detector set, evaluated in this order on every window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Detector {
    /// A hot function's coverage-scaled net rate shifted vs baseline.
    RateShift,
    /// A window's covered fraction fell below the floor.
    CoverageDrop,
    /// Too much covered time ran below full mask visibility.
    MaskResidency,
    /// Anomalies exceeded their ppm budget of hardware events.
    AnomalyBudget,
    /// The recorder ring wrote off too much of the timeline.
    EvictionPressure,
}

impl Detector {
    /// Stable short label, used in every rendered surface.
    pub fn label(self) -> &'static str {
        match self {
            Detector::RateShift => "rate-shift",
            Detector::CoverageDrop => "coverage-drop",
            Detector::MaskResidency => "mask-residency",
            Detector::AnomalyBudget => "anomaly-budget",
            Detector::EvictionPressure => "eviction-pressure",
        }
    }

    /// Unit of this detector's evidence statistics.
    pub fn unit(self) -> &'static str {
        match self {
            Detector::RateShift => "us/ms",
            _ => "ppm",
        }
    }

    /// Stable numeric code, used by the SNMP trap rows.
    pub fn code(self) -> u64 {
        match self {
            Detector::RateShift => 1,
            Detector::CoverageDrop => 2,
            Detector::MaskResidency => 3,
            Detector::AnomalyBudget => 4,
            Detector::EvictionPressure => 5,
        }
    }
}

/// One hysteresis transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertTransition {
    /// First breach of a fresh streak; not yet an alert.
    Pending,
    /// The consecutive-breach threshold was reached.
    Firing,
    /// The consecutive-clear threshold was reached while firing.
    Resolved,
}

impl AlertTransition {
    /// Stable upper-case label, used in every rendered surface.
    pub fn label(self) -> &'static str {
        match self {
            AlertTransition::Pending => "PENDING",
            AlertTransition::Firing => "FIRING",
            AlertTransition::Resolved => "RESOLVED",
        }
    }

    /// Stable numeric code, used by the SNMP trap rows.
    pub fn code(self) -> u64 {
        match self {
            AlertTransition::Pending => 1,
            AlertTransition::Firing => 2,
            AlertTransition::Resolved => 3,
        }
    }
}

/// One journaled transition, with the exact evidence that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEntry {
    /// 1-based position in the journal.
    pub seq: u64,
    /// Absolute index of the window that drove the transition.
    pub window: u64,
    /// Clipped end of that window, absolute µs.
    pub at_us: u64,
    /// The detector.
    pub detector: Detector,
    /// The subject: a function name for [`Detector::RateShift`], a
    /// fixed label (`coverage`, `mask`, `anomalies`, `recorder`) for
    /// the whole-window detectors.
    pub subject: String,
    /// The transition.
    pub transition: AlertTransition,
    /// Baseline statistic, in [`Detector::unit`] fixed point.
    pub baseline: u64,
    /// Observed statistic for this window, same unit.
    pub observed: u64,
    /// `observed - baseline`, exact.
    pub delta: i64,
}

impl AlertEntry {
    /// One deterministic journal line.
    pub fn describe_line(&self) -> String {
        format!(
            "#{} window {} @ {} us {}({}) {}: baseline {} {u}, observed {} {u}, delta {:+} {u}",
            self.seq,
            self.window,
            self.at_us,
            self.detector.label(),
            self.subject,
            self.transition.label(),
            self.baseline,
            self.observed,
            self.delta,
            u = self.detector.unit(),
        )
    }
}

/// The append-only transition journal.  Entries are in evaluation
/// order (windows oldest to newest; detectors in their fixed order
/// within a window), so two identical window streams produce two
/// byte-identical journals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlertJournal {
    entries: Vec<AlertEntry>,
}

impl AlertJournal {
    /// All transitions, in append order.
    pub fn entries(&self) -> &[AlertEntry] {
        &self.entries
    }

    /// Number of journaled transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing ever breached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn push(&mut self, mut entry: AlertEntry) {
        entry.seq = self.entries.len() as u64 + 1;
        self.entries.push(entry);
    }

    /// The (detector, subject) pairs still firing after the last
    /// entry — Firing transitions not yet matched by a Resolved —
    /// sorted by (detector, subject).
    pub fn firing_at_end(&self) -> Vec<(Detector, String)> {
        let mut firing: BTreeMap<(Detector, &str), bool> = BTreeMap::new();
        for e in &self.entries {
            match e.transition {
                AlertTransition::Firing => {
                    firing.insert((e.detector, &e.subject), true);
                }
                AlertTransition::Resolved => {
                    firing.insert((e.detector, &e.subject), false);
                }
                AlertTransition::Pending => {}
            }
        }
        firing
            .into_iter()
            .filter(|&(_, on)| on)
            .map(|((d, s), _)| (d, s.to_string()))
            .collect()
    }

    /// A deterministic text rendering of the whole journal.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        if self.entries.is_empty() {
            return "alert journal: empty\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "alert journal: {} transitions, {} firing at end",
            self.entries.len(),
            self.firing_at_end().len(),
        );
        for e in &self.entries {
            let _ = writeln!(out, "  {}", e.describe_line());
        }
        out
    }
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

/// Per-function rate statistics accumulated over the warm-up span.
///
/// Everything is an exact integer sum: per-function net µs and calls,
/// visible µs per [`MaskVisibility`] class, anomalies and hardware
/// events.  Rates are only ever formed as fixed-point quotients of
/// these sums, so the baseline — and every comparison against it — is
/// byte-reproducible.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    windows: u64,
    vis_us: [u64; 3],
    net: Vec<u64>,
    calls: Vec<u64>,
    anomalies: u64,
    tags: u64,
    frozen: bool,
}

fn vis_idx(vis: MaskVisibility) -> usize {
    match vis {
        MaskVisibility::AllLevels => 0,
        MaskVisibility::UnlessSwitchOnly => 1,
        MaskVisibility::AllOnly => 2,
    }
}

impl Baseline {
    /// Windows accumulated so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// True once the warm-up span is complete.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Summed visible µs for `vis`-class functions.
    pub fn visible_us(&self, vis: MaskVisibility) -> u64 {
        self.vis_us[vis_idx(vis)]
    }

    /// Summed net µs of symbol `s`.
    pub fn net_us(&self, s: usize) -> u64 {
        self.net.get(s).copied().unwrap_or(0)
    }

    /// Summed calls of symbol `s`.
    pub fn calls(&self, s: usize) -> u64 {
        self.calls.get(s).copied().unwrap_or(0)
    }

    /// Baseline net rate of symbol `s` in µs per visible ms (fixed
    /// point, truncating); `None` while no visible time accumulated.
    pub fn net_rate_milli(&self, s: usize, vis: MaskVisibility) -> Option<u64> {
        let v = self.visible_us(vis);
        if v == 0 {
            return None;
        }
        Some(((self.net_us(s) as u128 * 1_000) / v as u128) as u64)
    }

    /// Baseline call rate of symbol `s` in calls per visible ms
    /// (fixed point, truncating); `None` while no visible time
    /// accumulated.
    pub fn call_rate_milli(&self, s: usize, vis: MaskVisibility) -> Option<u64> {
        let v = self.visible_us(vis);
        if v == 0 {
            return None;
        }
        Some(((self.calls(s) as u128 * 1_000) / v as u128) as u64)
    }

    /// Baseline anomaly rate in ppm of hardware events.
    pub fn anomaly_ppm(&self) -> u64 {
        if self.tags == 0 {
            return 0;
        }
        ((self.anomalies as u128 * PPM) / self.tags as u128) as u64
    }

    fn absorb(&mut self, recon: &Reconstruction, warmup: u64) {
        let cov = &recon.coverage;
        for vis in [
            MaskVisibility::AllLevels,
            MaskVisibility::UnlessSwitchOnly,
            MaskVisibility::AllOnly,
        ] {
            self.vis_us[vis_idx(vis)] += visible_us(cov, vis);
        }
        if self.net.len() < recon.stats.len() {
            self.net.resize(recon.stats.len(), 0);
            self.calls.resize(recon.stats.len(), 0);
        }
        for (s, agg) in recon.stats.iter().enumerate() {
            self.net[s] += agg.net;
            self.calls[s] += agg.calls;
        }
        self.anomalies += recon.anomalies.total();
        self.tags += recon.tags as u64;
        self.windows += 1;
        if self.windows >= warmup {
            self.frozen = true;
        }
    }
}

// ---------------------------------------------------------------------
// Sentinel
// ---------------------------------------------------------------------

/// Per-(detector, subject) hysteresis state.
#[derive(Debug, Clone, Copy, Default)]
struct HState {
    breaches: u32,
    clears: u32,
    firing: bool,
}

/// `sent.*` self-metrics.
struct SentMetrics {
    windows: Counter,
    breaches: Counter,
    pending: Counter,
    fired: Counter,
    resolved: Counter,
    firing: Gauge,
}

impl SentMetrics {
    fn new(reg: &Registry) -> SentMetrics {
        SentMetrics {
            windows: reg.counter("sent.windows"),
            breaches: reg.counter("sent.breaches"),
            pending: reg.counter("sent.pending"),
            fired: reg.counter("sent.fired"),
            resolved: reg.counter("sent.resolved"),
            firing: reg.gauge("sent.firing"),
        }
    }
}

/// The regression sentinel: one [`Baseline`], the fixed [`Detector`]
/// set, per-subject hysteresis, and the [`AlertJournal`] everything
/// lands in.
///
/// Feed it windows oldest to newest, either straight from a recorder
/// with [`Sentinel::scan`] or window by window with
/// [`Sentinel::observe`].  Symbol ids must stay stable across the
/// stream (they do for any one recorder).  Windows with no visible
/// time for a function are treated as clear for that function's
/// rate-shift state: an unknowable rate never extends a breach streak.
pub struct Sentinel {
    cfg: SentinelConfig,
    baseline: Baseline,
    states: BTreeMap<(Detector, u32), HState>,
    journal: AlertJournal,
    windows_evaluated: u64,
    firing_count: u64,
    next_window: u64,
    metrics: Option<SentMetrics>,
}

impl std::fmt::Debug for Sentinel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sentinel")
            .field("windows_evaluated", &self.windows_evaluated)
            .field("baseline_windows", &self.baseline.windows)
            .field("journal_len", &self.journal.len())
            .field("firing", &self.firing_count)
            .finish()
    }
}

impl Sentinel {
    /// A sentinel with an empty baseline and an empty journal.
    pub fn new(cfg: SentinelConfig) -> Sentinel {
        Sentinel {
            cfg,
            baseline: Baseline::default(),
            states: BTreeMap::new(),
            journal: AlertJournal::default(),
            windows_evaluated: 0,
            firing_count: 0,
            next_window: 0,
            metrics: None,
        }
    }

    /// Enables live self-metrics under `sent.` in `reg`.
    pub fn set_telemetry(&mut self, reg: &Registry) {
        self.metrics = Some(SentMetrics::new(reg));
    }

    /// The config this sentinel evaluates with.
    pub fn config(&self) -> SentinelConfig {
        self.cfg
    }

    /// The baseline (frozen once warm-up completes).
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// The transition journal.
    pub fn journal(&self) -> &AlertJournal {
        &self.journal
    }

    /// Windows evaluated so far (warm-up windows included).
    pub fn windows_evaluated(&self) -> u64 {
        self.windows_evaluated
    }

    /// The (detector, subject) pairs currently firing, sorted.
    pub fn firing(&self) -> Vec<(Detector, String)> {
        self.journal.firing_at_end()
    }

    /// Evaluates every retained recorder window not yet seen, oldest
    /// to newest.  Windows evicted between scans are skipped — their
    /// span is already charged to the eviction ledger, which the
    /// eviction-pressure detector watches.
    pub fn scan(&mut self, rec: &FlightRecorder) {
        let retained = rec.retained();
        if retained.is_empty() {
            return;
        }
        let vis = rec.visibilities();
        let ledger = rec.ledger();
        let start = self.next_window.max(retained.start);
        for w in start..retained.end {
            if let Some(roll) = rec.window(w) {
                self.observe(roll.index, roll.end_us, &roll.recon, &vis, Some(&ledger));
            }
            self.next_window = w + 1;
        }
    }

    /// Evaluates one window given its reconstruction, the per-symbol
    /// mask visibilities (see [`FlightRecorder::visibilities`]) and,
    /// when available, the recorder ledger for eviction pressure.
    ///
    /// During warm-up the window is absorbed into the [`Baseline`] and
    /// no detector runs.  After warm-up, detectors evaluate in their
    /// fixed order; per-function subjects in symbol-id order.
    pub fn observe(
        &mut self,
        window: u64,
        end_us: u64,
        recon: &Reconstruction,
        vis: &[MaskVisibility],
        ledger: Option<&RecorderLedger>,
    ) {
        self.windows_evaluated += 1;
        if let Some(m) = &self.metrics {
            m.windows.inc();
        }
        if !self.baseline.is_frozen() {
            self.baseline.absorb(recon, self.cfg.warmup_windows);
            return;
        }

        let cov = &recon.coverage;

        // 1. Rate shift, per function, in symbol-id order.
        for s in 0..recon.stats.len() {
            let v = vis
                .get(s)
                .copied()
                .unwrap_or(MaskVisibility::UnlessSwitchOnly);
            let b_net = self.baseline.net_us(s);
            let b_vis = self.baseline.visible_us(v);
            let o_net = recon.stats[s].net;
            let o_vis = visible_us(cov, v);
            // Noise floor: neither side shows min_net_us of activity.
            let b_avg = b_net / self.baseline.windows.max(1);
            if o_net.max(b_avg) < self.cfg.min_net_us {
                continue;
            }
            // An unknowable rate (no visible time on either side) is a
            // clear, never a breach.
            let breach = if b_vis == 0 || o_vis == 0 {
                false
            } else {
                let up = (o_net as u128) * (b_vis as u128) * PPM
                    > (b_net as u128) * (o_vis as u128) * (PPM + self.cfg.rate_shift_ppm as u128);
                let down = (o_net as u128) * (b_vis as u128) * PPM
                    < (b_net as u128)
                        * (o_vis as u128)
                        * PPM.saturating_sub(self.cfg.rate_shift_ppm as u128);
                up || down
            };
            let baseline_stat = self.baseline.net_rate_milli(s, v).unwrap_or(0);
            let observed_stat = if o_vis == 0 {
                0
            } else {
                ((o_net as u128 * 1_000) / o_vis as u128) as u64
            };
            self.step(
                Detector::RateShift,
                s as u32,
                recon.syms.name(s as crate::events::SymId),
                breach,
                baseline_stat,
                observed_stat,
                window,
                end_us,
            );
        }

        // 2. Coverage drop: covered ppm of the window timeline.
        if cov.timeline_us > 0 {
            let observed = ((cov.covered_us as u128 * PPM) / cov.timeline_us as u128) as u64;
            self.step(
                Detector::CoverageDrop,
                GLOBAL,
                "coverage",
                observed < self.cfg.coverage_floor_ppm as u64,
                self.cfg.coverage_floor_ppm as u64,
                observed,
                window,
                end_us,
            );
        }

        // 3. Mask-ladder residency: covered time below full visibility.
        if cov.covered_us > 0 {
            let below = cov.covered_us.saturating_sub(cov.level_us[0]);
            let observed = ((below as u128 * PPM) / cov.covered_us as u128) as u64;
            self.step(
                Detector::MaskResidency,
                GLOBAL,
                "mask",
                observed > self.cfg.ladder_residency_ppm as u64,
                self.cfg.ladder_residency_ppm as u64,
                observed,
                window,
                end_us,
            );
        }

        // 4. Anomaly budget: anomalies ppm of hardware events.
        if recon.tags > 0 {
            let observed = ((recon.anomalies.total() as u128 * PPM) / recon.tags as u128) as u64;
            self.step(
                Detector::AnomalyBudget,
                GLOBAL,
                "anomalies",
                observed > self.cfg.anomaly_budget_ppm as u64,
                self.cfg.anomaly_budget_ppm as u64,
                observed,
                window,
                end_us,
            );
        }

        // 5. Eviction pressure: written-off ppm of the elapsed span.
        if let Some(l) = ledger {
            if l.elapsed_us > 0 {
                let observed = ((l.evicted_us as u128 * PPM) / l.elapsed_us as u128) as u64;
                self.step(
                    Detector::EvictionPressure,
                    GLOBAL,
                    "recorder",
                    observed > self.cfg.eviction_ppm as u64,
                    self.cfg.eviction_ppm as u64,
                    observed,
                    window,
                    end_us,
                );
            }
        }
    }

    /// One hysteresis step for (detector, subject).
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        detector: Detector,
        key: u32,
        subject: &str,
        breach: bool,
        baseline: u64,
        observed: u64,
        window: u64,
        at_us: u64,
    ) {
        let entry = |transition| AlertEntry {
            seq: 0,
            window,
            at_us,
            detector,
            subject: subject.to_string(),
            transition,
            baseline,
            observed,
            delta: observed as i64 - baseline as i64,
        };
        if breach {
            if let Some(m) = &self.metrics {
                m.breaches.inc();
            }
            let state = self.states.entry((detector, key)).or_default();
            if state.firing {
                // Already alerting; a further breach just holds it.
                state.clears = 0;
                return;
            }
            state.breaches += 1;
            state.clears = 0;
            if state.breaches == 1 {
                self.journal.push(entry(AlertTransition::Pending));
                if let Some(m) = &self.metrics {
                    m.pending.inc();
                }
            }
            if state.breaches >= self.cfg.fire_after {
                state.firing = true;
                state.breaches = 0;
                self.journal.push(entry(AlertTransition::Firing));
                self.firing_count += 1;
                if let Some(m) = &self.metrics {
                    m.fired.inc();
                    m.firing.set(self.firing_count);
                }
            }
        } else {
            let Some(state) = self.states.get_mut(&(detector, key)) else {
                return;
            };
            if state.firing {
                state.clears += 1;
                if state.clears >= self.cfg.resolve_after {
                    state.firing = false;
                    state.clears = 0;
                    state.breaches = 0;
                    self.journal.push(entry(AlertTransition::Resolved));
                    self.firing_count -= 1;
                    if let Some(m) = &self.metrics {
                        m.resolved.inc();
                        m.firing.set(self.firing_count);
                    }
                }
            } else {
                // A broken pre-Firing streak resets silently.
                state.breaches = 0;
            }
        }
    }

    /// A deterministic text digest: headline counts plus the journal.
    pub fn describe(&self) -> String {
        format!(
            "sentinel: {} windows evaluated, baseline over {} windows ({}), {} transitions, {} firing\n{}",
            self.windows_evaluated,
            self.baseline.windows,
            if self.baseline.is_frozen() {
                "frozen"
            } else {
                "warming up"
            },
            self.journal.len(),
            self.firing_count,
            self.journal.describe(),
        )
    }
}

// ---------------------------------------------------------------------
// Fleet roll-up
// ---------------------------------------------------------------------

/// A (detector, subject) pair rolled up across fleet members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAlert {
    /// The detector.
    pub detector: Detector,
    /// The subject (see [`AlertEntry::subject`]).
    pub subject: String,
    /// Machines whose journal fired this pair, ascending.
    pub machines: Vec<u32>,
    /// True when the pair fired on at least the quorum of machines.
    pub fleet_level: bool,
}

impl FleetAlert {
    /// One deterministic roll-up line.
    pub fn describe_line(&self) -> String {
        let ids: Vec<String> = self.machines.iter().map(|m| format!("m{m}")).collect();
        format!(
            "{}({}) on {} machine{} [{}] — {}",
            self.detector.label(),
            self.subject,
            self.machines.len(),
            if self.machines.len() == 1 { "" } else { "s" },
            ids.join(" "),
            if self.fleet_level {
                "FLEET-LEVEL"
            } else {
                "member-level"
            },
        )
    }
}

/// The fleet-side roll-up: a pure fold of member journals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSentinel {
    quorum: u32,
}

impl FleetSentinel {
    /// A roll-up promoting pairs seen on at least `quorum` machines
    /// (clamped to 1).
    pub fn new(quorum: u32) -> FleetSentinel {
        FleetSentinel {
            quorum: quorum.max(1),
        }
    }

    /// The promotion quorum.
    pub fn quorum(&self) -> u32 {
        self.quorum
    }

    /// Folds member journals: every (detector, subject) with a Firing
    /// transition anywhere is one [`FleetAlert`] listing the machines
    /// it fired on; pairs reaching the quorum are fleet-level.
    /// Deterministic: alerts sorted by (detector, subject), machines
    /// ascending.
    pub fn roll_up(&self, members: &[(u32, &AlertJournal)]) -> Vec<FleetAlert> {
        let mut by_pair: BTreeMap<(Detector, &str), Vec<u32>> = BTreeMap::new();
        for (id, journal) in members {
            for e in journal.entries() {
                if e.transition == AlertTransition::Firing {
                    let ms = by_pair.entry((e.detector, &e.subject)).or_default();
                    if !ms.contains(id) {
                        ms.push(*id);
                    }
                }
            }
        }
        by_pair
            .into_iter()
            .map(|((detector, subject), mut machines)| {
                machines.sort_unstable();
                FleetAlert {
                    detector,
                    subject: subject.to_string(),
                    fleet_level: machines.len() as u32 >= self.quorum,
                    machines,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Symbols;
    use crate::recon::Reconstruction;
    use hwprof_profiler::Coverage;

    fn syms(names: &[&str]) -> Symbols {
        let mut tf = hwprof_tagfile::TagFile::new(500);
        for n in names {
            tf.assign(n, hwprof_tagfile::TagKind::Function)
                .expect("fresh");
        }
        Symbols::from_tagfile(&tf)
    }

    fn sym_of(sy: &Symbols, name: &str) -> usize {
        (0..sy.len())
            .find(|&s| sy.name(s as crate::events::SymId) == name)
            .expect("known symbol")
    }

    /// One fully-covered 1 ms window where `bcopy` runs `net` µs.
    fn window(sy: &Symbols, net: u64) -> Reconstruction {
        let mut r = Reconstruction::empty(sy.clone());
        let s = sym_of(sy, "bcopy");
        r.stats[s].calls = net / 10;
        r.stats[s].net = net;
        r.stats[s].elapsed = net;
        r.total_elapsed = 1_000;
        r.tags = 100;
        r.note_coverage(&Coverage {
            timeline_us: 1_000,
            covered_us: 1_000,
            level_us: [1_000, 0, 0],
            ..Coverage::default()
        });
        r
    }

    fn drive(cfg: SentinelConfig, nets: &[u64]) -> Sentinel {
        let sy = syms(&["bcopy"]);
        let vis = vec![MaskVisibility::UnlessSwitchOnly; sy.len()];
        let mut s = Sentinel::new(cfg);
        for (w, &net) in nets.iter().enumerate() {
            let r = window(&sy, net);
            s.observe(w as u64, (w as u64 + 1) * 1_000, &r, &vis, None);
        }
        s
    }

    #[test]
    fn steady_stream_is_silent() {
        let s = drive(SentinelConfig::default(), &[50; 10]);
        assert!(s.journal().is_empty());
        assert!(s.firing().is_empty());
    }

    #[test]
    fn shift_fires_and_resolves_with_hysteresis() {
        // warmup 3, fire after 2, resolve after 2.
        let s = drive(
            SentinelConfig::default(),
            &[50, 50, 50, 50, 300, 300, 300, 50, 50, 50],
        );
        let j = s.journal();
        let kinds: Vec<AlertTransition> = j.entries().iter().map(|e| e.transition).collect();
        assert_eq!(
            kinds,
            vec![
                AlertTransition::Pending,
                AlertTransition::Firing,
                AlertTransition::Resolved
            ]
        );
        assert_eq!(j.entries()[0].window, 4);
        assert_eq!(j.entries()[1].window, 5);
        assert_eq!(j.entries()[2].window, 8);
        assert_eq!(j.entries()[1].baseline, 50);
        assert_eq!(j.entries()[1].observed, 300);
        assert_eq!(j.entries()[1].delta, 250);
        assert!(j.firing_at_end().is_empty());
    }

    #[test]
    fn single_noisy_window_stays_pending() {
        let s = drive(
            SentinelConfig::default(),
            &[50, 50, 50, 300, 50, 50, 50, 50],
        );
        let j = s.journal();
        assert_eq!(j.len(), 1);
        assert_eq!(j.entries()[0].transition, AlertTransition::Pending);
        assert!(j.firing_at_end().is_empty());
    }

    #[test]
    fn config_builder_rejects_degenerate() {
        assert_eq!(
            SentinelConfig::builder().warmup_windows(0).build(),
            Err(SentinelConfigError::NoWarmup)
        );
        assert_eq!(
            SentinelConfig::builder().fire_after(0).build(),
            Err(SentinelConfigError::NoFireThreshold)
        );
        assert_eq!(
            SentinelConfig::builder().resolve_after(0).build(),
            Err(SentinelConfigError::NoResolveThreshold)
        );
    }

    #[test]
    fn roll_up_promotes_at_quorum() {
        let shifted = drive(
            SentinelConfig::default(),
            &[50, 50, 50, 300, 300, 300, 300, 300],
        );
        let steady = drive(SentinelConfig::default(), &[50; 8]);
        let js = shifted.journal().clone();
        let jq = steady.journal().clone();
        let fleet = FleetSentinel::new(2);
        let alerts = fleet.roll_up(&[(0, &js), (1, &jq), (2, &js)]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].detector, Detector::RateShift);
        assert_eq!(alerts[0].subject, "bcopy");
        assert_eq!(alerts[0].machines, vec![0, 2]);
        assert!(alerts[0].fleet_level);
        let solo = FleetSentinel::new(3).roll_up(&[(0, &js), (1, &jq), (2, &jq)]);
        assert_eq!(solo.len(), 1);
        assert!(!solo[0].fleet_level);
        assert_eq!(solo[0].machines, vec![0]);
    }
}
