//! Per-call time histograms (the paper's future-work item: "building
//! histograms of the function time and usage for easy detection of
//! bottlenecks").

use crate::recon::{ItemKind, Reconstruction};

/// A per-call net-time histogram for one function.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Function name.
    pub name: String,
    /// Bucket upper bounds (µs).
    pub bounds: Vec<u64>,
    /// Counts per bucket (last bucket is overflow).
    pub counts: Vec<u64>,
    /// Samples observed.
    pub n: u64,
}

/// Builds a histogram of `name`'s per-call net times from the trace.
///
/// Buckets are power-of-two µs bounds from 1 µs up to `max_bound`.
pub fn histogram(r: &Reconstruction, name: &str, max_bound: u64) -> Option<Histogram> {
    let sym = r.syms.lookup(name)?;
    let mut bounds = Vec::new();
    let mut b = 1u64;
    while b <= max_bound {
        bounds.push(b);
        b *= 2;
    }
    let mut counts = vec![0u64; bounds.len() + 1];
    let mut n = 0u64;
    for item in &r.trace {
        if let ItemKind::Call {
            sym: s,
            net,
            closed: true,
            ..
        } = item.kind
        {
            if s == sym {
                let idx = bounds
                    .iter()
                    .position(|&ub| net <= ub)
                    .unwrap_or(bounds.len());
                counts[idx] += 1;
                n += 1;
            }
        }
    }
    Some(Histogram {
        name: name.to_string(),
        bounds,
        counts,
        n,
    })
}

/// Renders a text histogram with proportional bars.
pub fn render(h: &Histogram, width: usize) -> String {
    let mut out = format!("{} — {} calls\n", h.name, h.n);
    let max = h.counts.iter().copied().max().unwrap_or(0).max(1);
    for (i, &c) in h.counts.iter().enumerate() {
        let label = if i < h.bounds.len() {
            format!("<= {:>6} us", h.bounds[i])
        } else {
            format!(">  {:>6} us", h.bounds.last().copied().unwrap_or(0))
        };
        let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
        out.push_str(&format!("{label} {c:>7} {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::events::decode;
    fn analyze(syms: &crate::Symbols, events: &[crate::Event]) -> crate::Reconstruction {
        crate::Analyzer::new(syms).session(events).expect("ungated")
    }
    use hwprof_profiler::RawRecord;

    #[test]
    fn histogram_buckets_per_call_times() {
        let tf = hwprof_tagfile::parse("f/100\n").unwrap();
        // Three calls: 3 us, 6 us, 100 us.
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 101, time: 3 },
            RawRecord { tag: 100, time: 10 },
            RawRecord { tag: 101, time: 16 },
            RawRecord { tag: 100, time: 20 },
            RawRecord {
                tag: 101,
                time: 120,
            },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let h = super::histogram(&r, "f", 64).unwrap();
        assert_eq!(h.n, 3);
        // 3 -> bucket <=4; 6 -> <=8; 100 -> overflow.
        assert_eq!(h.counts[h.bounds.iter().position(|&b| b == 4).unwrap()], 1);
        assert_eq!(h.counts[h.bounds.iter().position(|&b| b == 8).unwrap()], 1);
        assert_eq!(*h.counts.last().unwrap(), 1);
        let text = super::render(&h, 40);
        assert!(text.contains("f — 3 calls"));
        assert!(super::histogram(&r, "missing", 64).is_none());
    }
}
