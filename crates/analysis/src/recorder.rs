//! The always-on flight recorder: continuous supervised capture folded
//! into fixed-width time-window rollups, with differential reports.
//!
//! A [`FlightRecorder`] subscribes to a `CaptureSupervisor` as its
//! [`SessionSink`]: every delivered bank session is decoded through the
//! columnar decoder and split across the fixed windows its events fall
//! in, every gap is charged to the windows it darkens.  Each window's
//! rollup is a full [`Reconstruction`] — the monoid again — folded in
//! session-index order, so a window is bit-identical to a one-shot
//! analysis of the same span no matter how the spill shelf permuted
//! delivery (`recorder_props` pins this at 256 cases).
//!
//! Windows tile absolute machine time from 0: window `w` covers
//! `[w·W, (w+1)·W)` for width `W = RecorderConfig::window_us`, clipped
//! to the recorder's observed timeline.  The ring retains at most
//! `RecorderConfig::retain` windows; when a new window would exceed the
//! budget the oldest is evicted and its clipped span charged to the
//! [`RecorderLedger`], which stays exact at every instant:
//! `covered + dark + evicted == elapsed`.
//!
//! On top of the ring sits the query surface — [`FlightRecorder::window`],
//! [`FlightRecorder::range`] (merged through the monoid),
//! [`FlightRecorder::diff`] and [`WindowDiff::movers`] — and the same
//! [`Profile`](crate::Profile) render surface every other capture path
//! uses, plus a self-contained byte-deterministic HTML report per
//! window ([`WindowRollup::html`]) and per diff ([`WindowDiff::html`]).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use hwprof_profiler::{
    Coverage, Gap, GapCause, RecorderConfig, SessionSink, SupervisedRun, SupervisedSession,
};
use hwprof_tagfile::{TagFile, TagKind};
use hwprof_telemetry::{Counter, Gauge, Registry, SpanLog, SpanName, SpanTrack};

use crate::anomaly::Anomalies;
use crate::columnar::{ColumnarDecoder, DenseTagTable};
use crate::events::{Event, SymId, Symbols};
use crate::profile::{html_esc, Profile, HTML_STYLE};
use crate::recon::{FnAgg, Reconstruction, SessionRecon};
use crate::report::fmt_us;
use crate::stitch::{visible_us, MaskVisibility};

/// One session's events landing in one window, rebased to the window.
struct Frag {
    session: u64,
    events: Vec<Event>,
}

/// One session's covered overlap with one window.
struct CovSpan {
    start_us: u64,
    end_us: u64,
    level: usize,
}

/// One gap's overlap with one window.
struct GapSpan {
    overflow: bool,
}

/// One retained window's raw material plus its cached fold.
#[derive(Default)]
struct WindowSlot {
    frags: Vec<Frag>,
    /// Decode anomalies charged to this window (the window containing
    /// the session's start), keyed by session index for determinism.
    anoms: Vec<(u64, Anomalies)>,
    spans: Vec<CovSpan>,
    gaps: Vec<GapSpan>,
    /// Cached fold, tagged with the recorder bounds it was clipped to.
    cache: Option<(u64, u64, Reconstruction)>,
}

impl WindowSlot {
    fn default_slot() -> WindowSlot {
        WindowSlot {
            frags: Vec::new(),
            anoms: Vec::new(),
            spans: Vec::new(),
            gaps: Vec::new(),
            cache: None,
        }
    }
}

struct RecMetrics {
    sessions: Counter,
    fragments: Counter,
    gaps: Counter,
    windows: Counter,
    evicted: Counter,
    evicted_us: Counter,
    late_sessions: Counter,
    retained: Gauge,
}

impl RecMetrics {
    fn new(reg: &Registry) -> Self {
        RecMetrics {
            sessions: reg.counter("rec.sessions"),
            fragments: reg.counter("rec.fragments"),
            gaps: reg.counter("rec.gaps"),
            windows: reg.counter("rec.windows"),
            evicted: reg.counter("rec.evicted"),
            evicted_us: reg.counter("rec.evicted_us"),
            late_sessions: reg.counter("rec.late_sessions"),
            retained: reg.gauge("rec.retained"),
        }
    }
}

struct RecorderInner {
    cfg: RecorderConfig,
    tf: TagFile,
    syms: Symbols,
    table: DenseTagTable,
    /// Absolute index of `windows[0]`; meaningless until `seen`.
    base_w: u64,
    windows: VecDeque<WindowSlot>,
    seen: bool,
    evicted_windows: u64,
    late_sessions: u64,
    sessions: u64,
    fragments: u64,
    first_seen: Option<u64>,
    last_seen: u64,
    /// Hot tags of the sealed run, for coverage-scaled diffs.
    hot_tags: Vec<u16>,
    sealed: bool,
    metrics: Option<RecMetrics>,
    journal: Option<SpanLog>,
}

impl RecorderInner {
    /// Current clip bounds of the observed timeline.
    fn bounds(&self) -> Option<(u64, u64)> {
        self.first_seen.map(|s| (s, self.last_seen.max(s)))
    }

    /// Absolute boundary below which everything is evicted territory.
    fn evicted_boundary(&self) -> u64 {
        self.base_w * self.cfg.window_us
    }

    /// Materializes window `w` (and any intermediate windows needed to
    /// keep the ring contiguous), enforcing the retention budget.
    /// Returns false when `w` is already evicted — a late arrival.
    fn ensure_window(&mut self, w: u64) -> bool {
        if !self.seen {
            self.seen = true;
            self.base_w = w;
            self.windows.push_back(WindowSlot::default_slot());
            if let Some(m) = &self.metrics {
                m.windows.inc();
            }
        } else if w < self.base_w {
            if self.evicted_windows > 0 {
                return false;
            }
            // Extend the front — only legal while nothing was evicted,
            // so the evicted region stays one contiguous prefix.
            while w < self.base_w {
                self.windows.push_front(WindowSlot::default_slot());
                self.base_w -= 1;
                if let Some(m) = &self.metrics {
                    m.windows.inc();
                }
            }
        } else {
            while w >= self.base_w + self.windows.len() as u64 {
                self.windows.push_back(WindowSlot::default_slot());
                if let Some(m) = &self.metrics {
                    m.windows.inc();
                }
            }
        }
        self.trim();
        if let Some(m) = &self.metrics {
            m.retained.set(self.windows.len() as u64);
        }
        w >= self.base_w
    }

    /// Evicts oldest-first down to the retention budget, charging each
    /// evicted window's clipped span to the ledger.
    fn trim(&mut self) {
        while self.windows.len() > self.cfg.retain {
            self.windows.pop_front();
            let w = self.base_w;
            self.base_w += 1;
            self.evicted_windows += 1;
            let (ws, we) = self.window_span(w);
            if let Some(m) = &self.metrics {
                m.evicted.inc();
                m.evicted_us.add(we - ws);
            }
            if let Some(j) = &self.journal {
                j.instant(SpanTrack::Recorder, SpanName::Evict, we, w, we - ws);
            }
        }
    }

    /// Window `w`'s span clipped to the observed timeline.
    fn window_span(&self, w: u64) -> (u64, u64) {
        let wd = self.cfg.window_us;
        let (start, end) = self.bounds().unwrap_or((0, 0));
        let ws = (w * wd).max(start).min(end);
        let we = ((w + 1) * wd).min(end).max(ws);
        (ws, we)
    }

    /// Ingests one delivered session: decode, split events and covered
    /// span across the windows they fall in.
    fn ingest_session(&mut self, s: &SupervisedSession) {
        if self.sealed {
            return;
        }
        self.sessions += 1;
        if let Some(m) = &self.metrics {
            m.sessions.inc();
        }
        let wd = self.cfg.window_us;
        let mut decoder = ColumnarDecoder::new(&self.table);
        let mut events = Vec::new();
        decoder.extend(&s.records, &mut events);
        let anoms = decoder.anomalies();

        self.note_seen(s.start_us, s.end_us);
        let last_event_end = events
            .iter()
            .map(|e| s.start_us + e.t)
            .max()
            .map(|t| t + 1)
            .unwrap_or(s.end_us);
        self.note_seen(s.start_us, last_event_end.max(s.end_us));

        // Materialize every window the span or an event touches.
        let w_lo = s.start_us / wd;
        let w_hi = (s.end_us.max(last_event_end).max(s.start_us + 1) - 1) / wd;
        let mut any_retained = false;
        for w in w_lo..=w_hi {
            any_retained |= self.ensure_window(w);
        }

        // Covered span per window.
        let level = s.level.idx();
        if s.end_us > s.start_us {
            for w in (s.start_us / wd)..=((s.end_us - 1) / wd) {
                if w < self.base_w {
                    continue;
                }
                let ws = (w * wd).max(s.start_us);
                let we = ((w + 1) * wd).min(s.end_us);
                let slot = self.slot_mut(w);
                slot.spans.push(CovSpan {
                    start_us: ws,
                    end_us: we,
                    level,
                });
                slot.cache = None;
            }
        }

        // Events per window, rebased to the window origin.
        let mut frags = 0u64;
        let mut i = 0usize;
        while i < events.len() {
            let w = (s.start_us + events[i].t) / wd;
            let mut j = i;
            while j < events.len() && (s.start_us + events[j].t) / wd == w {
                j += 1;
            }
            if w >= self.base_w {
                let rebased: Vec<Event> = events[i..j]
                    .iter()
                    .map(|e| Event {
                        t: s.start_us + e.t - w * wd,
                        kind: e.kind,
                    })
                    .collect();
                let slot = self.slot_mut(w);
                slot.frags.push(Frag {
                    session: s.index,
                    events: rebased,
                });
                slot.cache = None;
                frags += 1;
            }
            i = j;
        }
        self.fragments += frags;
        if let Some(m) = &self.metrics {
            m.fragments.add(frags);
        }

        // Decode anomalies are charged to the window holding the
        // session's start.
        if !anoms.is_clean() {
            let w = s.start_us / wd;
            if w >= self.base_w && self.seen {
                let slot = self.slot_mut(w);
                slot.anoms.push((s.index, anoms));
                slot.cache = None;
            }
        }

        if !any_retained {
            self.late_sessions += 1;
            if let Some(m) = &self.metrics {
                m.late_sessions.inc();
            }
        }
    }

    /// Ingests one dark-window gap.
    fn ingest_gap(&mut self, g: &Gap) {
        if self.sealed {
            return;
        }
        if let Some(m) = &self.metrics {
            m.gaps.inc();
        }
        self.note_seen(g.start_us, g.end_us);
        if g.end_us <= g.start_us {
            return;
        }
        let wd = self.cfg.window_us;
        for w in (g.start_us / wd)..=((g.end_us - 1) / wd) {
            if !self.ensure_window(w) {
                continue;
            }
            let slot = self.slot_mut(w);
            slot.gaps.push(GapSpan {
                overflow: g.cause == GapCause::Overflow,
            });
            slot.cache = None;
        }
    }

    fn note_seen(&mut self, start: u64, end: u64) {
        let first = self.first_seen.get_or_insert(start);
        if start < *first {
            *first = start;
        }
        self.last_seen = self.last_seen.max(end).max(start);
    }

    fn slot_mut(&mut self, w: u64) -> &mut WindowSlot {
        let i = (w - self.base_w) as usize;
        &mut self.windows[i]
    }

    /// Seals the finished run into the recorder: extends the timeline
    /// to the run's exact coverage bounds (the trailing idle/dark tail
    /// never reaches the sink as a session) and stores the hot-tag set
    /// for coverage-scaled diffs.
    fn seal(&mut self, run: &SupervisedRun) {
        if self.sealed {
            return;
        }
        let base = run
            .sessions
            .iter()
            .map(|s| s.start_us)
            .chain(run.gaps.iter().map(|g| g.start_us))
            .min();
        if let Some(base) = base {
            let end = base + run.coverage.timeline_us;
            self.note_seen(base, end);
            if end > 0 {
                // Materialize the full sealed timeline so the ring
                // tiles it exactly (the trailing idle/dark tail has no
                // delivered item of its own).
                self.ensure_window(base / self.cfg.window_us);
                let last_w = (end - 1) / self.cfg.window_us;
                if !self.seen || last_w >= self.base_w {
                    self.ensure_window(last_w);
                }
            }
        }
        self.hot_tags = run.hot_tags.clone();
        self.sealed = true;
        if let Some(j) = &self.journal {
            // Journal the retained ring once it is final: one window
            // span per retained window, at its clipped bounds.
            for off in 0..self.windows.len() {
                let w = self.base_w + off as u64;
                let (ws, we) = self.window_span(w);
                let frags = self.windows[off].frags.len() as u64;
                j.begin(SpanTrack::Recorder, SpanName::Window, ws, w, 0);
                j.end(SpanTrack::Recorder, SpanName::Window, we, w, frags);
            }
        }
    }

    /// Folds (or returns the cached fold of) window `w`.
    fn fold(&mut self, w: u64) -> Option<Reconstruction> {
        if !self.seen || w < self.base_w || w >= self.base_w + self.windows.len() as u64 {
            return None;
        }
        let bounds = self.bounds()?;
        let (ws, we) = self.window_span(w);
        let idx = (w - self.base_w) as usize;
        // Disjoint field borrows: the slot mutably, the symbols shared.
        let RecorderInner { windows, syms, .. } = self;
        let slot = &mut windows[idx];
        if let Some((cs, ce, r)) = &slot.cache {
            if (*cs, *ce) == bounds {
                return Some(r.clone());
            }
        }
        slot.frags.sort_by_key(|f| f.session);
        slot.anoms.sort_by_key(|&(s, _)| s);
        let mut out = Reconstruction::empty(syms.clone());
        let mut recon = SessionRecon::new(syms, false);
        for frag in &slot.frags {
            recon.session_into(&frag.events, &mut out);
        }
        for (_, a) in &slot.anoms {
            out.note(a);
        }
        let mut cov = Coverage::empty();
        cov.timeline_us = we - ws;
        for span in &slot.spans {
            let s = span.start_us.max(ws);
            let e = span.end_us.min(we);
            if e > s {
                cov.covered_us += e - s;
                cov.level_us[span.level] += e - s;
            }
        }
        cov.gap_us = cov.timeline_us - cov.covered_us;
        cov.gaps = slot.gaps.len() as u64;
        cov.overflow_gaps = slot.gaps.iter().filter(|g| g.overflow).count() as u64;
        out.note_coverage(&cov);
        slot.cache = Some((bounds.0, bounds.1, out.clone()));
        Some(out)
    }

    /// The exact eviction ledger at this instant.
    fn ledger(&mut self) -> RecorderLedger {
        let Some((start, end)) = self.bounds() else {
            return RecorderLedger::default();
        };
        let evicted_us = if self.evicted_windows > 0 {
            self.evicted_boundary().min(end) - start
        } else {
            0
        };
        let mut covered = 0u64;
        let mut dark = 0u64;
        for off in 0..self.windows.len() {
            let w = self.base_w + off as u64;
            let (ws, we) = self.window_span(w);
            let slot = &self.windows[off];
            let c: u64 = slot
                .spans
                .iter()
                .map(|s| s.end_us.min(we).saturating_sub(s.start_us.max(ws)))
                .sum();
            covered += c;
            dark += (we - ws) - c;
        }
        RecorderLedger {
            elapsed_us: end - start,
            covered_us: covered,
            dark_us: dark,
            evicted_us,
            windows: self.windows.len() as u64,
            evicted_windows: self.evicted_windows,
            late_sessions: self.late_sessions,
        }
    }
}

/// The exact time-accounting ledger of the recorder ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderLedger {
    /// Observed timeline span (first seen µs to last seen µs).
    pub elapsed_us: u64,
    /// Armed-and-storing µs still retained in the ring.
    pub covered_us: u64,
    /// Dark µs (gaps, idle tails) still retained in the ring.
    pub dark_us: u64,
    /// µs written off with evicted windows.
    pub evicted_us: u64,
    /// Windows currently retained.
    pub windows: u64,
    /// Windows evicted so far.
    pub evicted_windows: u64,
    /// Sessions that arrived entirely after their windows were evicted
    /// (their span is already charged to `evicted_us`).
    pub late_sessions: u64,
}

impl RecorderLedger {
    /// The recorder invariant, exact or not at all.
    pub fn is_exact(&self) -> bool {
        self.covered_us + self.dark_us + self.evicted_us == self.elapsed_us
    }

    /// One deterministic ledger line, in the shared report dialect.
    pub fn describe(&self) -> String {
        format!(
            "recorder ledger: covered {} + dark {} + evicted {} == elapsed {} ({}; {} windows retained, {} evicted)",
            fmt_us(self.covered_us),
            fmt_us(self.dark_us),
            fmt_us(self.evicted_us),
            fmt_us(self.elapsed_us),
            if self.is_exact() { "exact" } else { "BROKEN" },
            self.windows,
            self.evicted_windows,
        )
    }
}

/// One window's finished rollup: a full [`Reconstruction`] over the
/// window's clipped span, renderable through [`Profile`] like any
/// other capture.
#[derive(Debug, Clone)]
pub struct WindowRollup {
    /// Absolute window index (first window of the range, for ranges).
    pub index: u64,
    /// Clipped span start, absolute µs.
    pub start_us: u64,
    /// Clipped span end, absolute µs.
    pub end_us: u64,
    /// The rollup itself.
    pub recon: Reconstruction,
    name: String,
}

impl WindowRollup {
    /// The unified render surface over this window.
    pub fn as_profile(&self) -> Profile<'_> {
        Profile::new(&self.recon).name(&self.name)
    }

    /// Self-contained byte-deterministic HTML report for this window.
    pub fn html(&self) -> String {
        self.as_profile().html()
    }
}

/// An exact per-function delta between two windows.
#[derive(Debug, Clone)]
pub struct WindowDiff {
    /// Left window index.
    pub a: u64,
    /// Right window index.
    pub b: u64,
    /// Left window's clipped span.
    pub a_span: (u64, u64),
    /// Right window's clipped span.
    pub b_span: (u64, u64),
    /// Per-function rows, ranked by `|d_net|` descending (ties by
    /// name) — the same order in both diff directions.
    pub rows: Vec<DiffRow>,
    /// Total-anomaly delta (`b - a`).
    pub d_anomalies: i64,
    /// Movers threshold in ppm of relative rate growth.
    pub threshold_ppm: u32,
}

/// One function's exact delta between two windows.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Function name.
    pub name: String,
    /// Aggregate in the left window.
    pub a: FnAgg,
    /// Aggregate in the right window.
    pub b: FnAgg,
    /// Exact call-count delta (`b - a`).
    pub d_calls: i64,
    /// Exact net-time delta, µs.
    pub d_net: i64,
    /// Exact gross-time delta, µs.
    pub d_elapsed: i64,
    /// Exact inline-hit delta.
    pub d_inline: i64,
    /// Coverage-scaled net rate in the left window (net µs per visible
    /// µs under the function's [`MaskVisibility`] class); `None` when
    /// the class was never visible there.
    pub a_rate: Option<f64>,
    /// Same for the right window.
    pub b_rate: Option<f64>,
    /// Relative rate growth in percent (`(b_rate / a_rate - 1) · 100`);
    /// `None` when either side has no rate or the left rate is zero.
    pub growth_pct: Option<f64>,
}

impl DiffRow {
    /// Whether this row clears a movers threshold (ppm of relative
    /// rate growth).  A function appearing from a zero left rate is
    /// always a mover.
    pub fn exceeds(&self, threshold_ppm: u32) -> bool {
        match (self.a_rate, self.b_rate) {
            (Some(ra), Some(rb)) => {
                if ra == 0.0 {
                    rb > 0.0
                } else {
                    ((rb - ra).abs() / ra) * 1_000_000.0 >= f64::from(threshold_ppm)
                }
            }
            (None, Some(rb)) => rb > 0.0,
            (Some(ra), None) => ra > 0.0,
            (None, None) => false,
        }
    }
}

impl WindowDiff {
    /// The ranked movers: rows clearing the configured threshold, in
    /// rank order, at most `n`.
    pub fn movers(&self, n: usize) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.exceeds(self.threshold_ppm))
            .take(n)
            .collect()
    }

    /// Deterministic text report: headline, then one line per mover.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "window diff {} -> {}: {} functions changed, anomalies {:+}",
            self.a,
            self.b,
            self.rows
                .iter()
                .filter(|r| r.d_net != 0 || r.d_calls != 0)
                .count(),
            self.d_anomalies,
        );
        for row in self.movers(usize::MAX) {
            let growth = match row.growth_pct {
                Some(g) => format!("grew {g:.2}%"),
                None if row.a.net == 0 && row.b.net > 0 => "new".to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<14} net {:+8} us  calls {:+6}  {}",
                row.name, row.d_net, row.d_calls, growth
            );
        }
        out
    }

    /// Self-contained byte-deterministic HTML report for this diff.
    pub fn html(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n");
        let _ = writeln!(
            out,
            "<title>hwprof &mdash; window diff {} &rarr; {}</title>",
            self.a, self.b
        );
        out.push_str(HTML_STYLE);
        out.push_str("</head>\n<body>\n");
        let _ = writeln!(out, "<h1>window diff {} &rarr; {}</h1>", self.a, self.b);
        let _ = writeln!(
            out,
            "<p>window {}: [{}, {}) &middot; window {}: [{}, {}) &middot; \
             anomalies {:+} &middot; threshold {} ppm</p>",
            self.a,
            self.a_span.0,
            self.a_span.1,
            self.b,
            self.b_span.0,
            self.b_span.1,
            self.d_anomalies,
            self.threshold_ppm,
        );
        out.push_str("<table class=\"fns\">\n");
        out.push_str(
            "<tr><th>function</th><th>net a</th><th>net b</th><th>&Delta;net</th>\
             <th>calls a</th><th>calls b</th><th>&Delta;calls</th>\
             <th>&Delta;elapsed</th><th>growth</th><th>mover</th></tr>\n",
        );
        for row in &self.rows {
            let growth = match row.growth_pct {
                Some(g) => format!("{g:+.2}%"),
                None if row.a.net == 0 && row.b.net > 0 => "new".to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "<tr><td class=\"fn\">{}</td><td>{}</td><td>{}</td><td>{:+}</td>\
                 <td>{}</td><td>{}</td><td>{:+}</td><td>{:+}</td><td>{}</td><td>{}</td></tr>",
                html_esc(&row.name),
                row.a.net,
                row.b.net,
                row.d_net,
                row.a.calls,
                row.b.calls,
                row.d_calls,
                row.d_elapsed,
                growth,
                if row.exceeds(self.threshold_ppm) {
                    "yes"
                } else {
                    ""
                },
            );
        }
        out.push_str("</table>\n</body>\n</html>\n");
        out
    }
}

/// The always-on flight recorder.  Clones share state, like every
/// other handle in this workspace: the supervisor holds one clone as
/// its sink, the harness queries another live.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut inner = self.inner.lock().expect("recorder lock");
        let ledger = inner.ledger();
        f.debug_struct("FlightRecorder")
            .field("windows", &ledger.windows)
            .field("evicted", &ledger.evicted_windows)
            .field("elapsed_us", &ledger.elapsed_us)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder folding captures of `tf`'s tag namespace into
    /// `cfg`-shaped windows.
    pub fn new(tf: &TagFile, cfg: RecorderConfig) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                cfg,
                tf: tf.clone(),
                syms: Symbols::from_tagfile(tf),
                table: DenseTagTable::from_tagfile(tf),
                base_w: 0,
                windows: VecDeque::new(),
                seen: false,
                evicted_windows: 0,
                late_sessions: 0,
                sessions: 0,
                fragments: 0,
                first_seen: None,
                last_seen: 0,
                hot_tags: Vec::new(),
                sealed: false,
                metrics: None,
                journal: None,
            })),
        }
    }

    /// Enables live self-metrics under `rec.` in `reg`.
    pub fn set_telemetry(&self, reg: &Registry) {
        self.inner.lock().expect("recorder lock").metrics = Some(RecMetrics::new(reg));
    }

    /// Attaches a span journal: window spans land on the `recorder`
    /// lane at seal, evictions as instants when they happen.
    pub fn set_span_log(&self, log: &SpanLog) {
        self.inner.lock().expect("recorder lock").journal = Some(log.clone());
    }

    /// The recorder's config.
    pub fn config(&self) -> RecorderConfig {
        self.inner.lock().expect("recorder lock").cfg
    }

    /// Feeds one delivered session (the [`SessionSink`] path calls
    /// this; exposed for harnesses that drive the recorder directly).
    pub fn ingest_session(&self, s: &SupervisedSession) {
        self.inner.lock().expect("recorder lock").ingest_session(s);
    }

    /// Feeds one gap (see [`FlightRecorder::ingest_session`]).
    pub fn ingest_gap(&self, g: &Gap) {
        self.inner.lock().expect("recorder lock").ingest_gap(g);
    }

    /// Seals the finished run: reconciles the timeline with the run's
    /// exact coverage bounds and stores its hot tags for scaled diffs.
    /// Further ingest is ignored.
    pub fn seal(&self, run: &SupervisedRun) {
        self.inner.lock().expect("recorder lock").seal(run);
    }

    /// Absolute indices of the retained windows, oldest to newest.
    pub fn retained(&self) -> std::ops::Range<u64> {
        let inner = self.inner.lock().expect("recorder lock");
        if !inner.seen {
            return 0..0;
        }
        inner.base_w..inner.base_w + inner.windows.len() as u64
    }

    /// The exact eviction ledger at this instant.
    pub fn ledger(&self) -> RecorderLedger {
        self.inner.lock().expect("recorder lock").ledger()
    }

    /// Per-symbol [`MaskVisibility`], indexed by `SymId` — the same
    /// classification the scaled diff rates use (hot tags are known
    /// once the run is sealed; before that every function classifies
    /// as visible unless switch-only).
    pub fn visibilities(&self) -> Vec<MaskVisibility> {
        let inner = self.inner.lock().expect("recorder lock");
        (0..inner.syms.len() as SymId)
            .map(|s| mask_visibility(&inner.tf, &inner.hot_tags, inner.syms.name(s)))
            .collect()
    }

    /// Window `w`'s rollup; `None` when `w` was evicted or never
    /// materialized.
    pub fn window(&self, w: u64) -> Option<WindowRollup> {
        let mut inner = self.inner.lock().expect("recorder lock");
        let recon = inner.fold(w)?;
        let (start_us, end_us) = inner.window_span(w);
        Some(WindowRollup {
            index: w,
            start_us,
            end_us,
            recon,
            name: format!("window {w}"),
        })
    }

    /// The monoid merge of windows `range` (half-open, absolute
    /// indices); `None` when the range is empty or any window is
    /// outside the retained ring.
    pub fn range(&self, range: std::ops::Range<u64>) -> Option<WindowRollup> {
        if range.is_empty() {
            return None;
        }
        let mut inner = self.inner.lock().expect("recorder lock");
        let mut out = inner.fold(range.start)?;
        for w in range.start + 1..range.end {
            out.merge(inner.fold(w)?);
        }
        let (start_us, _) = inner.window_span(range.start);
        let (_, end_us) = inner.window_span(range.end - 1);
        Some(WindowRollup {
            index: range.start,
            start_us,
            end_us,
            recon: out,
            name: format!("windows {}..{}", range.start, range.end),
        })
    }

    /// The exact per-function delta between windows `a` and `b`,
    /// ranked by `|d_net|`; `None` when either window is unavailable.
    pub fn diff(&self, a: u64, b: u64) -> Option<WindowDiff> {
        let ra = self.window(a)?;
        let rb = self.window(b)?;
        let inner = self.inner.lock().expect("recorder lock");
        let threshold_ppm = inner.cfg.diff_threshold_ppm;
        let mut rows = Vec::new();
        let syms = &ra.recon.syms;
        for s in 0..ra.recon.stats.len() {
            let fa = ra.recon.stats[s];
            let fb = rb.recon.stats[s];
            let active = |f: &FnAgg| f.calls > 0 || f.net > 0 || f.inline_hits > 0;
            if !active(&fa) && !active(&fb) {
                continue;
            }
            let name = syms.name(s as u32).to_string();
            let vis = mask_visibility(&inner.tf, &inner.hot_tags, &name);
            let rate = |f: &FnAgg, r: &Reconstruction| -> Option<f64> {
                let vis_us = visible_us(&r.coverage, vis);
                if vis_us == 0 {
                    None
                } else {
                    Some(f.net as f64 / vis_us as f64)
                }
            };
            let a_rate = rate(&fa, &ra.recon);
            let b_rate = rate(&fb, &rb.recon);
            let growth_pct = match (a_rate, b_rate) {
                (Some(x), Some(y)) if x > 0.0 => Some((y / x - 1.0) * 100.0),
                _ => None,
            };
            rows.push(DiffRow {
                name,
                a: fa,
                b: fb,
                d_calls: fb.calls as i64 - fa.calls as i64,
                d_net: fb.net as i64 - fa.net as i64,
                d_elapsed: fb.elapsed as i64 - fa.elapsed as i64,
                d_inline: fb.inline_hits as i64 - fa.inline_hits as i64,
                a_rate,
                b_rate,
                growth_pct,
            });
        }
        rows.sort_by(|x, y| {
            y.d_net
                .abs()
                .cmp(&x.d_net.abs())
                .then_with(|| x.name.cmp(&y.name))
        });
        Some(WindowDiff {
            a,
            b,
            a_span: (ra.start_us, ra.end_us),
            b_span: (rb.start_us, rb.end_us),
            rows,
            d_anomalies: rb.recon.anomalies.total() as i64 - ra.recon.anomalies.total() as i64,
            threshold_ppm,
        })
    }

    /// The top-`n` movers between `a` and `b` (owned, for callers that
    /// do not need the full diff).
    pub fn movers(&self, a: u64, b: u64, n: usize) -> Vec<DiffRow> {
        self.diff(a, b)
            .map(|d| d.movers(n).into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Sessions ingested.
    pub fn sessions(&self) -> u64 {
        self.inner.lock().expect("recorder lock").sessions
    }
}

impl SessionSink for FlightRecorder {
    fn session(&mut self, session: &SupervisedSession) {
        self.ingest_session(session);
    }

    fn gap(&mut self, gap: &Gap) {
        self.ingest_gap(gap);
    }
}

/// [`MaskVisibility`] of `name`, from a sealed hot-tag set instead of
/// a full `SupervisedRun` (same classification as `stitch::visibility`).
fn mask_visibility(tf: &TagFile, hot_tags: &[u16], name: &str) -> MaskVisibility {
    let Some(entry) = tf.entry_of(name) else {
        return MaskVisibility::UnlessSwitchOnly;
    };
    if entry.kind == TagKind::ContextSwitch {
        return MaskVisibility::AllLevels;
    }
    if hot_tags.binary_search(&entry.tag).is_ok() {
        return MaskVisibility::AllOnly;
    }
    MaskVisibility::UnlessSwitchOnly
}
