//! Property tests on the reconstruction invariants.

use proptest::prelude::*;

use crate::events::{decode, EvKind, Event, SessionDecoder, Symbols, TagMap};
use crate::recon::Reconstruction;
use crate::stream::{RecordStream, StreamAnalyzer};
use crate::Analyzer;
use hwprof_profiler::{parse_raw, serialize_raw, BankSink, RawRecord};
use hwprof_tagfile::{TagFile, TagKind};

fn analyze(syms: &Symbols, events: &[Event]) -> Reconstruction {
    Analyzer::new(syms).session(events).expect("ungated")
}

fn analyze_sessions(syms: &Symbols, sessions: &[Vec<Event>]) -> Reconstruction {
    Analyzer::new(syms).sessions(sessions).expect("ungated")
}

fn analyze_parallel(syms: &Symbols, sessions: &[Vec<Event>], workers: usize) -> Reconstruction {
    Analyzer::new(syms)
        .workers(workers)
        .sessions(sessions)
        .expect("ungated")
}

/// Generates a structurally valid single-thread capture: random nesting
/// of `nfns` functions with strictly increasing times.
fn balanced_stream(nfns: u16, ops: Vec<(u8, u8)>) -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(100);
    let tags: Vec<u16> = (0..nfns)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let mut records = Vec::new();
    let mut stack: Vec<u16> = Vec::new();
    let mut t = 0u64;
    for (sel, dt) in ops {
        t += u64::from(dt) + 1;
        if sel % 3 == 0 && !stack.is_empty() {
            // Exit the innermost frame.
            let tag = stack.pop().expect("checked");
            records.push(RawRecord::latch(tag + 1, t));
        } else if stack.len() < 12 {
            let tag = tags[sel as usize % tags.len()];
            stack.push(tag);
            records.push(RawRecord::latch(tag, t));
        }
    }
    // Close everything.
    for tag in stack.into_iter().rev() {
        t += 3;
        records.push(RawRecord::latch(tag + 1, t));
    }
    (tf, records)
}

proptest! {
    /// For any balanced stream: every entry pairs, no unmatched exits,
    /// net times sum exactly to elapsed wall time (a closed single
    /// thread has no idle), and per-function net <= elapsed.
    #[test]
    fn balanced_streams_account_exactly(
        nfns in 1u16..8,
        ops in prop::collection::vec((0u8..=255, 0u8..40), 2..300),
    ) {
        let (tf, records) = balanced_stream(nfns, ops);
        prop_assume!(records.len() >= 2);
        let (syms, events) = decode(&records, &tf);
        let r = analyze(&syms, &events);
        prop_assert_eq!(r.unmatched_exits, 0);
        prop_assert_eq!(r.unknown_tags, 0);
        prop_assert_eq!(r.open_at_end, 0);
        prop_assert_eq!(r.idle, 0);
        // Outermost frames' elapsed covers the whole run; net times of
        // all functions partition the covered time.
        let total_net: u64 = r.stats.iter().map(|a| a.net).sum();
        // Time before the first entry's frame and gaps between
        // top-level frames are uncovered; net can never exceed wall.
        prop_assert!(total_net <= r.total_elapsed);
        for a in &r.stats {
            prop_assert!(a.net <= a.elapsed);
            if a.calls > 0 {
                prop_assert!(a.max_net >= a.min_net);
                prop_assert!(a.net >= a.min_net);
            }
        }
        // Entry/exit counts in the raw stream match reconstructed calls.
        let mut entries = 0u64;
        for e in &events {
            if matches!(e.kind, EvKind::Entry(_)) {
                entries += 1;
            }
        }
        let calls: u64 = r.stats.iter().map(|a| a.calls).sum();
        prop_assert_eq!(calls, entries);
    }

    /// Adding a constant offset to every hardware timestamp (mod 2^24,
    /// as the free-running counter would) changes nothing: the analysis
    /// uses intervals only.
    #[test]
    fn time_origin_is_irrelevant(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 2..150),
        offset in 0u32..0x00FF_FFFF,
    ) {
        let (tf, records) = balanced_stream(nfns, ops);
        prop_assume!(records.len() >= 2);
        let shifted: Vec<RawRecord> = records
            .iter()
            .map(|r| RawRecord {
                tag: r.tag,
                time: (r.time + offset) & 0x00FF_FFFF,
            })
            .collect();
        let (syms, e1) = decode(&records, &tf);
        let (_, e2) = decode(&shifted, &tf);
        let r1 = analyze(&syms, &e1);
        let r2 = analyze(&syms, &e2);
        prop_assert_eq!(r1.total_elapsed, r2.total_elapsed);
        for (a, b) in r1.stats.iter().zip(&r2.stats) {
            prop_assert_eq!(a.calls, b.calls);
            prop_assert_eq!(a.net, b.net);
            prop_assert_eq!(a.elapsed, b.elapsed);
        }
    }

    /// Truncating a capture (the overflow LED stopping the board early)
    /// never breaks the analyzer: it reports open frames and all
    /// completed calls still account correctly.
    #[test]
    fn truncation_is_tolerated(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 4..200),
        cut_ppm in 0u32..1_000_000,
    ) {
        let (tf, records) = balanced_stream(nfns, ops);
        prop_assume!(records.len() >= 4);
        let keep = 2 + (records.len() - 2) * cut_ppm as usize / 1_000_000;
        let cut = &records[..keep];
        let (syms, events) = decode(cut, &tf);
        let r = analyze(&syms, &events);
        // No crash, and the books balance: every entry either completed
        // or is reported open.
        let entries = events
            .iter()
            .filter(|e| matches!(e.kind, EvKind::Entry(_)))
            .count() as u64;
        let calls: u64 = r.stats.iter().map(|a| a.calls).sum();
        prop_assert_eq!(calls + r.open_at_end, entries);
    }
}

/// Generates a completely unstructured capture: entries, exits, `swtch`
/// entries/exits, inline marks and unknown tags in any order, with
/// inter-event gaps big enough to cross 24-bit counter wraps.  The
/// analyzer must produce *some* deterministic answer for all of it, and
/// every incremental/parallel path must produce the same one.
fn arbitrary_stream(ops: &[(u8, u32)]) -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(100);
    let fns: Vec<u16> = (0..5)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    let mark = tf.assign("MARK", TagKind::Inline).expect("fresh");
    let mut records = Vec::new();
    let mut t = 0u64;
    for &(sel, dt) in ops {
        t += u64::from(dt);
        let tag = match sel % 16 {
            0..=5 => fns[usize::from(sel) % fns.len()],
            6..=11 => fns[usize::from(sel) % fns.len()] + 1,
            12 => swtch,
            13 => swtch + 1,
            14 => mark,
            _ => 60_000 + u16::from(sel),
        };
        records.push(RawRecord::latch(tag, t));
    }
    (tf, records)
}

/// Splits `records` at arbitrary cut points into consecutive sessions
/// and decodes each with a fresh time origin, exactly as the streaming
/// pipeline treats drained banks.
fn cut_sessions(records: &[RawRecord], map: &TagMap, cuts: &[usize]) -> Vec<Vec<Event>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (records.len() + 1)).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut sessions = Vec::new();
    let mut prev = 0;
    for p in bounds.into_iter().chain([records.len()]) {
        if p < prev {
            continue;
        }
        let mut d = SessionDecoder::new(map);
        let mut ev = Vec::new();
        d.extend(&records[prev..p], &mut ev);
        sessions.push(ev);
        prev = p;
    }
    sessions
}

proptest! {
    /// Feeding the upload byte stream through [`RecordStream`] in any
    /// chunking — including splits inside a 5-byte record — yields
    /// exactly the batch [`parse_raw`] result.
    #[test]
    fn chunked_byte_decode_matches_batch(
        ops in prop::collection::vec((0u8..=255, 0u32..150_000), 1..200),
        cuts in prop::collection::vec(0usize..1000, 0..8),
    ) {
        let (_, records) = arbitrary_stream(&ops);
        let bytes = serialize_raw(&records);
        let mut positions: Vec<usize> =
            cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        positions.sort_unstable();
        let mut stream = RecordStream::new();
        let mut out = Vec::new();
        let mut prev = 0;
        for p in positions {
            stream.push(&bytes[prev..p], &mut out);
            prev = p;
        }
        stream.push(&bytes[prev..], &mut out);
        prop_assert!(stream.finish().is_ok());
        prop_assert_eq!(out, parse_raw(&bytes).expect("round multiple of 5"));
    }

    /// Decoding a session record-chunk by record-chunk (incremental
    /// 24-bit unwrap carried across chunks) equals batch [`decode`].
    #[test]
    fn chunked_session_decode_matches_batch(
        ops in prop::collection::vec((0u8..=255, 0u32..150_000), 1..200),
        cuts in prop::collection::vec(0usize..1000, 0..8),
    ) {
        let (tf, records) = arbitrary_stream(&ops);
        let map = TagMap::from_tagfile(&tf);
        let mut positions: Vec<usize> =
            cuts.iter().map(|c| c % (records.len() + 1)).collect();
        positions.sort_unstable();
        let mut d = SessionDecoder::new(&map);
        let mut chunked = Vec::new();
        let mut prev = 0;
        for p in positions {
            d.extend(&records[prev..p], &mut chunked);
            prev = p;
        }
        d.extend(&records[prev..], &mut chunked);
        let (_, batch) = decode(&records, &tf);
        prop_assert_eq!(chunked, batch);
    }

    /// The tentpole invariant: splitting any event stream into sessions
    /// and merging per-session reconstructions across any number of
    /// workers is *bit-identical* to the sequential batch analysis —
    /// through counter wraps, context switches, unknown tags and
    /// unbalanced entries/exits.
    #[test]
    fn parallel_analysis_is_bit_identical(
        ops in prop::collection::vec((0u8..=255, 0u32..150_000), 1..250),
        cuts in prop::collection::vec(0usize..1000, 0..6),
        workers in 1usize..8,
    ) {
        let (tf, records) = arbitrary_stream(&ops);
        let map = TagMap::from_tagfile(&tf);
        let syms = Symbols::from_tagfile(&tf);
        let sessions = cut_sessions(&records, &map, &cuts);
        let batch = analyze_sessions(&syms, &sessions);
        let parallel = analyze_parallel(&syms, &sessions, workers);
        prop_assert_eq!(parallel, batch);
    }

    /// End to end through the worker pool: banks pushed through a
    /// [`StreamAnalyzer`] feed reproduce the batch multi-session answer
    /// exactly, for any bank split and worker count.
    #[test]
    fn stream_pipeline_is_bit_identical(
        ops in prop::collection::vec((0u8..=255, 0u32..150_000), 1..150),
        cuts in prop::collection::vec(0usize..1000, 0..5),
        workers in 1usize..5,
    ) {
        let (tf, records) = arbitrary_stream(&ops);
        let map = TagMap::from_tagfile(&tf);
        let syms = Symbols::from_tagfile(&tf);
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| c % (records.len() + 1)).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut analyzer = StreamAnalyzer::new(&tf, workers);
        let mut feed = analyzer.feed().expect("pipeline open");
        let mut prev = 0;
        for p in bounds.into_iter().chain([records.len()]) {
            if p < prev {
                continue;
            }
            prop_assert!(feed.bank(records[prev..p].to_vec()));
            prev = p;
        }
        drop(feed);
        let streamed = analyzer.finish().expect("first finish");
        let sessions = cut_sessions(&records, &map, &cuts);
        let batch = analyze_sessions(&syms, &sessions);
        prop_assert_eq!(streamed, batch);
    }
}
