//! Property tests on the reconstruction invariants.

use proptest::prelude::*;

use crate::events::{decode, EvKind};
use crate::recon::analyze;
use hwprof_profiler::RawRecord;
use hwprof_tagfile::{TagFile, TagKind};

/// Generates a structurally valid single-thread capture: random nesting
/// of `nfns` functions with strictly increasing times.
fn balanced_stream(nfns: u16, ops: Vec<(u8, u8)>) -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(100);
    let tags: Vec<u16> = (0..nfns)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let mut records = Vec::new();
    let mut stack: Vec<u16> = Vec::new();
    let mut t = 0u64;
    for (sel, dt) in ops {
        t += u64::from(dt) + 1;
        if sel % 3 == 0 && !stack.is_empty() {
            // Exit the innermost frame.
            let tag = stack.pop().expect("checked");
            records.push(RawRecord::latch(tag + 1, t));
        } else if stack.len() < 12 {
            let tag = tags[sel as usize % tags.len()];
            stack.push(tag);
            records.push(RawRecord::latch(tag, t));
        }
    }
    // Close everything.
    for tag in stack.into_iter().rev() {
        t += 3;
        records.push(RawRecord::latch(tag + 1, t));
    }
    (tf, records)
}

proptest! {
    /// For any balanced stream: every entry pairs, no unmatched exits,
    /// net times sum exactly to elapsed wall time (a closed single
    /// thread has no idle), and per-function net <= elapsed.
    #[test]
    fn balanced_streams_account_exactly(
        nfns in 1u16..8,
        ops in prop::collection::vec((0u8..=255, 0u8..40), 2..300),
    ) {
        let (tf, records) = balanced_stream(nfns, ops);
        prop_assume!(records.len() >= 2);
        let (syms, events) = decode(&records, &tf);
        let r = analyze(&syms, &events);
        prop_assert_eq!(r.unmatched_exits, 0);
        prop_assert_eq!(r.unknown_tags, 0);
        prop_assert_eq!(r.open_at_end, 0);
        prop_assert_eq!(r.idle, 0);
        // Outermost frames' elapsed covers the whole run; net times of
        // all functions partition the covered time.
        let total_net: u64 = r.stats.iter().map(|a| a.net).sum();
        // Time before the first entry's frame and gaps between
        // top-level frames are uncovered; net can never exceed wall.
        prop_assert!(total_net <= r.total_elapsed);
        for a in &r.stats {
            prop_assert!(a.net <= a.elapsed);
            if a.calls > 0 {
                prop_assert!(a.max_net >= a.min_net);
                prop_assert!(a.net >= a.min_net);
            }
        }
        // Entry/exit counts in the raw stream match reconstructed calls.
        let mut entries = 0u64;
        for e in &events {
            if matches!(e.kind, EvKind::Entry(_)) {
                entries += 1;
            }
        }
        let calls: u64 = r.stats.iter().map(|a| a.calls).sum();
        prop_assert_eq!(calls, entries);
    }

    /// Adding a constant offset to every hardware timestamp (mod 2^24,
    /// as the free-running counter would) changes nothing: the analysis
    /// uses intervals only.
    #[test]
    fn time_origin_is_irrelevant(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 2..150),
        offset in 0u32..0x00FF_FFFF,
    ) {
        let (tf, records) = balanced_stream(nfns, ops);
        prop_assume!(records.len() >= 2);
        let shifted: Vec<RawRecord> = records
            .iter()
            .map(|r| RawRecord {
                tag: r.tag,
                time: (r.time + offset) & 0x00FF_FFFF,
            })
            .collect();
        let (syms, e1) = decode(&records, &tf);
        let (_, e2) = decode(&shifted, &tf);
        let r1 = analyze(&syms, &e1);
        let r2 = analyze(&syms, &e2);
        prop_assert_eq!(r1.total_elapsed, r2.total_elapsed);
        for (a, b) in r1.stats.iter().zip(&r2.stats) {
            prop_assert_eq!(a.calls, b.calls);
            prop_assert_eq!(a.net, b.net);
            prop_assert_eq!(a.elapsed, b.elapsed);
        }
    }

    /// Truncating a capture (the overflow LED stopping the board early)
    /// never breaks the analyzer: it reports open frames and all
    /// completed calls still account correctly.
    #[test]
    fn truncation_is_tolerated(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 4..200),
        cut_ppm in 0u32..1_000_000,
    ) {
        let (tf, records) = balanced_stream(nfns, ops);
        prop_assume!(records.len() >= 4);
        let keep = 2 + (records.len() - 2) * cut_ppm as usize / 1_000_000;
        let cut = &records[..keep];
        let (syms, events) = decode(cut, &tf);
        let r = analyze(&syms, &events);
        // No crash, and the books balance: every entry either completed
        // or is reported open.
        let entries = events
            .iter()
            .filter(|e| matches!(e.kind, EvKind::Entry(_)))
            .count() as u64;
        let calls: u64 = r.stats.iter().map(|a| a.calls).sum();
        prop_assert_eq!(calls + r.open_at_end, entries);
    }
}
