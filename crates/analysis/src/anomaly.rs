//! Classified capture anomalies.
//!
//! A corrupted capture must still yield per-function times plus an
//! explicit account of what was lost (trace-analysis tools serving
//! real workloads degrade gracefully on malformed input rather than
//! abort).  Every anomaly the recovery pipeline tolerates is classified
//! into one of these counters, carried through the
//! [`crate::Reconstruction`] monoid merge, and surfaced in the report
//! and trace output.

/// Per-class anomaly counts for one reconstruction.
///
/// Like every other [`crate::Reconstruction`] field this is a monoid:
/// [`Anomalies::default`] is the identity and [`Anomalies::merge`] is a
/// field-wise sum, so per-session counts merged in session order equal
/// one sequential pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Anomalies {
    /// Exits with no matching open frame anywhere on the stack
    /// (a dropped entry, or the capture started mid-call).
    pub orphan_exits: u64,
    /// Entries that never saw their exit: frames force-closed to
    /// resynchronize on a deeper matching exit, plus frames still open
    /// at capture end (a dropped exit, or the capture ended mid-call).
    pub unmatched_entries: u64,
    /// Tags absent from the name file (spurious EPROM reads, or a
    /// bit-flipped tag).
    pub unknown_tags: u64,
    /// Timestamps that jumped more than half the 24-bit window in one
    /// step — beyond any single wrap a live kernel produces between
    /// back-to-back events (a bit-flipped time field).
    pub time_jumps: u64,
    /// Adjacent identical records dropped at decode (a stuck address
    /// counter storing the same cell twice).
    pub duplicates: u64,
    /// Uploads whose byte stream ended mid-record (a truncated
    /// transfer).
    pub truncations: u64,
}

impl Anomalies {
    /// Folds `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &Anomalies) {
        self.orphan_exits += other.orphan_exits;
        self.unmatched_entries += other.unmatched_entries;
        self.unknown_tags += other.unknown_tags;
        self.time_jumps += other.time_jumps;
        self.duplicates += other.duplicates;
        self.truncations += other.truncations;
    }

    /// Total anomalies across every class.
    pub fn total(&self) -> u64 {
        self.orphan_exits
            + self.unmatched_entries
            + self.unknown_tags
            + self.time_jumps
            + self.duplicates
            + self.truncations
    }

    /// True if nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// One line per nonzero class, for the report's integrity block.
    pub fn describe(&self) -> Vec<String> {
        let classes: [(u64, &str); 6] = [
            (self.orphan_exits, "orphan exits"),
            (self.unmatched_entries, "unmatched entries"),
            (self.unknown_tags, "unknown tags"),
            (self.time_jumps, "time jumps"),
            (self.duplicates, "duplicate records"),
            (self.truncations, "truncated uploads"),
        ];
        classes
            .iter()
            .filter(|(n, _)| *n > 0)
            .map(|(n, what)| format!("{n:>9} {what}"))
            .collect()
    }
}

impl std::fmt::Display for Anomalies {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut first = true;
        let classes: [(u64, &str); 6] = [
            (self.orphan_exits, "orphan exits"),
            (self.unmatched_entries, "unmatched entries"),
            (self.unknown_tags, "unknown tags"),
            (self.time_jumps, "time jumps"),
            (self.duplicates, "duplicates"),
            (self.truncations, "truncations"),
        ];
        for (n, what) in classes {
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{n} {what}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_sum() {
        let mut a = Anomalies {
            orphan_exits: 1,
            duplicates: 2,
            ..Anomalies::default()
        };
        let b = Anomalies {
            orphan_exits: 3,
            unknown_tags: 4,
            ..Anomalies::default()
        };
        a.merge(&b);
        assert_eq!(a.orphan_exits, 4);
        assert_eq!(a.duplicates, 2);
        assert_eq!(a.unknown_tags, 4);
        assert_eq!(a.total(), 10);
        assert!(!a.is_clean());
        assert!(Anomalies::default().is_clean());
    }

    #[test]
    fn describe_lists_only_nonzero() {
        let a = Anomalies {
            time_jumps: 7,
            ..Anomalies::default()
        };
        let lines = a.describe();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("7 time jumps"));
        assert_eq!(format!("{a}"), "7 time jumps");
        assert_eq!(format!("{}", Anomalies::default()), "clean");
    }
}
