//! The function summary report (Figure 3).

use crate::events::SymId;
use crate::recon::Reconstruction;

/// The one microsecond-total formatting convention every report path
/// shares: plain `"<n> us"` below a second, `"<s> sec <r> us"` from a
/// second up.  `summary_report` and the fleet report both route totals
/// through here, so golden files encode a single dialect.
pub fn fmt_us(t: u64) -> String {
    if t < 1_000_000 {
        format!("{t} us")
    } else {
        format!("{} sec {} us", t / 1_000_000, t % 1_000_000)
    }
}

/// Renders the per-function summary "sorted by highest to lowest net CPU
/// usage, headed by an overall summary of the profiling data", in the
/// paper's Figure 3 layout.
///
/// `top` limits the number of body rows (`None` = all).
pub fn summary_report(r: &Reconstruction, top: Option<usize>) -> String {
    let mut out = String::new();
    let total = r.total_elapsed;
    let run = r.run_time();
    let pct = |x: u64, of: u64| {
        if of == 0 {
            0.0
        } else {
            x as f64 * 100.0 / of as f64
        }
    };
    out.push_str(&format!(
        "Elapsed time = {} ({} tags)\n",
        fmt_us(total),
        r.tags
    ));
    out.push_str(&format!(
        "Accumulated run time = {} ({:.2}%)\n",
        fmt_us(run),
        pct(run, total)
    ));
    out.push_str(&format!(
        "Idle time = {} ({:5.2}%)\n",
        fmt_us(r.idle),
        pct(r.idle, total)
    ));
    out.push_str("------------------------------------------------------------------------\n");
    out.push_str("  Elapsed      Net  # calls    (max/avg/min)    % real   % net\n");
    // A sampled normalization attributes net time without call counts,
    // so presence is "was ever observed", not "was ever called".
    let mut order: Vec<SymId> = (0..r.stats.len() as SymId)
        .filter(|&s| r.stats[s as usize].calls > 0 || r.stats[s as usize].net > 0)
        .collect();
    order.sort_by(|&a, &b| {
        r.stats[b as usize]
            .net
            .cmp(&r.stats[a as usize].net)
            .then_with(|| r.syms.name(a).cmp(r.syms.name(b)))
    });
    if let Some(n) = top {
        order.truncate(n);
    }
    for s in order {
        let a = r.stats[s as usize];
        let avg = a.net / a.calls.max(1);
        out.push_str(&format!(
            "{:>9} {:>8} {:>8}  {:>16}  {:>7.2}% {:>7.2}%   {}\n",
            a.elapsed,
            a.net,
            a.calls,
            format!("({}/{}/{})", a.max_net, avg, a.min_net),
            pct(a.net, total),
            pct(a.net, run),
            r.syms.name(s)
        ));
    }
    // Inline points, if any fired.
    let inlines: Vec<SymId> = (0..r.stats.len() as SymId)
        .filter(|&s| r.stats[s as usize].inline_hits > 0)
        .collect();
    if !inlines.is_empty() {
        out.push_str("\nInline points:\n");
        for s in inlines {
            out.push_str(&format!(
                "{:>9} hits   {} =\n",
                r.stats[s as usize].inline_hits,
                r.syms.name(s)
            ));
        }
    }
    if !r.anomalies.is_clean() {
        out.push_str("\nCapture integrity:\n");
        for line in r.anomalies.describe() {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!("{:>9} total anomalies\n", r.anomalies.total()));
    }
    // Supervised captures carry timeline coverage accounting.
    if r.coverage.timeline_us > 0 {
        out.push_str("\nCoverage:\n");
        for line in r.coverage.describe() {
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::events::decode;
    fn analyze(syms: &crate::Symbols, events: &[crate::Event]) -> crate::Reconstruction {
        crate::Analyzer::new(syms).session(events).expect("ungated")
    }
    use hwprof_profiler::RawRecord;

    #[test]
    fn report_has_header_and_sorted_rows() {
        let tf = hwprof_tagfile::parse("hot/100\ncold/102\n").unwrap();
        let recs = [
            RawRecord { tag: 102, time: 0 },
            RawRecord { tag: 103, time: 10 },
            RawRecord { tag: 100, time: 20 },
            RawRecord {
                tag: 101,
                time: 920,
            },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let rep = super::summary_report(&r, None);
        assert!(rep.contains("Elapsed time = 920 us (4 tags)"));
        assert!(rep.contains("% real"));
        let hot_pos = rep.find("hot").unwrap();
        let cold_pos = rep.find("cold").unwrap();
        assert!(hot_pos < cold_pos, "sorted by net descending");
    }
}
