//! The paper's what-if arithmetic: estimating design changes from
//! measured components.
//!
//! "Would this help?  Contrary to intuition, this would actually decrease
//! the performance, and using the accurate timing provided by the
//! Profiler, a close estimate of the impact can be calculated."
//!
//! The three designs compared for the receive path of one full TCP
//! packet:
//!
//! 1. **Stock**: driver `bcopy` out of controller memory, checksum in
//!    main memory, `copyout` to the user.
//! 2. **External mbufs**: no driver copy, but the checksum and `copyout`
//!    must read controller memory over the 8-bit ISA bus.
//! 3. **Recoded assembler checksum**: stock data path, ~5x cheaper
//!    checksum.

/// Measured per-packet components, microseconds.
#[derive(Debug, Clone, Copy)]
pub struct PacketCosts {
    /// Driver copy of the frame out of controller memory (paper: ~1045).
    pub driver_copy: f64,
    /// Checksum of the payload in main memory, stock C coding
    /// (paper: ~843 µs/KB → ~1200 for a full frame).
    pub cksum_main: f64,
    /// Copy to user space from main memory (paper: ~40 µs/KB).
    pub copyout_main: f64,
    /// Everything else (headers, socket, spl, wakeups).
    pub other: f64,
    /// Cost multiplier for touching controller memory instead of main
    /// memory (the ISA penalty; paper: up to 20x).
    pub isa_factor: f64,
    /// Speedup of the recoded assembler checksum.
    pub asm_speedup: f64,
}

impl PacketCosts {
    /// The paper's measured numbers for a 1500-byte packet.
    pub fn paper() -> Self {
        PacketCosts {
            driver_copy: 1045.0,
            cksum_main: 1230.0, // 843 us/KB over ~1460 bytes
            copyout_main: 60.0, // ~40 us per 1 KiB cluster, 1.5 clusters
            other: 180.0,
            isa_factor: 17.0,
            asm_speedup: 5.5,
        }
    }

    /// Stock per-packet time.
    pub fn stock(&self) -> f64 {
        self.driver_copy + self.cksum_main + self.copyout_main + self.other
    }

    /// External-mbuf per-packet time: the driver copy disappears, but
    /// every later touch of the payload runs against ISA memory.  The
    /// paper's arithmetic: collapsing `bcopy` + `copyout` into one ISA
    /// pass "would give at most a gain of 60 microseconds", while
    /// "checksumming the packet whilst in the controller's memory would
    /// add at least an extra 980 microseconds" — a net large loss.
    pub fn external_mbufs(&self) -> f64 {
        // One ISA pass for the copy to user space (the old driver copy
        // cost; the old main-memory copyout disappears).
        let copy_pass = self.driver_copy;
        // The checksum must fetch the payload over the ISA bus: its old
        // cost plus roughly another ISA pass.
        let cksum_pass = self.cksum_main + self.driver_copy * 0.94;
        copy_pass + cksum_pass + self.other
    }

    /// Recoded-assembler-checksum per-packet time.
    pub fn asm_cksum(&self) -> f64 {
        self.driver_copy + self.cksum_main / self.asm_speedup + self.copyout_main + self.other
    }

    /// The paper's headline deltas: (stock, external, asm).
    pub fn compare(&self) -> (f64, f64, f64) {
        (self.stock(), self.external_mbufs(), self.asm_cksum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce_the_papers_conclusions() {
        let c = PacketCosts::paper();
        let (stock, external, asm) = c.compare();
        // "The time to process a packet would increase from 2000
        // microseconds to around 3000 microseconds, a big loss."
        assert!((1900.0..2700.0).contains(&stock), "stock {stock}");
        assert!(external > stock + 500.0, "external {external}");
        assert!((2700.0..3600.0).contains(&external));
        // "recoding this routine should provide a reduction in packet
        // processing from 2000 microseconds to perhaps 1200".
        assert!(asm < stock - 700.0, "asm {asm}");
        assert!((1100.0..1700.0).contains(&asm));
    }

    #[test]
    fn external_mbufs_win_only_without_checksum_traffic() {
        // The paper's insight inverted: if nothing but the copyout
        // touched the data (e.g. UDP with checksums off), collapsing the
        // copies would have been a small win — set cksum to zero and
        // compare one ISA pass against copy+copyout.
        let mut c = PacketCosts::paper();
        c.cksum_main = 0.0;
        let one_pass = c.driver_copy + c.other;
        let stock = c.stock();
        assert!(one_pass < stock + 1.0);
    }
}
