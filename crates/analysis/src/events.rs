//! Raw record decoding: 24-bit time unwrap and tag-to-name matching.

use hwprof_profiler::{RawRecord, TIME_MASK};
use hwprof_tagfile::{TagFile, TagKind};

/// Index into the symbol table.
pub type SymId = u32;

/// The symbol table: one entry per tag-file name.
#[derive(Debug, Clone, Default)]
pub struct Symbols {
    names: Vec<String>,
    cswitch: Vec<bool>,
}

impl Symbols {
    /// Builds a symbol table from a tag file.
    pub fn from_tagfile(tf: &TagFile) -> Self {
        let mut s = Symbols::default();
        for e in tf.entries() {
            s.names.push(e.name.clone());
            s.cswitch.push(e.kind == TagKind::ContextSwitch);
        }
        s
    }

    /// The name of `sym`.
    pub fn name(&self, sym: SymId) -> &str {
        &self.names[sym as usize]
    }

    /// True if `sym` is a context-switch function (`!` modifier).
    pub fn is_cswitch(&self, sym: SymId) -> bool {
        self.cswitch[sym as usize]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finds a symbol by name (report post-processing).
    pub fn lookup(&self, name: &str) -> Option<SymId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as SymId)
    }
}

/// What one event means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// Function entry.
    Entry(SymId),
    /// Function exit.
    Exit(SymId),
    /// Inline point.
    Inline(SymId),
    /// Tag not present in the name file.
    Unknown(u16),
}

/// A decoded event: unwrapped absolute microsecond time plus meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Absolute microseconds from the first event of the session.
    pub t: u64,
    /// Meaning.
    pub kind: EvKind,
}

/// Unwraps the 24-bit hardware timestamps into absolute microseconds.
///
/// "the analysis software only uses the timer value as an interval time,
/// not as an absolute time" — each consecutive delta is taken modulo
/// 2^24, so any gap under ~16.8 s is exact and information is lost (the
/// paper's stated limit) only beyond that.
pub fn unwrap_times(records: &[RawRecord]) -> Vec<u64> {
    let mut out = Vec::with_capacity(records.len());
    let mut abs = 0u64;
    let mut prev: Option<u32> = None;
    for r in records {
        let t = r.time & TIME_MASK;
        if let Some(p) = prev {
            let delta = (t.wrapping_sub(p)) & TIME_MASK;
            abs += u64::from(delta);
        }
        prev = Some(t);
        out.push(abs);
    }
    out
}

/// Decodes a capture session against the name/tag file.
///
/// Returns the symbol table and the event stream; unknown tags are kept
/// (they count toward the header's tag total and are diagnosable) but
/// take no part in reconstruction.
pub fn decode(records: &[RawRecord], tf: &TagFile) -> (Symbols, Vec<Event>) {
    let syms = Symbols::from_tagfile(tf);
    // Precompute the tag -> meaning map once (captures run to 10^5+
    // events; resolving each against the file would be quadratic).
    let mut map: std::collections::HashMap<u16, EvKind> = std::collections::HashMap::new();
    for (i, e) in tf.entries().iter().enumerate() {
        let sym = i as SymId;
        match e.kind {
            TagKind::Inline => {
                map.insert(e.tag, EvKind::Inline(sym));
            }
            TagKind::Function | TagKind::ContextSwitch => {
                map.insert(e.tag, EvKind::Entry(sym));
                map.insert(e.tag + 1, EvKind::Exit(sym));
            }
        }
    }
    let times = unwrap_times(records);
    let events = records
        .iter()
        .zip(times)
        .map(|(r, t)| Event {
            t,
            kind: map.get(&r.tag).copied().unwrap_or(EvKind::Unknown(r.tag)),
        })
        .collect();
    (syms, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_profiler::RawRecord;

    #[test]
    fn unwrap_handles_wraps() {
        let recs = [
            RawRecord {
                tag: 0,
                time: 0xFF_FFF0,
            },
            RawRecord {
                tag: 0,
                time: 0xFF_FFFF,
            },
            RawRecord {
                tag: 0,
                time: 0x00_0005,
            }, // wrapped
            RawRecord {
                tag: 0,
                time: 0x00_0007,
            },
        ];
        assert_eq!(unwrap_times(&recs), vec![0, 15, 21, 23]);
    }

    #[test]
    fn unwrap_first_event_is_zero() {
        let recs = [RawRecord {
            tag: 1,
            time: 123_456,
        }];
        assert_eq!(unwrap_times(&recs), vec![0]);
    }

    #[test]
    fn decode_classifies_events() {
        let tf = hwprof_tagfile::parse("f/100\nswtch/200!\nMARK/300=\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 300, time: 5 },
            RawRecord { tag: 101, time: 9 },
            RawRecord { tag: 201, time: 12 },
            RawRecord { tag: 999, time: 20 },
        ];
        let (syms, ev) = decode(&recs, &tf);
        assert!(matches!(ev[0].kind, EvKind::Entry(s) if syms.name(s) == "f"));
        assert!(matches!(ev[1].kind, EvKind::Inline(s) if syms.name(s) == "MARK"));
        assert!(matches!(ev[2].kind, EvKind::Exit(s) if syms.name(s) == "f"));
        assert!(matches!(ev[3].kind, EvKind::Exit(s) if syms.is_cswitch(s)));
        assert!(matches!(ev[4].kind, EvKind::Unknown(999)));
        assert_eq!(ev[3].t, 12);
    }
}
