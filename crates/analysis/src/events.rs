//! Raw record decoding: 24-bit time unwrap and tag-to-name matching.

use crate::anomaly::Anomalies;
use hwprof_profiler::{RawRecord, TIME_MASK};
use hwprof_tagfile::{TagFile, TagKind};

/// A one-step timestamp delta at or beyond half the 24-bit window is
/// treated as corruption, not elapsed time.  A live kernel never goes
/// ~8.4 s between back-to-back events (the paper's workloads log
/// thousands per second), but a single flipped high time bit lands the
/// delta here immediately — the same half-window heuristic TCP uses to
/// order sequence numbers.
pub const TIME_JUMP_THRESHOLD: u32 = 1 << 23;

/// Index into the symbol table.
pub type SymId = u32;

/// The symbol table: one entry per tag-file name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Symbols {
    names: Vec<String>,
    cswitch: Vec<bool>,
}

impl Symbols {
    /// Builds a symbol table from a tag file.
    pub fn from_tagfile(tf: &TagFile) -> Self {
        let mut s = Symbols::default();
        for e in tf.entries() {
            s.names.push(e.name.clone());
            s.cswitch.push(e.kind == TagKind::ContextSwitch);
        }
        s
    }

    /// Builds a symbol table from bare names (no context-switch
    /// markers).  Capture backends that never see hardware tags —
    /// clock sampling, event counters — normalize their output against
    /// the kernel's function table with this.
    pub fn from_names<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let cswitch = vec![false; names.len()];
        Symbols { names, cswitch }
    }

    /// The name of `sym`.
    pub fn name(&self, sym: SymId) -> &str {
        &self.names[sym as usize]
    }

    /// True if `sym` is a context-switch function (`!` modifier).
    pub fn is_cswitch(&self, sym: SymId) -> bool {
        self.cswitch[sym as usize]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finds a symbol by name (report post-processing).
    pub fn lookup(&self, name: &str) -> Option<SymId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as SymId)
    }
}

/// What one event means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// Function entry.
    Entry(SymId),
    /// Function exit.
    Exit(SymId),
    /// Inline point.
    Inline(SymId),
    /// Tag not present in the name file.
    Unknown(u16),
}

/// A decoded event: unwrapped absolute microsecond time plus meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Absolute microseconds from the first event of the session.
    pub t: u64,
    /// Meaning.
    pub kind: EvKind,
}

/// Incremental 24-bit time unwrap: feeds on raw counter values one at
/// a time, carrying the running absolute time across chunk boundaries.
///
/// "the analysis software only uses the timer value as an interval time,
/// not as an absolute time" — each consecutive delta is taken modulo
/// 2^24, so any gap under ~16.8 s is exact and information is lost (the
/// paper's stated limit) only beyond that.  Batch [`unwrap_times`] is
/// one unwrapper run over a whole slice, so chunked and batch decoding
/// agree for every split of the same stream.
#[derive(Debug, Clone, Default)]
pub struct TimeUnwrapper {
    abs: u64,
    prev: Option<u32>,
    held: bool,
}

impl TimeUnwrapper {
    /// A fresh unwrapper (next value becomes the session origin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next raw 24-bit counter value; returns the absolute
    /// microsecond time relative to the first value fed.
    pub fn push(&mut self, raw_time: u32) -> u64 {
        let t = raw_time & TIME_MASK;
        if let Some(p) = self.prev {
            let delta = t.wrapping_sub(p) & TIME_MASK;
            self.abs += u64::from(delta);
        }
        self.prev = Some(t);
        self.abs
    }

    /// Like [`push`], but classifies a delta at or beyond
    /// [`TIME_JUMP_THRESHOLD`] as corruption: absolute time holds
    /// instead of leaping ~8 s forward, and the jump is flagged.
    ///
    /// A lone corrupt value is bridged — the previous good value stays
    /// the reference, so the next clean timestamp lands normally.  Two
    /// consecutive jumps mean the reference itself was the corrupt
    /// value: the new value is adopted as the base (time resumes from
    /// it without the bogus gap).
    ///
    /// [`push`]: TimeUnwrapper::push
    pub fn push_checked(&mut self, raw_time: u32) -> (u64, bool) {
        let t = raw_time & TIME_MASK;
        let Some(p) = self.prev else {
            self.prev = Some(t);
            return (self.abs, false);
        };
        let delta = t.wrapping_sub(p) & TIME_MASK;
        if delta >= TIME_JUMP_THRESHOLD {
            if self.held {
                self.prev = Some(t);
                self.held = false;
            } else {
                self.held = true;
            }
            (self.abs, true)
        } else {
            self.abs += u64::from(delta);
            self.prev = Some(t);
            self.held = false;
            (self.abs, false)
        }
    }

    /// The carried absolute time (what the next accepted delta adds
    /// onto).  Columnar decode prefix-sums its delta column from here.
    pub(crate) fn abs(&self) -> u64 {
        self.abs
    }

    /// The carried raw 24-bit reference, if any value has been fed.
    pub(crate) fn prev_raw(&self) -> Option<u32> {
        self.prev
    }

    /// True while the unwrapper is holding a suspected-corrupt
    /// reference (one flagged jump, awaiting the verdict of the next
    /// value).  Columnar recovery routes such batches to the scalar
    /// machine.
    pub(crate) fn is_held(&self) -> bool {
        self.held
    }

    /// Advances past a whole batch the caller has already verified
    /// clean (every delta below [`TIME_JUMP_THRESHOLD`], prefix-summed
    /// to `abs`): equivalent to pushing each value, in O(1).
    pub(crate) fn advance_batch(&mut self, abs: u64, last_raw: u32) {
        debug_assert!(abs >= self.abs);
        self.abs = abs;
        self.prev = Some(last_raw & TIME_MASK);
        self.held = false;
    }
}

/// Unwraps the 24-bit hardware timestamps into absolute microseconds.
pub fn unwrap_times(records: &[RawRecord]) -> Vec<u64> {
    let mut unwrapper = TimeUnwrapper::new();
    records.iter().map(|r| unwrapper.push(r.time)).collect()
}

/// The tag → meaning table, precomputed from the name file once and
/// shared by every decoder (captures run to 10^5+ events; resolving
/// each against the file would be quadratic).
#[derive(Debug, Clone, Default)]
pub struct TagMap {
    map: std::collections::HashMap<u16, EvKind>,
}

impl TagMap {
    /// Builds the map from a tag file.
    pub fn from_tagfile(tf: &TagFile) -> Self {
        let mut map = std::collections::HashMap::new();
        for (i, e) in tf.entries().iter().enumerate() {
            let sym = i as SymId;
            match e.kind {
                TagKind::Inline => {
                    map.insert(e.tag, EvKind::Inline(sym));
                }
                TagKind::Function | TagKind::ContextSwitch => {
                    map.insert(e.tag, EvKind::Entry(sym));
                    map.insert(e.tag + 1, EvKind::Exit(sym));
                }
            }
        }
        TagMap { map }
    }

    /// The meaning of one hardware tag.
    pub fn classify(&self, tag: u16) -> EvKind {
        self.map.get(&tag).copied().unwrap_or(EvKind::Unknown(tag))
    }
}

/// Incremental *scalar* decoder for one capture session: classifies
/// tags and unwraps times record by record, so a session can be
/// decoded in arbitrary chunks (the streaming upload path) with output
/// identical to batch [`decode`].
///
/// The hot paths ride the columnar
/// [`ColumnarDecoder`](crate::columnar::ColumnarDecoder) instead; this
/// record-at-a-time decoder is kept as the reference implementation —
/// the oracle the `decode_props` property suite pins the columnar
/// decoder's bit-identity against.
#[derive(Debug, Clone)]
pub struct SessionDecoder<'a> {
    map: &'a TagMap,
    unwrapper: TimeUnwrapper,
    last: Option<(u16, u32)>,
    anoms: Anomalies,
}

impl<'a> SessionDecoder<'a> {
    /// Starts a fresh session against a prebuilt tag map.
    pub fn new(map: &'a TagMap) -> Self {
        SessionDecoder {
            map,
            unwrapper: TimeUnwrapper::new(),
            last: None,
            anoms: Anomalies::default(),
        }
    }

    /// Decodes the next record.
    pub fn push(&mut self, record: &RawRecord) -> Event {
        Event {
            t: self.unwrapper.push(record.time),
            kind: self.map.classify(record.tag),
        }
    }

    /// Decodes the next chunk of records, appending to `out`.
    pub fn extend(&mut self, records: &[RawRecord], out: &mut Vec<Event>) {
        out.reserve(records.len());
        out.extend(records.iter().map(|r| self.push(r)));
    }

    /// Decodes the next record in recovery mode: an adjacent duplicate
    /// (a stuck address counter stored the same cell twice) is dropped
    /// and counted, and timestamp corruption is clamped and counted via
    /// [`TimeUnwrapper::push_checked`].
    pub fn push_recovering(&mut self, record: &RawRecord) -> Option<Event> {
        if self.last == Some((record.tag, record.time)) {
            self.anoms.duplicates += 1;
            return None;
        }
        self.last = Some((record.tag, record.time));
        let (t, jumped) = self.unwrapper.push_checked(record.time);
        if jumped {
            self.anoms.time_jumps += 1;
        }
        Some(Event {
            t,
            kind: self.map.classify(record.tag),
        })
    }

    /// Decodes the next chunk of records in recovery mode, appending
    /// surviving events to `out`.
    pub fn extend_recovering(&mut self, records: &[RawRecord], out: &mut Vec<Event>) {
        out.reserve(records.len());
        out.extend(records.iter().filter_map(|r| self.push_recovering(r)));
    }

    /// Anomalies flagged by the recovery-mode decode so far.
    pub fn anomalies(&self) -> Anomalies {
        self.anoms
    }
}

/// Decodes a capture session against the name/tag file.
///
/// Returns the symbol table and the event stream; unknown tags are kept
/// (they count toward the header's tag total and are diagnosable) but
/// take no part in reconstruction.
///
/// Rides the columnar batch decoder
/// ([`crate::columnar::ColumnarDecoder`]); [`decode_scalar`] is the
/// record-at-a-time reference path, bit-identical by the `decode_props`
/// property suite.
pub fn decode(records: &[RawRecord], tf: &TagFile) -> (Symbols, Vec<Event>) {
    let syms = Symbols::from_tagfile(tf);
    let table = crate::columnar::DenseTagTable::from_tagfile(tf);
    let mut decoder = crate::columnar::ColumnarDecoder::new(&table);
    let mut events = Vec::new();
    decoder.extend(records, &mut events);
    (syms, events)
}

/// Decodes a capture session in recovery mode: adjacent duplicate
/// records are dropped and timestamp corruption clamped, with every
/// intervention counted in the returned [`Anomalies`].
///
/// Rides the columnar batch decoder (per-batch anomaly scan, scalar
/// recovery machine only on flagged batches);
/// [`decode_recovering_scalar`] is the reference path.
pub fn decode_recovering(records: &[RawRecord], tf: &TagFile) -> (Symbols, Vec<Event>, Anomalies) {
    let syms = Symbols::from_tagfile(tf);
    let table = crate::columnar::DenseTagTable::from_tagfile(tf);
    let mut decoder = crate::columnar::ColumnarDecoder::new(&table);
    let mut events = Vec::new();
    decoder.extend_recovering(records, &mut events);
    let anoms = decoder.anomalies();
    (syms, events, anoms)
}

/// Scalar reference decode: one [`SessionDecoder`] pass, record at a
/// time.  The oracle [`decode`] is property-pinned against.
pub fn decode_scalar(records: &[RawRecord], tf: &TagFile) -> (Symbols, Vec<Event>) {
    let syms = Symbols::from_tagfile(tf);
    let map = TagMap::from_tagfile(tf);
    let mut decoder = SessionDecoder::new(&map);
    let mut events = Vec::new();
    decoder.extend(records, &mut events);
    (syms, events)
}

/// Scalar reference decode in recovery mode.  The oracle
/// [`decode_recovering`] is property-pinned against.
pub fn decode_recovering_scalar(
    records: &[RawRecord],
    tf: &TagFile,
) -> (Symbols, Vec<Event>, Anomalies) {
    let syms = Symbols::from_tagfile(tf);
    let map = TagMap::from_tagfile(tf);
    let mut decoder = SessionDecoder::new(&map);
    let mut events = Vec::new();
    decoder.extend_recovering(records, &mut events);
    let anoms = decoder.anomalies();
    (syms, events, anoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_profiler::RawRecord;

    #[test]
    fn unwrap_handles_wraps() {
        let recs = [
            RawRecord {
                tag: 0,
                time: 0xFF_FFF0,
            },
            RawRecord {
                tag: 0,
                time: 0xFF_FFFF,
            },
            RawRecord {
                tag: 0,
                time: 0x00_0005,
            }, // wrapped
            RawRecord {
                tag: 0,
                time: 0x00_0007,
            },
        ];
        assert_eq!(unwrap_times(&recs), vec![0, 15, 21, 23]);
    }

    #[test]
    fn unwrap_first_event_is_zero() {
        let recs = [RawRecord {
            tag: 1,
            time: 123_456,
        }];
        assert_eq!(unwrap_times(&recs), vec![0]);
    }

    #[test]
    fn checked_unwrap_bridges_one_corrupt_timestamp() {
        let mut u = TimeUnwrapper::new();
        assert_eq!(u.push_checked(100), (0, false));
        assert_eq!(u.push_checked(200), (100, false));
        // Bit 23 flipped: a ~8.4 s leap, clamped and flagged.
        assert_eq!(u.push_checked(300 | (1 << 23)), (100, true));
        // The next clean value lands against the last good reference.
        assert_eq!(u.push_checked(400), (300, false));
    }

    #[test]
    fn checked_unwrap_adopts_base_after_two_jumps() {
        let mut u = TimeUnwrapper::new();
        // The first (reference) value itself was corrupt: the next two
        // clean values both look like jumps against it.
        assert_eq!(u.push_checked(100 | (1 << 23)), (0, false));
        assert_eq!(u.push_checked(200), (0, true));
        assert_eq!(u.push_checked(300), (0, true)); // adopts 300 as base
        assert_eq!(u.push_checked(450), (150, false));
    }

    #[test]
    fn checked_unwrap_still_handles_real_wraps() {
        let mut u = TimeUnwrapper::new();
        assert_eq!(u.push_checked(0xFF_FFF0), (0, false));
        assert_eq!(u.push_checked(0x00_0005), (21, false)); // one wrap
    }

    #[test]
    fn recovering_decode_drops_adjacent_duplicates() {
        let tf = hwprof_tagfile::parse("f/100\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 100, time: 0 }, // stuck counter
            RawRecord { tag: 101, time: 9 },
        ];
        let (_, ev, anoms) = decode_recovering(&recs, &tf);
        assert_eq!(ev.len(), 2);
        assert_eq!(anoms.duplicates, 1);
        assert_eq!(anoms.time_jumps, 0);
        // Non-adjacent repeats are real recursion, never dropped.
        let recs2 = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 101, time: 5 },
            RawRecord { tag: 100, time: 0 },
        ];
        let (_, ev2, anoms2) = decode_recovering(&recs2, &tf);
        assert_eq!(ev2.len(), 3);
        assert_eq!(anoms2.duplicates, 0);
    }

    #[test]
    fn decode_classifies_events() {
        let tf = hwprof_tagfile::parse("f/100\nswtch/200!\nMARK/300=\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 300, time: 5 },
            RawRecord { tag: 101, time: 9 },
            RawRecord { tag: 201, time: 12 },
            RawRecord { tag: 999, time: 20 },
        ];
        let (syms, ev) = decode(&recs, &tf);
        assert!(matches!(ev[0].kind, EvKind::Entry(s) if syms.name(s) == "f"));
        assert!(matches!(ev[1].kind, EvKind::Inline(s) if syms.name(s) == "MARK"));
        assert!(matches!(ev[2].kind, EvKind::Exit(s) if syms.name(s) == "f"));
        assert!(matches!(ev[3].kind, EvKind::Exit(s) if syms.is_cswitch(s)));
        assert!(matches!(ev[4].kind, EvKind::Unknown(999)));
        assert_eq!(ev[3].t, 12);
    }
}
