//! Batch columnar (SoA) record decode — the hot path.
//!
//! The scalar [`SessionDecoder`](crate::events::SessionDecoder) walks
//! records one at a time: a `HashMap` probe per tag, an `Option` branch
//! per timestamp, a bounds-growing push per event.  At fleet scale the
//! pipeline, not the probe, becomes the bottleneck (Metz &
//! Lencevicius), so this module restructures decode into column passes
//! over struct-of-arrays scratch:
//!
//! 1. **times** — the 24-bit counter column is masked in one
//!    elementwise pass;
//! 2. **deltas** — consecutive differences modulo 2^24, a pure
//!    shifted-slice subtraction the compiler autovectorizes;
//! 3. **absolute times** — one branch-free prefix sum over the delta
//!    column;
//! 4. **kinds** — tag classification through a dense 65536-entry table
//!    (one indexed load per event) instead of a hash probe.
//!
//! The recovering path branches **per batch, not per event**: each
//! batch is scanned with branch-free flag accumulation for anything the
//! scalar recovery machine would act on (an adjacent duplicate, a
//! half-window time jump, a held corrupt reference carried in).  Clean
//! batches — the overwhelmingly common case — take the strict columnar
//! path unchanged; a flagged batch falls back to the exact scalar state
//! machine for just those records.  Output is bit-identical to the
//! scalar decoder in both modes (property-pinned by `decode_props`).

use crate::anomaly::Anomalies;
use crate::events::{EvKind, Event, SymId, TimeUnwrapper, TIME_JUMP_THRESHOLD};
use hwprof_profiler::{RawRecord, TIME_MASK};
use hwprof_tagfile::{TagFile, TagKind};

/// Records per recovering-mode batch: large enough that the flag scan
/// amortizes, small enough that one corrupt record only drags one batch
/// onto the scalar path.
const BATCH: usize = 1024;

/// Tag classifications packed into one `u32`: class in the top two
/// bits, symbol id in the low 30 (tag files are bounded by the 16-bit
/// tag space, so 30 bits never truncate).
const CLASS_SHIFT: u32 = 30;
const CLASS_UNKNOWN: u32 = 0;
const CLASS_ENTRY: u32 = 1;
const CLASS_EXIT: u32 = 2;
const CLASS_INLINE: u32 = 3;
const PAYLOAD_MASK: u32 = (1 << CLASS_SHIFT) - 1;

/// The dense tag → meaning table: one slot per possible 16-bit tag, so
/// classification is a single indexed load with no hashing and no
/// branch.  256 KiB, built once per tag file and shared by every
/// decoder (the streaming workers hold it behind an `Arc`).
#[derive(Clone)]
pub struct DenseTagTable {
    table: Box<[u32]>,
}

impl std::fmt::Debug for DenseTagTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseTagTable")
            .field("slots", &self.table.len())
            .finish()
    }
}

impl DenseTagTable {
    /// Builds the table from a tag file.  Entry order matches
    /// [`TagMap`](crate::events::TagMap) exactly (last assignment of a
    /// tag wins), so the two classifiers always agree.
    pub fn from_tagfile(tf: &TagFile) -> Self {
        let mut table = vec![CLASS_UNKNOWN << CLASS_SHIFT; 1 << 16].into_boxed_slice();
        for (i, e) in tf.entries().iter().enumerate() {
            let sym = i as SymId;
            debug_assert!(sym <= PAYLOAD_MASK, "symbol id fits 30 bits");
            match e.kind {
                TagKind::Inline => {
                    table[e.tag as usize] = (CLASS_INLINE << CLASS_SHIFT) | sym;
                }
                TagKind::Function | TagKind::ContextSwitch => {
                    table[e.tag as usize] = (CLASS_ENTRY << CLASS_SHIFT) | sym;
                    table[(e.tag + 1) as usize] = (CLASS_EXIT << CLASS_SHIFT) | sym;
                }
            }
        }
        DenseTagTable { table }
    }

    /// The meaning of one hardware tag (one load, no hash, no branch on
    /// the lookup itself).
    #[inline]
    pub fn classify(&self, tag: u16) -> EvKind {
        let packed = self.table[tag as usize];
        let sym = packed & PAYLOAD_MASK;
        match packed >> CLASS_SHIFT {
            CLASS_ENTRY => EvKind::Entry(sym),
            CLASS_EXIT => EvKind::Exit(sym),
            CLASS_INLINE => EvKind::Inline(sym),
            _ => EvKind::Unknown(tag),
        }
    }
}

/// The columnar session decoder: same contract as the scalar
/// [`SessionDecoder`](crate::events::SessionDecoder) — feed a session's
/// records in arbitrary chunks, get bit-identical events — but decoded
/// in batch column passes.  [`reset`](ColumnarDecoder::reset) starts
/// the next session while keeping the scratch columns' capacity, so a
/// long-lived decoder (one per streaming worker) stops touching the
/// allocator entirely once warm.
#[derive(Debug, Clone)]
pub struct ColumnarDecoder<'a> {
    table: &'a DenseTagTable,
    unwrapper: TimeUnwrapper,
    /// Last raw record seen (recovering-mode duplicate reference).
    last: Option<(u16, u32)>,
    anoms: Anomalies,
    /// SoA scratch, reused across chunks and sessions.
    times32: Vec<u32>,
    deltas: Vec<u32>,
}

impl<'a> ColumnarDecoder<'a> {
    /// Starts a fresh session against a prebuilt dense table.
    pub fn new(table: &'a DenseTagTable) -> Self {
        ColumnarDecoder {
            table,
            unwrapper: TimeUnwrapper::new(),
            last: None,
            anoms: Anomalies::default(),
            times32: Vec::new(),
            deltas: Vec::new(),
        }
    }

    /// Starts the next session: clears every per-session state
    /// (time origin, duplicate reference, anomaly counters) while
    /// keeping the scratch columns' capacity.
    pub fn reset(&mut self) {
        self.unwrapper = TimeUnwrapper::new();
        self.last = None;
        self.anoms = Anomalies::default();
    }

    /// Anomalies flagged by recovering-mode decode since the last
    /// [`reset`](ColumnarDecoder::reset).
    pub fn anomalies(&self) -> Anomalies {
        self.anoms
    }

    /// Fills the delta column for `records`: `deltas[i]` is the 24-bit
    /// wrapped difference between record `i` and its predecessor (the
    /// decoder's carried reference for the first record).  Both loops
    /// are elementwise over parallel arrays — no branches, no carried
    /// scalar state — which is what lets the compiler vectorize them.
    fn fill_deltas(&mut self, records: &[RawRecord]) {
        let n = records.len();
        self.times32.clear();
        self.times32
            .extend(records.iter().map(|r| r.time & TIME_MASK));
        self.deltas.clear();
        self.deltas.resize(n, 0);
        let prev0 = self.unwrapper.prev_raw().unwrap_or(self.times32[0]);
        self.deltas[0] = self.times32[0].wrapping_sub(prev0) & TIME_MASK;
        for i in 1..n {
            self.deltas[i] = self.times32[i].wrapping_sub(self.times32[i - 1]) & TIME_MASK;
        }
    }

    /// Strict columnar decode of the next chunk, appending to `out`.
    /// Bit-identical to feeding each record through the scalar
    /// [`SessionDecoder::push`](crate::events::SessionDecoder::push).
    pub fn extend(&mut self, records: &[RawRecord], out: &mut Vec<Event>) {
        if records.is_empty() {
            return;
        }
        self.fill_deltas(records);
        self.emit_clean(records, out);
    }

    /// Emits one clean chunk: prefix-sums the delta column into
    /// absolute times and zips with dense-table kinds.  The caller has
    /// already filled [`fill_deltas`](Self::fill_deltas) for `records`.
    fn emit_clean(&mut self, records: &[RawRecord], out: &mut Vec<Event>) {
        let mut abs = self.unwrapper.abs();
        out.reserve(records.len());
        for (r, &d) in records.iter().zip(&self.deltas) {
            abs += u64::from(d);
            out.push(Event {
                t: abs,
                kind: self.table.classify(r.tag),
            });
        }
        let last = records[records.len() - 1];
        self.unwrapper.advance_batch(abs, last.time & TIME_MASK);
        self.last = Some((last.tag, last.time));
    }

    /// Recovering columnar decode of the next chunk, appending
    /// surviving events to `out`.  Bit-identical to the scalar
    /// [`SessionDecoder::push_recovering`] loop, but the branch is
    /// taken per *batch*: a branch-free flag scan decides whether the
    /// scalar recovery machine is needed at all, and clean batches ride
    /// the strict columnar path.
    ///
    /// [`SessionDecoder::push_recovering`]:
    ///     crate::events::SessionDecoder::push_recovering
    pub fn extend_recovering(&mut self, records: &[RawRecord], out: &mut Vec<Event>) {
        for batch in records.chunks(BATCH) {
            // A held reference means the previous batch ended on a
            // suspected-corrupt timestamp: the very next record takes
            // the two-jump adoption branch, so the whole batch goes to
            // the exact scalar machine.
            if self.unwrapper.is_held() || self.scan_flags(batch) {
                self.fallback_scalar(batch, out);
            } else {
                self.emit_clean(batch, out);
            }
        }
    }

    /// Branch-free scan of one batch for anything the recovery machine
    /// would act on: an adjacent duplicate record (same tag and raw
    /// time as its predecessor, including the carried one) or a time
    /// delta at or past [`TIME_JUMP_THRESHOLD`].  Flags accumulate
    /// with bitwise OR over the columns; the single branch is on the
    /// final accumulated word.
    ///
    /// Exactness: duplicates compare adjacent raw records, which
    /// mirrors the scalar `last` reference (dropped duplicates leave
    /// `last` unchanged at the same value).  For jumps, as long as the
    /// prefix of the batch is clean the pairwise delta *is* the
    /// unwrapper's delta-from-reference, so the first anomaly in scalar
    /// order always raises a flag here; conversely a clean scalar pass
    /// keeps the reference at the predecessor, making the columns
    /// match.  Fills the delta column as a side effect, so a clean
    /// verdict flows straight into [`emit_clean`](Self::emit_clean).
    fn scan_flags(&mut self, batch: &[RawRecord]) -> bool {
        self.fill_deltas(batch);
        let mut jump = 0u32;
        for &d in &self.deltas {
            jump |= u32::from(d >= TIME_JUMP_THRESHOLD);
        }
        let mut dup = 0u32;
        if let Some((tag, time)) = self.last {
            dup |= u32::from(batch[0].tag == tag && batch[0].time == time);
        }
        for w in batch.windows(2) {
            dup |= u32::from(w[1].tag == w[0].tag && w[1].time == w[0].time);
        }
        (jump | dup) != 0
    }

    /// The exact scalar recovery machine for one flagged batch: the
    /// same duplicate-drop and [`TimeUnwrapper::push_checked`] clamp
    /// the scalar decoder applies, against the dense table.
    fn fallback_scalar(&mut self, batch: &[RawRecord], out: &mut Vec<Event>) {
        out.reserve(batch.len());
        for r in batch {
            if self.last == Some((r.tag, r.time)) {
                self.anoms.duplicates += 1;
                continue;
            }
            self.last = Some((r.tag, r.time));
            let (t, jumped) = self.unwrapper.push_checked(r.time);
            if jumped {
                self.anoms.time_jumps += 1;
            }
            out.push(Event {
                t,
                kind: self.table.classify(r.tag),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{SessionDecoder, TagMap};

    fn tagfile() -> TagFile {
        hwprof_tagfile::parse("a/100\nb/102\nswtch/200!\nMARK/300=\n").expect("static")
    }

    fn rec(tag: u16, time: u32) -> RawRecord {
        RawRecord { tag, time }
    }

    #[test]
    fn dense_table_agrees_with_tagmap_everywhere() {
        let tf = tagfile();
        let dense = DenseTagTable::from_tagfile(&tf);
        let map = TagMap::from_tagfile(&tf);
        for tag in 0..=u16::MAX {
            assert_eq!(dense.classify(tag), map.classify(tag), "tag {tag}");
        }
    }

    #[test]
    fn columnar_strict_matches_scalar_across_chunks() {
        let tf = tagfile();
        let recs: Vec<RawRecord> = vec![
            rec(100, 0xFF_FFF0),
            rec(300, 0xFF_FFFF),
            rec(101, 0x00_0005), // wrap
            rec(200, 0x00_0010),
            rec(201, 0x00_0030),
            rec(999, 0x00_0031),
        ];
        let map = TagMap::from_tagfile(&tf);
        let mut scalar = SessionDecoder::new(&map);
        let mut want = Vec::new();
        scalar.extend(&recs, &mut want);
        let dense = DenseTagTable::from_tagfile(&tf);
        for split in 0..=recs.len() {
            let mut d = ColumnarDecoder::new(&dense);
            let mut got = Vec::new();
            d.extend(&recs[..split], &mut got);
            d.extend(&recs[split..], &mut got);
            assert_eq!(got, want, "split {split}");
        }
    }

    #[test]
    fn columnar_recovering_matches_scalar_on_faulty_stream() {
        let tf = tagfile();
        let recs: Vec<RawRecord> = vec![
            rec(100, 10),
            rec(100, 10), // stuck counter
            rec(102, 20),
            rec(103, 20 | (1 << 23)), // flipped high time bit
            rec(101, 40),
            rec(999, 45),
        ];
        let map = TagMap::from_tagfile(&tf);
        let mut scalar = SessionDecoder::new(&map);
        let mut want = Vec::new();
        scalar.extend_recovering(&recs, &mut want);
        let dense = DenseTagTable::from_tagfile(&tf);
        let mut d = ColumnarDecoder::new(&dense);
        let mut got = Vec::new();
        d.extend_recovering(&recs, &mut got);
        assert_eq!(got, want);
        assert_eq!(d.anomalies(), scalar.anomalies());
        assert_eq!(d.anomalies().duplicates, 1);
        assert_eq!(d.anomalies().time_jumps, 1);
    }

    #[test]
    fn reset_reuses_scratch_for_the_next_session() {
        let tf = tagfile();
        let dense = DenseTagTable::from_tagfile(&tf);
        let mut d = ColumnarDecoder::new(&dense);
        let mut out = Vec::new();
        d.extend(&[rec(100, 500), rec(101, 600)], &mut out);
        assert_eq!(out[1].t, 100);
        d.reset();
        out.clear();
        // A fresh session: the time origin restarts at zero.
        d.extend(&[rec(100, 900), rec(101, 950)], &mut out);
        assert_eq!(out[0].t, 0);
        assert_eq!(out[1].t, 50);
        assert!(d.anomalies().is_clean());
    }
}
