//! The streaming analysis pipeline: capture banks drained off the
//! board while it stays armed are decoded and reconstructed on worker
//! threads, concurrently with the run that produces them.
//!
//! The paper carried one battery-backed RAM at a time to the UNIX
//! host; HMTT-style hybrid tracing shows the capture stream must be
//! drained and processed online to scale past the RAM.  The pipeline
//! here is exact, not approximate: each bank is one capture session,
//! sessions are reconstructed in isolation
//! ([`crate::recon::reconstruct_session`]) and merged in bank order
//! with the [`crate::Reconstruction`] monoid, so the result is
//! bit-identical to batch [`crate::analyze_sessions`] over the same
//! banks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use hwprof_profiler::{BankSink, RawRecord, RecordError};
use hwprof_tagfile::TagFile;

use crate::events::{SessionDecoder, Symbols, TagMap};
use crate::recon::{reconstruct_session, Reconstruction};

/// An indexed bank in flight between the feed and a worker.
type QueuedBank = (usize, Vec<RawRecord>);

/// Incremental 5-byte record decode: accepts the upload byte stream in
/// arbitrary chunks, carrying partial records across chunk boundaries.
///
/// Feeding any chunking of a byte stream yields exactly
/// [`hwprof_profiler::parse_raw`] of the whole stream.
#[derive(Debug, Default)]
pub struct RecordStream {
    pending: Vec<u8>,
}

impl RecordStream {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next chunk of upload bytes, appending every completed
    /// 5-byte record to `out`.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<RawRecord>) {
        self.pending.extend_from_slice(bytes);
        let complete = self.pending.len() - self.pending.len() % 5;
        for c in self.pending[..complete].chunks_exact(5) {
            out.push(RawRecord {
                tag: u16::from_le_bytes([c[0], c[1]]),
                time: u32::from_le_bytes([c[2], c[3], c[4], 0]),
            });
        }
        self.pending.drain(..complete);
    }

    /// Ends the stream: trailing bytes that never completed a record
    /// are a truncated upload.
    pub fn finish(self) -> Result<(), RecordError> {
        if self.pending.is_empty() {
            Ok(())
        } else {
            Err(RecordError::TruncatedStream {
                len: self.pending.len(),
            })
        }
    }
}

/// Banks the feed queues ahead of the workers before refusing more.
///
/// A bank is at most half the board RAM (64 K events × 8 bytes on the
/// wide board), so the default backlog bounds pipeline memory around
/// 64 MiB while riding out analysis hiccups far longer than a real
/// operator swapping RAMs could.
pub const DEFAULT_BACKLOG: usize = 256;

/// The board-facing end of the pipeline: assigns bank indices (bank
/// order is session order) and queues banks for the workers.
pub struct BankFeed {
    next: usize,
    tx: SyncSender<QueuedBank>,
    queued: Arc<AtomicUsize>,
}

impl BankSink for BankFeed {
    fn bank(&mut self, records: Vec<RawRecord>) -> bool {
        match self.tx.try_send((self.next, records)) {
            Ok(()) => {
                self.next += 1;
                self.queued.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

/// The analysis end of the pipeline: worker threads drain queued banks,
/// decode each as one capture session and reconstruct it; [`finish`]
/// merges the per-bank results in bank order.
///
/// [`finish`]: StreamAnalyzer::finish
pub struct StreamAnalyzer {
    tx: Option<SyncSender<QueuedBank>>,
    workers: Vec<JoinHandle<Vec<(usize, Reconstruction)>>>,
    syms: Symbols,
    queued: Arc<AtomicUsize>,
}

impl StreamAnalyzer {
    /// Spawns `workers` analysis threads against the build's tag file,
    /// with the default bank backlog.
    pub fn new(tf: &TagFile, workers: usize) -> Self {
        Self::with_backlog(tf, workers, DEFAULT_BACKLOG)
    }

    /// Spawns `workers` analysis threads; at most `backlog` banks wait
    /// in the queue before the feed refuses (and the board overflows).
    pub fn with_backlog(tf: &TagFile, workers: usize, backlog: usize) -> Self {
        let map = Arc::new(TagMap::from_tagfile(tf));
        let syms = Symbols::from_tagfile(tf);
        let (tx, rx) = std::sync::mpsc::sync_channel(backlog.max(1));
        let rx: Arc<Mutex<Receiver<QueuedBank>>> = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));
        let workers = (0..workers.max(1))
            .map(|w| {
                let rx = Arc::clone(&rx);
                let map = Arc::clone(&map);
                let syms = syms.clone();
                let queued = Arc::clone(&queued);
                std::thread::Builder::new()
                    .name(format!("hwprof-analyze-{w}"))
                    .spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            // Hold the receiver lock only to claim the
                            // next bank, never while analyzing it.
                            let claimed = {
                                let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                                rx.recv()
                            };
                            let Ok((idx, bank)) = claimed else {
                                break;
                            };
                            queued.fetch_sub(1, Ordering::Relaxed);
                            let mut decoder = SessionDecoder::new(&map);
                            let mut events = Vec::new();
                            decoder.extend(&bank, &mut events);
                            done.push((idx, reconstruct_session(&syms, &events)));
                        }
                        done
                    })
                    .expect("spawning an analysis worker thread")
            })
            .collect();
        StreamAnalyzer {
            tx: Some(tx),
            workers,
            syms,
            queued,
        }
    }

    /// The feed to hand the board (its drain sink).  Bank order through
    /// one feed defines session order; use a single feed per capture.
    pub fn feed(&self) -> BankFeed {
        let tx = self.tx.as_ref().expect("feed() before finish()").clone();
        BankFeed {
            next: 0,
            tx,
            queued: Arc::clone(&self.queued),
        }
    }

    /// Banks queued and not yet claimed by a worker (backpressure
    /// observability).
    pub fn backlog(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Closes the feed, waits for the workers to drain the queue, and
    /// merges the per-bank reconstructions in bank order.
    pub fn finish(mut self) -> Reconstruction {
        drop(self.tx.take());
        let mut parts: Vec<(usize, Reconstruction)> = Vec::new();
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(done) => parts.extend(done),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        parts.sort_by_key(|(i, _)| *i);
        let mut out = Reconstruction::empty(self.syms.clone());
        out.trace
            .reserve(parts.iter().map(|(_, r)| r.trace.len()).sum());
        for (_, r) in parts {
            out.merge(r);
        }
        out
    }
}
