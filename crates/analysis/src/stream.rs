//! The streaming analysis pipeline: capture banks drained off the
//! board while it stays armed are decoded and reconstructed on worker
//! threads, concurrently with the run that produces them.
//!
//! The paper carried one battery-backed RAM at a time to the UNIX
//! host; HMTT-style hybrid tracing shows the capture stream must be
//! drained and processed online to scale past the RAM.  The pipeline
//! here is exact, not approximate: each bank is one capture session,
//! sessions are reconstructed in isolation
//! ([`crate::recon::reconstruct_session`]) and merged in bank order
//! with the [`crate::Reconstruction`] monoid, so the result is
//! bit-identical to a batch [`crate::Analyzer::sessions`] pass over the same
//! banks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use hwprof_profiler::{BankSink, RawRecord, RecordError};
use hwprof_tagfile::TagFile;
use hwprof_telemetry::{Counter, Gauge, Registry, SpanLog, SpanName, SpanTrack};

use crate::anomaly::Anomalies;
use crate::columnar::{ColumnarDecoder, DenseTagTable};
use crate::events::{Event, Symbols};
use crate::recon::{Reconstruction, SessionRecon};

/// The pipeline was already closed: [`StreamAnalyzer::feed`] or
/// [`StreamAnalyzer::finish`] was called after `finish` consumed the
/// feed.  A library error, never a panic (the analyzer runs inside the
/// capture path where aborting loses the whole session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineClosed;

impl std::fmt::Display for PipelineClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "streaming pipeline already closed by finish()")
    }
}

impl std::error::Error for PipelineClosed {}

/// An indexed bank in flight between the feed and a worker.
type QueuedBank = (usize, Vec<RawRecord>);

/// Live pipeline telemetry, shared by the feed and the workers.
///
/// Opt-in ([`StreamAnalyzer::set_telemetry`]) and touched once per
/// *bank*, never per event, so the hot decode loop is unaffected.
#[derive(Clone)]
struct StreamMetrics {
    /// `stream.banks`: banks claimed and analyzed by workers.
    banks: Counter,
    /// `stream.events`: events decoded across all banks.
    events: Counter,
    /// `stream.queue_depth`: banks queued and not yet claimed.
    queue_depth: Gauge,
    /// `stream.anomalies.<class>`: classified anomalies, summed per
    /// bank — field-for-field the same values the merged
    /// [`Reconstruction::anomalies`] accumulates.
    orphan_exits: Counter,
    unmatched_entries: Counter,
    unknown_tags: Counter,
    time_jumps: Counter,
    duplicates: Counter,
    truncations: Counter,
}

impl StreamMetrics {
    fn new(reg: &Registry) -> Self {
        StreamMetrics {
            banks: reg.counter("stream.banks"),
            events: reg.counter("stream.events"),
            queue_depth: reg.gauge("stream.queue_depth"),
            orphan_exits: reg.counter("stream.anomalies.orphan_exits"),
            unmatched_entries: reg.counter("stream.anomalies.unmatched_entries"),
            unknown_tags: reg.counter("stream.anomalies.unknown_tags"),
            time_jumps: reg.counter("stream.anomalies.time_jumps"),
            duplicates: reg.counter("stream.anomalies.duplicates"),
            truncations: reg.counter("stream.anomalies.truncations"),
        }
    }

    fn note_bank(&self, events: u64, a: &Anomalies) {
        self.banks.inc();
        self.events.add(events);
        self.orphan_exits.add(a.orphan_exits);
        self.unmatched_entries.add(a.unmatched_entries);
        self.unknown_tags.add(a.unknown_tags);
        self.time_jumps.add(a.time_jumps);
        self.duplicates.add(a.duplicates);
        self.truncations.add(a.truncations);
    }
}

/// The late-bound telemetry slot: `set_telemetry` fills it after the
/// workers are already parked on the queue, so they re-read it per
/// bank (one mutex lock per bank, nothing per event).
type MetricsSlot = Arc<Mutex<Option<StreamMetrics>>>;

/// The late-bound span journal slot, same shape as [`MetricsSlot`]:
/// workers re-read it once per bank and record one analyze span per
/// bank, never anything per event.
type JournalSlot = Arc<Mutex<Option<SpanLog>>>;

/// Incremental 5-byte record decode: accepts the upload byte stream in
/// arbitrary chunks, carrying partial records across chunk boundaries.
///
/// Feeding any chunking of a byte stream yields exactly
/// [`hwprof_profiler::parse_raw`] of the whole stream.
#[derive(Debug, Default)]
pub struct RecordStream {
    pending: Vec<u8>,
}

impl RecordStream {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next chunk of upload bytes, appending every completed
    /// 5-byte record to `out`.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<RawRecord>) {
        self.pending.extend_from_slice(bytes);
        let complete = self.pending.len() - self.pending.len() % 5;
        for c in self.pending[..complete].chunks_exact(5) {
            out.push(RawRecord {
                tag: u16::from_le_bytes([c[0], c[1]]),
                time: u32::from_le_bytes([c[2], c[3], c[4], 0]),
            });
        }
        self.pending.drain(..complete);
    }

    /// Ends the stream: trailing bytes that never completed a record
    /// are a truncated upload.
    pub fn finish(self) -> Result<(), RecordError> {
        if self.pending.is_empty() {
            Ok(())
        } else {
            Err(RecordError::TruncatedStream {
                len: self.pending.len(),
            })
        }
    }

    /// Ends the stream tolerantly, returning how many trailing bytes
    /// never completed a record (0 for a clean upload, 1-4 for one cut
    /// mid-record — a truncation anomaly, not an error).
    pub fn finish_lossy(self) -> usize {
        self.pending.len()
    }
}

/// Banks the feed queues ahead of the workers before refusing more.
///
/// A bank is at most half the board RAM (64 K events × 8 bytes on the
/// wide board), so the default backlog bounds pipeline memory around
/// 64 MiB while riding out analysis hiccups far longer than a real
/// operator swapping RAMs could.
pub const DEFAULT_BACKLOG: usize = 256;

/// The board-facing end of the pipeline: assigns bank indices (bank
/// order is session order) and queues banks for the workers.
pub struct BankFeed {
    next: usize,
    tx: SyncSender<QueuedBank>,
    queued: Arc<AtomicUsize>,
    metrics: MetricsSlot,
}

impl std::fmt::Debug for BankFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankFeed")
            .field("next", &self.next)
            .finish()
    }
}

impl BankSink for BankFeed {
    fn bank(&mut self, records: Vec<RawRecord>) -> bool {
        match self.tx.try_send((self.next, records)) {
            Ok(()) => {
                self.next += 1;
                self.queued.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &*self.metrics.lock().unwrap_or_else(|e| e.into_inner()) {
                    // A worker may have claimed (and decremented) this
                    // bank already, briefly wrapping the counter below
                    // zero; clamp the gauge rather than racing it.
                    m.queue_depth
                        .set((self.queued.load(Ordering::Relaxed) as isize).max(0) as u64);
                }
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

/// The analysis end of the pipeline: worker threads drain queued banks,
/// decode each as one capture session and reconstruct it; [`finish`]
/// merges the per-bank results in bank order.
///
/// [`finish`]: StreamAnalyzer::finish
pub struct StreamAnalyzer {
    tx: Option<SyncSender<QueuedBank>>,
    workers: Vec<JoinHandle<Vec<(usize, Reconstruction)>>>,
    syms: Symbols,
    queued: Arc<AtomicUsize>,
    metrics: MetricsSlot,
    journal: JournalSlot,
}

/// How a [`StreamAnalyzer`] treats malformed banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Clean decode + strict reconstruction (bit-identical to a batch
    /// [`crate::Analyzer::sessions`] pass).
    Strict,
    /// Recovery decode + resynchronizing reconstruction, anomalies
    /// classified per bank (bit-identical to batch recovery analysis
    /// over the same banks).
    Recovering,
}

impl StreamAnalyzer {
    /// Spawns `workers` analysis threads against the build's tag file,
    /// with the default bank backlog.
    pub fn new(tf: &TagFile, workers: usize) -> Self {
        Self::with_mode(tf, workers, DEFAULT_BACKLOG, Mode::Strict)
    }

    /// Spawns `workers` analysis threads in recovery mode: banks decode
    /// tolerantly ([`SessionDecoder::push_recovering`]) and reconstruct
    /// with resynchronization
    /// ([`crate::recon::reconstruct_session_recovering`]), so corrupted
    /// banks still yield times plus a classified
    /// [`crate::Anomalies`] account.
    pub fn recovering(tf: &TagFile, workers: usize) -> Self {
        Self::with_mode(tf, workers, DEFAULT_BACKLOG, Mode::Recovering)
    }

    /// Spawns `workers` analysis threads; at most `backlog` banks wait
    /// in the queue before the feed refuses (and the board overflows).
    pub fn with_backlog(tf: &TagFile, workers: usize, backlog: usize) -> Self {
        Self::with_mode(tf, workers, backlog, Mode::Strict)
    }

    fn with_mode(tf: &TagFile, workers: usize, backlog: usize, mode: Mode) -> Self {
        let table = Arc::new(DenseTagTable::from_tagfile(tf));
        let syms = Symbols::from_tagfile(tf);
        let (tx, rx) = std::sync::mpsc::sync_channel(backlog.max(1));
        let rx: Arc<Mutex<Receiver<QueuedBank>>> = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));
        let metrics: MetricsSlot = Arc::new(Mutex::new(None));
        let journal: JournalSlot = Arc::new(Mutex::new(None));
        let workers = (0..workers.max(1))
            .map(|w| {
                let rx = Arc::clone(&rx);
                let table = Arc::clone(&table);
                let syms = syms.clone();
                let queued = Arc::clone(&queued);
                let metrics = Arc::clone(&metrics);
                let journal = Arc::clone(&journal);
                std::thread::Builder::new()
                    .name(format!("hwprof-analyze-{w}"))
                    .spawn(move || {
                        let mut done = Vec::new();
                        // Worker-lifetime hot-path state: the columnar
                        // decoder's scratch columns, the event buffer
                        // and the reconstructor's frame pool all
                        // persist across banks — steady state decodes
                        // and reconstructs without touching the
                        // allocator (only the per-bank result vectors
                        // grow).
                        let mut decoder = ColumnarDecoder::new(&table);
                        let mut recon = SessionRecon::new(&syms, matches!(mode, Mode::Recovering));
                        let mut events: Vec<Event> = Vec::new();
                        loop {
                            // Hold the receiver lock only to claim the
                            // next bank, never while analyzing it.
                            let claimed = {
                                let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                                rx.recv()
                            };
                            let Ok((idx, bank)) = claimed else {
                                break;
                            };
                            queued.fetch_sub(1, Ordering::Relaxed);
                            let live = metrics.lock().unwrap_or_else(|e| e.into_inner()).clone();
                            if let Some(m) = &live {
                                m.queue_depth
                                    .set((queued.load(Ordering::Relaxed) as isize).max(0) as u64);
                            }
                            decoder.reset();
                            events.clear();
                            let mut r = Reconstruction::empty(syms.clone());
                            match mode {
                                Mode::Strict => {
                                    decoder.extend(&bank, &mut events);
                                    recon.session_into(&events, &mut r);
                                }
                                Mode::Recovering => {
                                    decoder.extend_recovering(&bank, &mut events);
                                    recon.session_into(&events, &mut r);
                                    r.note(&decoder.anomalies());
                                }
                            }
                            if let Some(m) = &live {
                                m.note_bank(events.len() as u64, &r.anomalies);
                            }
                            let log = journal.lock().unwrap_or_else(|e| e.into_inner()).clone();
                            if let Some(log) = &log {
                                // One analyze span per bank, spanning the
                                // bank's (session-relative) event times; the
                                // exporter rebases it onto the supervised
                                // timeline by session index.
                                let first = events.first().map_or(0, |e| e.t);
                                let last = events.last().map_or(first, |e| e.t);
                                let n = events.len() as u64;
                                log.begin(
                                    SpanTrack::Analyzer,
                                    SpanName::Analyze,
                                    first,
                                    idx as u64,
                                    n,
                                );
                                log.end(
                                    SpanTrack::Analyzer,
                                    SpanName::Analyze,
                                    last,
                                    idx as u64,
                                    n,
                                );
                            }
                            done.push((idx, r));
                        }
                        done
                    })
                    .expect("spawning an analysis worker thread")
            })
            .collect();
        StreamAnalyzer {
            tx: Some(tx),
            workers,
            syms,
            queued,
            metrics,
            journal,
        }
    }

    /// Registers the pipeline's telemetry (`stream.banks`,
    /// `stream.events`, `stream.queue_depth`, and per-class
    /// `stream.anomalies.*`) in `reg`.  Call before handing out a
    /// [`feed`](StreamAnalyzer::feed); banks analyzed earlier are not
    /// retroactively counted.  The workers read the slot once per bank,
    /// so disabled telemetry costs nothing on the decode path.
    pub fn set_telemetry(&self, reg: &Registry) {
        *self.metrics.lock().unwrap_or_else(|e| e.into_inner()) = Some(StreamMetrics::new(reg));
    }

    /// Attaches a span journal: each analyzed bank records one
    /// `analyze` begin/end pair on the analyzer track (`id` = bank
    /// index, `arg` = decoded event count, times = the bank's first and
    /// last event times).  Same late-binding contract as
    /// [`set_telemetry`](StreamAnalyzer::set_telemetry): one lock per
    /// bank, nothing on the decode path, banks analyzed earlier are not
    /// retroactively recorded.
    pub fn set_span_log(&self, log: &SpanLog) {
        *self.journal.lock().unwrap_or_else(|e| e.into_inner()) = Some(log.clone());
    }

    /// The feed to hand the board (its drain sink).  Bank order through
    /// one feed defines session order; use a single feed per capture.
    ///
    /// Errors (never panics) if the pipeline was already closed by
    /// [`finish`].
    ///
    /// [`finish`]: StreamAnalyzer::finish
    pub fn feed(&self) -> Result<BankFeed, PipelineClosed> {
        let tx = self.tx.as_ref().ok_or(PipelineClosed)?.clone();
        Ok(BankFeed {
            next: 0,
            tx,
            queued: Arc::clone(&self.queued),
            metrics: Arc::clone(&self.metrics),
        })
    }

    /// Banks queued and not yet claimed by a worker (backpressure
    /// observability).
    pub fn backlog(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Closes the feed, waits for the workers to drain the queue, and
    /// merges the per-bank reconstructions in bank order.
    ///
    /// Errors (never panics) if called a second time: the workers are
    /// gone and the first call already returned the result.
    pub fn finish(&mut self) -> Result<Reconstruction, PipelineClosed> {
        if self.tx.is_none() {
            return Err(PipelineClosed);
        }
        drop(self.tx.take());
        let mut parts: Vec<(usize, Reconstruction)> = Vec::new();
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(done) => parts.extend(done),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        // The queue is drained; settle the gauge (workers' last writes
        // race each other, so the final value is set here, not there).
        if let Some(m) = &*self.metrics.lock().unwrap_or_else(|e| e.into_inner()) {
            m.queue_depth.set(0);
        }
        parts.sort_by_key(|(i, _)| *i);
        let mut out = Reconstruction::empty(self.syms.clone());
        out.trace
            .reserve(parts.iter().map(|(_, r)| r.trace.len()).sum());
        for (_, r) in parts {
            out.merge(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagfile() -> TagFile {
        hwprof_tagfile::parse("a/100\nb/102\n").unwrap()
    }

    /// Regression: using the pipeline after `finish()` must be a
    /// library error, never the old `expect("feed() before finish()")`
    /// panic.
    #[test]
    fn pipeline_use_after_finish_is_an_error_not_a_panic() {
        let mut analyzer = StreamAnalyzer::new(&tagfile(), 2);
        let mut feed = analyzer.feed().expect("open pipeline hands out feeds");
        assert!(feed.bank(vec![
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 101, time: 9 },
        ]));
        drop(feed);
        let r = analyzer.finish().expect("first finish yields the result");
        assert_eq!(r.agg("a").unwrap().calls, 1);
        assert_eq!(analyzer.feed().unwrap_err(), PipelineClosed);
        assert_eq!(analyzer.finish().unwrap_err(), PipelineClosed);
        // Still closed on the third try; no state corruption.
        assert_eq!(analyzer.feed().unwrap_err(), PipelineClosed);
    }

    /// Recovery-mode streaming classifies anomalies per bank and merges
    /// them through the monoid.
    #[test]
    fn recovering_pipeline_counts_anomalies() {
        let mut analyzer = StreamAnalyzer::recovering(&tagfile(), 2);
        let mut feed = analyzer.feed().expect("open");
        // Bank 0: a clean pair plus a stuck-counter duplicate.
        assert!(feed.bank(vec![
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 101, time: 9 },
        ]));
        // Bank 1: a spurious garbage tag.
        assert!(feed.bank(vec![
            RawRecord { tag: 100, time: 20 },
            RawRecord {
                tag: 0x9999,
                time: 25
            },
            RawRecord { tag: 101, time: 30 },
        ]));
        drop(feed);
        let r = analyzer.finish().expect("first finish");
        assert_eq!(r.agg("a").unwrap().calls, 2);
        assert_eq!(r.anomalies.duplicates, 1);
        assert_eq!(r.anomalies.unknown_tags, 1);
        assert_eq!(r.sessions, 2);
    }

    /// Pipeline telemetry agrees exactly with the merged result: one
    /// count per bank, `stream.events` == `Reconstruction::tags`, and
    /// every `stream.anomalies.*` class matches the merged
    /// [`crate::Anomalies`] field for field.
    #[test]
    fn stream_telemetry_matches_merged_result() {
        let reg = Registry::new();
        let mut analyzer = StreamAnalyzer::recovering(&tagfile(), 2);
        analyzer.set_telemetry(&reg);
        let mut feed = analyzer.feed().expect("open");
        assert!(feed.bank(vec![
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 101, time: 9 },
        ]));
        assert!(feed.bank(vec![
            RawRecord { tag: 100, time: 20 },
            RawRecord {
                tag: 0x9999,
                time: 25
            },
            RawRecord { tag: 101, time: 30 },
        ]));
        drop(feed);
        let r = analyzer.finish().expect("first finish");
        let snap = reg.snapshot();
        assert_eq!(snap.value("stream.banks"), Some(2));
        assert_eq!(snap.value("stream.events"), Some(r.tags as u64));
        assert_eq!(snap.value("stream.queue_depth"), Some(0));
        for (name, ledger) in [
            ("stream.anomalies.orphan_exits", r.anomalies.orphan_exits),
            (
                "stream.anomalies.unmatched_entries",
                r.anomalies.unmatched_entries,
            ),
            ("stream.anomalies.unknown_tags", r.anomalies.unknown_tags),
            ("stream.anomalies.time_jumps", r.anomalies.time_jumps),
            ("stream.anomalies.duplicates", r.anomalies.duplicates),
            ("stream.anomalies.truncations", r.anomalies.truncations),
        ] {
            assert_eq!(snap.value(name), Some(ledger), "{name}");
        }
        assert_eq!(r.anomalies.duplicates, 1);
        assert_eq!(r.anomalies.unknown_tags, 1);
    }

    #[test]
    fn record_stream_finish_lossy_reports_trailing() {
        let mut rs = RecordStream::new();
        let mut out = Vec::new();
        rs.push(&[1, 2, 3, 4, 5, 6, 7], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(rs.finish_lossy(), 2);
        let rs2 = RecordStream::new();
        assert_eq!(rs2.finish_lossy(), 0);
    }
}
