//! Call-graph export (future work: "graphically representing the code
//! path").

use crate::recon::Reconstruction;

/// Renders the reconstructed call graph as Graphviz dot, edges labelled
/// with call counts, nodes with net µs.
pub fn to_dot(r: &Reconstruction) -> String {
    let mut out = String::from("digraph kernel {\n  rankdir=LR;\n  node [shape=box];\n");
    for s in 0..r.stats.len() {
        let a = r.stats[s];
        if a.calls == 0 {
            continue;
        }
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\\n{} us net / {} calls\"];\n",
            r.syms.name(s as u32),
            r.syms.name(s as u32),
            a.net,
            a.calls
        ));
    }
    let mut edges: Vec<(&(u32, u32), &u64)> = r.edges.iter().collect();
    edges.sort();
    for (&(from, to), &count) in edges {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            r.syms.name(from),
            r.syms.name(to),
            count
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::events::decode;
    fn analyze(syms: &crate::Symbols, events: &[crate::Event]) -> crate::Reconstruction {
        crate::Analyzer::new(syms).session(events).expect("ungated")
    }
    use hwprof_profiler::RawRecord;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let tf = hwprof_tagfile::parse("outer/100\ninner/102\n").unwrap();
        let recs = [
            RawRecord { tag: 100, time: 0 },
            RawRecord { tag: 102, time: 5 },
            RawRecord { tag: 103, time: 9 },
            RawRecord { tag: 101, time: 20 },
        ];
        let (syms, ev) = decode(&recs, &tf);
        let r = analyze(&syms, &ev);
        let dot = super::to_dot(&r);
        assert!(dot.contains("\"outer\" -> \"inner\" [label=\"1\"]"));
        assert!(dot.starts_with("digraph kernel {"));
        assert!(dot.ends_with("}\n"));
    }
}
