//! Subsystem groupings (future work: "groupings of functions into
//! separate subsystems").

use crate::recon::Reconstruction;

/// Aggregate for one subsystem group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupAgg {
    /// Group label.
    pub name: String,
    /// Total calls.
    pub calls: u64,
    /// Total net µs.
    pub net: u64,
    /// Functions contributing.
    pub functions: usize,
}

/// Groups per-function net time by `grouper` (function name -> group
/// label), sorted by net time descending.
pub fn group_summary(r: &Reconstruction, grouper: impl Fn(&str) -> String) -> Vec<GroupAgg> {
    let mut map: std::collections::BTreeMap<String, GroupAgg> = Default::default();
    for s in 0..r.stats.len() {
        let a = r.stats[s];
        if a.calls == 0 {
            continue;
        }
        let g = grouper(r.syms.name(s as u32));
        let e = map.entry(g.clone()).or_default();
        e.name = g;
        e.calls += a.calls;
        e.net += a.net;
        e.functions += 1;
    }
    let mut out: Vec<GroupAgg> = map.into_values().collect();
    out.sort_by_key(|g| std::cmp::Reverse(g.net));
    out
}

/// A grouper for the 386BSD symbol names used in this reproduction.
pub fn bsd_subsystem(name: &str) -> String {
    let net = ["we", "ip", "tcp", "udp", "in_", "so", "sb", "m_", "nfs"];
    let vm = ["pmap", "vm_", "kmem", "vmspace"];
    let fs = [
        "ffs", "b", "wd", "getblk", "biowait", "biodone", "vn_", "namei", "lookup",
    ];
    let spl = ["spl"];
    if spl.iter().any(|p| name.starts_with(p)) {
        "spl".into()
    } else if name == "bcopy" || name == "bcopyb" || name == "bzero" {
        "copy".into()
    } else if net.iter().any(|p| name.starts_with(p)) {
        "net".into()
    } else if vm.iter().any(|p| name.starts_with(p)) {
        "vm".into()
    } else if fs.iter().any(|p| name.starts_with(p)) {
        "fs".into()
    } else {
        "kern".into()
    }
}

/// Renders the group table.
pub fn render(groups: &[GroupAgg], total_net: u64) -> String {
    let mut out = String::from("  Net us   # calls  fns   % of run  subsystem\n");
    for g in groups {
        let pct = if total_net == 0 {
            0.0
        } else {
            g.net as f64 * 100.0 / total_net as f64
        };
        out.push_str(&format!(
            "{:>9} {:>9} {:>4}   {:>6.2}%   {}\n",
            g.net, g.calls, g.functions, pct, g.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::bsd_subsystem;

    #[test]
    fn bsd_grouper_classifies_paper_functions() {
        assert_eq!(bsd_subsystem("splnet"), "spl");
        assert_eq!(bsd_subsystem("bcopy"), "copy");
        assert_eq!(bsd_subsystem("in_cksum"), "net");
        assert_eq!(bsd_subsystem("werint"), "net");
        assert_eq!(bsd_subsystem("soreceive"), "net");
        assert_eq!(bsd_subsystem("pmap_pte"), "vm");
        assert_eq!(bsd_subsystem("kmem_alloc"), "vm");
        assert_eq!(bsd_subsystem("ffs_write"), "fs");
        assert_eq!(bsd_subsystem("bread"), "fs");
        assert_eq!(bsd_subsystem("tsleep"), "kern");
        assert_eq!(bsd_subsystem("malloc"), "kern");
    }
}
