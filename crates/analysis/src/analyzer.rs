//! One front door to every analysis flavour.
//!
//! The crate grew nine `analyze*` entry points as capture modes were
//! added: one-session and multi-session batch, the explicit iterator
//! fold, the thread-pool fan-out, and the three gap-aware stitched
//! flavours for supervised runs — plus the recovery-mode variants in
//! the `hwprof` facade.  They all compose the same three independent
//! choices, which [`Analyzer`] makes explicit:
//!
//! * **decode/reconstruction mode** — strict, or
//!   [recovering](Analyzer::recovering) (tolerant decode plus
//!   resynchronizing reconstruction, every intervention classified in
//!   [`crate::Anomalies`]);
//! * **schedule** — sequential, or fanned out across
//!   [workers](Analyzer::workers) (bit-identical by the monoid-merge
//!   argument; only the schedule differs);
//! * **trust gate** — an optional [anomaly
//!   budget](Analyzer::limit_ppm) in parts per million of captured
//!   tags, refused with [`AnalyzerError::AnomalyLimit`] when crossed.
//!
//! The old free functions have been deleted (they lived out PRs 4–5 as
//! thin `#[deprecated]` wrappers); every combination they covered (and
//! several they never did, like recovering + parallel) is one builder
//! chain here:
//!
//! ```
//! use hwprof_analysis::Analyzer;
//!
//! let tf = hwprof_tagfile::parse("a/100\nb/102\n").unwrap();
//! let analyzer = Analyzer::for_tagfile(&tf).recovering(true).workers(4);
//! let r = analyzer.records(&[]).unwrap();
//! assert_eq!(r.tags, 0);
//! ```

use hwprof_profiler::{RawRecord, SupervisedRun};
use hwprof_tagfile::TagFile;
use hwprof_telemetry::{Registry, SpanLog};

use crate::columnar::{ColumnarDecoder, DenseTagTable};
use crate::events::{Event, Symbols};
use crate::export::Exporter;
use crate::recon::{Reconstruction, SessionRecon};
use crate::stream::StreamAnalyzer;

/// Why an [`Analyzer`] refused to produce a reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzerError {
    /// The capture's classified anomaly rate crossed the configured
    /// [`Analyzer::limit_ppm`] budget: the numbers cannot be trusted.
    AnomalyLimit {
        /// Classified anomalies the pipeline counted.
        anomalies: u64,
        /// Hardware events in the capture.
        tags: u64,
        /// The configured budget, in anomalies per million tags.
        limit_ppm: u32,
    },
    /// A raw-record or supervised-run entry point needs the build's tag
    /// file, but the analyzer was built from bare [`Symbols`]
    /// ([`Analyzer::new`]); use [`Analyzer::for_tagfile`].
    MissingTagFile,
    /// The internal streaming pipeline misbehaved (it cannot, short of
    /// a panicking worker; surfaced as an error rather than a panic).
    PipelineClosed,
}

impl std::fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzerError::AnomalyLimit {
                anomalies,
                tags,
                limit_ppm,
            } => write!(
                f,
                "capture too corrupt to trust: {anomalies} anomalies in {tags} tags \
                 (budget {limit_ppm} per million)"
            ),
            AnalyzerError::MissingTagFile => write!(
                f,
                "this entry point decodes raw records and needs the build's tag file; \
                 construct the analyzer with Analyzer::for_tagfile"
            ),
            AnalyzerError::PipelineClosed => {
                write!(f, "internal streaming pipeline closed early")
            }
        }
    }
}

impl std::error::Error for AnalyzerError {}

/// The consolidated analysis front door: mode, schedule and trust gate
/// chosen once, then applied to whatever form the capture arrives in
/// (decoded events, raw records, or a whole supervised run).
#[derive(Debug, Clone)]
#[must_use = "an Analyzer does nothing until an analyze method consumes a capture"]
pub struct Analyzer {
    syms: Symbols,
    tagfile: Option<TagFile>,
    recovering: bool,
    workers: usize,
    limit_ppm: Option<u32>,
    telemetry: Option<Registry>,
    journal: Option<SpanLog>,
}

impl Analyzer {
    /// An analyzer over pre-decoded events: strict, sequential, no
    /// anomaly budget.  Entry points that decode raw records
    /// ([`records`](Analyzer::records), [`run`](Analyzer::run)) need
    /// the tag file too — use [`Analyzer::for_tagfile`] for those.
    pub fn new(syms: &Symbols) -> Self {
        Analyzer {
            syms: syms.clone(),
            tagfile: None,
            recovering: false,
            workers: 1,
            limit_ppm: None,
            telemetry: None,
            journal: None,
        }
    }

    /// An analyzer for captures from a build with this tag file; every
    /// entry point is available.
    pub fn for_tagfile(tf: &TagFile) -> Self {
        Analyzer {
            syms: Symbols::from_tagfile(tf),
            tagfile: Some(tf.clone()),
            recovering: false,
            workers: 1,
            limit_ppm: None,
            telemetry: None,
            journal: None,
        }
    }

    /// Recovery mode: duplicates dropped, corrupt timestamps clamped,
    /// mispaired frames resynchronized, every intervention classified
    /// in [`Reconstruction::anomalies`] instead of corrupting the
    /// numbers silently.
    pub fn recovering(mut self, on: bool) -> Self {
        self.recovering = on;
        self
    }

    /// Fans multi-session work out across `n` threads (contiguous
    /// session blocks, merged in order — bit-identical to sequential).
    /// `0` and `1` both mean sequential.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Refuses the reconstruction with [`AnalyzerError::AnomalyLimit`]
    /// if classified anomalies exceed `ppm` per million captured tags.
    pub fn limit_ppm(mut self, ppm: u32) -> Self {
        self.limit_ppm = Some(ppm);
        self
    }

    /// Registers live pipeline telemetry (the `stream.*` metrics) in
    /// `reg` for entry points that run the streaming worker pool
    /// ([`Analyzer::run_streaming`]).  Off by default; when off, no
    /// atomics are touched anywhere on the analysis path.
    pub fn telemetry(mut self, reg: &Registry) -> Self {
        self.telemetry = Some(reg.clone());
        self
    }

    /// Records per-bank analyze spans into `log` for entry points that
    /// run the streaming worker pool ([`Analyzer::run_streaming`]).
    /// Off by default, like [`Analyzer::telemetry`].
    pub fn journal(mut self, log: &SpanLog) -> Self {
        self.journal = Some(log.clone());
        self
    }

    /// The symbol table this analyzer reconstructs against.
    pub fn symbols(&self) -> &Symbols {
        &self.syms
    }

    /// The unified [`Profile`](crate::Profile) view over a
    /// reconstruction this analyzer produced, pre-loaded with the
    /// configured span journal (if any).  Chain
    /// [`Profile::run`](crate::Profile::run) to place a stitched
    /// result on its supervised timeline.
    pub fn profile<'r>(&self, r: &'r Reconstruction) -> crate::Profile<'r> {
        let p = crate::Profile::new(r);
        match &self.journal {
            Some(log) => p.spans(log),
            None => p,
        }
    }

    /// Delegating wrapper over [`Analyzer::profile`] for callers that
    /// want the raw [`Exporter`] builder; prefer `profile()`.
    pub fn export<'r>(&self, r: &'r Reconstruction) -> Exporter<'r> {
        self.profile(r).exporter()
    }

    /// The base fold every flavour goes through: sessions reconstructed
    /// in isolation, accumulated in order into one result.  A single
    /// arena-backed [`SessionRecon`] serves every session, so the loop
    /// allocates no per-session state (bit-identical to building and
    /// merging per-session `Reconstruction`s — the monoid argument).
    fn fold<I>(&self, sessions: I) -> Reconstruction
    where
        I: IntoIterator,
        I::Item: AsRef<[Event]>,
    {
        let mut out = Reconstruction::empty(self.syms.clone());
        let mut recon = SessionRecon::new(&self.syms, self.recovering);
        for s in sessions {
            recon.session_into(s.as_ref(), &mut out);
        }
        out
    }

    /// The fold fanned out across the configured workers: contiguous
    /// session blocks, block results merged in order.  The trace
    /// concatenation is a large share of total analysis cost, so
    /// block-local folds parallelize it along with the reconstruction,
    /// leaving only `workers - 1` merges on the calling thread.
    fn fan_out(&self, sessions: &[Vec<Event>]) -> Reconstruction {
        let workers = self.workers.min(sessions.len().max(1));
        if workers <= 1 {
            return self.fold(sessions);
        }
        let chunk = sessions.len().div_ceil(workers);
        let parts: Vec<Reconstruction> = std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .chunks(chunk)
                .map(|block| scope.spawn(move || self.fold(block)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        });
        let mut out = Reconstruction::empty(self.syms.clone());
        out.trace.reserve(parts.iter().map(|r| r.trace.len()).sum());
        for r in parts {
            out.merge(r);
        }
        out
    }

    /// The trust gate, applied by every public entry point.
    fn gate(&self, r: Reconstruction) -> Result<Reconstruction, AnalyzerError> {
        if let Some(limit_ppm) = self.limit_ppm {
            let anomalies = r.anomalies.total();
            let tags = r.tags as u64;
            if anomalies * 1_000_000 > tags.max(1) * u64::from(limit_ppm) {
                return Err(AnalyzerError::AnomalyLimit {
                    anomalies,
                    tags,
                    limit_ppm,
                });
            }
        }
        Ok(r)
    }

    fn dense_table(&self) -> Result<DenseTagTable, AnalyzerError> {
        Ok(DenseTagTable::from_tagfile(
            self.tagfile.as_ref().ok_or(AnalyzerError::MissingTagFile)?,
        ))
    }

    /// Decodes one raw bank in the configured mode through a shared
    /// columnar decoder (decode-level anomalies folded into the events'
    /// reconstruction by the caller).  The decoder's scratch columns
    /// persist across banks; only its session state resets.
    fn decode_bank(
        &self,
        decoder: &mut ColumnarDecoder<'_>,
        records: &[RawRecord],
    ) -> (Vec<Event>, crate::Anomalies) {
        decoder.reset();
        let mut events = Vec::new();
        if self.recovering {
            decoder.extend_recovering(records, &mut events);
        } else {
            decoder.extend(records, &mut events);
        }
        (events, decoder.anomalies())
    }

    /// Analyzes one decoded capture session.
    pub fn session(&self, events: &[Event]) -> Result<Reconstruction, AnalyzerError> {
        self.gate(self.fold([events]))
    }

    /// Analyzes several capture sessions (merged in slice order), fanned
    /// out across the configured workers.
    pub fn sessions(&self, sessions: &[Vec<Event>]) -> Result<Reconstruction, AnalyzerError> {
        self.gate(self.fan_out(sessions))
    }

    /// Analyzes an iterator of capture sessions, folded sequentially in
    /// iteration order.
    pub fn sessions_iter<I>(&self, sessions: I) -> Result<Reconstruction, AnalyzerError>
    where
        I: IntoIterator,
        I::Item: AsRef<[Event]>,
    {
        self.gate(self.fold(sessions))
    }

    /// Decodes and analyzes one uploaded RAM image as a single session.
    /// Needs [`Analyzer::for_tagfile`].
    pub fn records(&self, records: &[RawRecord]) -> Result<Reconstruction, AnalyzerError> {
        self.record_sessions(std::iter::once(records))
    }

    /// Decodes and analyzes several uploaded RAM images (carried
    /// battery-backed RAMs, in swap order), each as one session.  Needs
    /// [`Analyzer::for_tagfile`].
    pub fn record_sessions<I>(&self, banks: I) -> Result<Reconstruction, AnalyzerError>
    where
        I: IntoIterator,
        I::Item: AsRef<[RawRecord]>,
    {
        let table = self.dense_table()?;
        let mut decoder = ColumnarDecoder::new(&table);
        let mut recon = SessionRecon::new(&self.syms, self.recovering);
        let mut out = Reconstruction::empty(self.syms.clone());
        let mut events = Vec::new();
        for bank in banks {
            decoder.reset();
            events.clear();
            if self.recovering {
                decoder.extend_recovering(bank.as_ref(), &mut events);
            } else {
                decoder.extend(bank.as_ref(), &mut events);
            }
            recon.session_into(&events, &mut out);
            out.note(&decoder.anomalies());
        }
        self.gate(out)
    }

    /// Stitches a supervised run: each delivered bank decoded and
    /// reconstructed as one session (fanned out across the configured
    /// workers), merged in bank order, the run's [`Coverage`] ledger
    /// folded in so the report carries its "Coverage" block.  Needs
    /// [`Analyzer::for_tagfile`].
    ///
    /// [`Coverage`]: hwprof_profiler::Coverage
    pub fn run(&self, run: &SupervisedRun) -> Result<Reconstruction, AnalyzerError> {
        let table = self.dense_table()?;
        let mut decoder = ColumnarDecoder::new(&table);
        let mut decode_anoms = crate::Anomalies::default();
        let sessions: Vec<Vec<Event>> = run
            .sessions
            .iter()
            .map(|s| {
                let (events, anoms) = self.decode_bank(&mut decoder, &s.records);
                decode_anoms.merge(&anoms);
                events
            })
            .collect();
        let mut out = self.fan_out(&sessions);
        out.note(&decode_anoms);
        out.note_coverage(&run.coverage);
        self.gate(out)
    }

    /// Stitches a supervised run through the streaming worker pipeline
    /// (each delivered bank fed as one bank); bit-identical to
    /// [`Analyzer::run`].  Needs [`Analyzer::for_tagfile`].
    pub fn run_streaming(&self, run: &SupervisedRun) -> Result<Reconstruction, AnalyzerError> {
        let tf = self.tagfile.as_ref().ok_or(AnalyzerError::MissingTagFile)?;
        let mut analyzer = if self.recovering {
            StreamAnalyzer::recovering(tf, self.workers)
        } else {
            StreamAnalyzer::new(tf, self.workers)
        };
        if let Some(reg) = &self.telemetry {
            analyzer.set_telemetry(reg);
        }
        if let Some(log) = &self.journal {
            analyzer.set_span_log(log);
        }
        {
            let mut feed = analyzer.feed().map_err(|_| AnalyzerError::PipelineClosed)?;
            for s in &run.sessions {
                if !hwprof_profiler::BankSink::bank(&mut feed, s.records.clone()) {
                    return Err(AnalyzerError::PipelineClosed);
                }
            }
        }
        let mut out = analyzer
            .finish()
            .map_err(|_| AnalyzerError::PipelineClosed)?;
        out.note_coverage(&run.coverage);
        self.gate(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_profiler::RawRecord;

    const TF: &str = "a/100\nb/102\nswtch/200!\n";

    fn rec(tag: u16, time: u32) -> RawRecord {
        RawRecord { tag, time }
    }

    #[test]
    fn session_matches_sessions_and_parallel() {
        let tf = hwprof_tagfile::parse(TF).unwrap();
        let records = [rec(100, 0), rec(102, 20), rec(103, 50), rec(101, 100)];
        let a = Analyzer::for_tagfile(&tf);
        let one = a.records(&records).unwrap();
        let (_, events) = crate::events::decode(&records, &tf);
        assert_eq!(a.session(&events).unwrap(), one);
        assert_eq!(a.sessions(std::slice::from_ref(&events)).unwrap(), one);
        assert_eq!(a.clone().workers(4).sessions(&[events]).unwrap(), one);
        assert_eq!(one.agg("a").unwrap().net, 70);
    }

    #[test]
    fn recovering_mode_classifies_instead_of_miscounting() {
        let tf = hwprof_tagfile::parse(TF).unwrap();
        // A duplicate record and an unknown tag among clean pairs.
        let records = [rec(100, 0), rec(100, 0), rec(0x9999, 5), rec(101, 10)];
        let strict = Analyzer::for_tagfile(&tf).records(&records).unwrap();
        let recovering = Analyzer::for_tagfile(&tf)
            .recovering(true)
            .records(&records)
            .unwrap();
        assert_eq!(recovering.anomalies.duplicates, 1);
        assert_eq!(recovering.anomalies.unknown_tags, 1);
        assert_eq!(recovering.agg("a").unwrap().calls, 1);
        // Strict decode keeps the duplicate as a real (bogus) event.
        assert!(strict.tags >= recovering.tags);
    }

    #[test]
    fn limit_ppm_gates_corrupt_captures() {
        let tf = hwprof_tagfile::parse(TF).unwrap();
        let records = [rec(100, 0), rec(0x9999, 5), rec(101, 10)];
        let lax = Analyzer::for_tagfile(&tf)
            .recovering(true)
            .limit_ppm(1_000_000);
        assert!(lax.records(&records).is_ok());
        let strict = Analyzer::for_tagfile(&tf).recovering(true).limit_ppm(1);
        match strict.records(&records) {
            Err(AnalyzerError::AnomalyLimit {
                anomalies,
                limit_ppm,
                ..
            }) => {
                assert_eq!(anomalies, 1);
                assert_eq!(limit_ppm, 1);
            }
            other => panic!("wanted AnomalyLimit, got {other:?}"),
        }
    }

    #[test]
    fn records_without_tagfile_is_an_error() {
        let tf = hwprof_tagfile::parse(TF).unwrap();
        let syms = Symbols::from_tagfile(&tf);
        let a = Analyzer::new(&syms);
        assert_eq!(a.records(&[]).unwrap_err(), AnalyzerError::MissingTagFile);
        // Event-level entry points still work.
        assert!(a.session(&[]).is_ok());
    }
}
