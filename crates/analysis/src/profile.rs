//! The one front door for rendering anything captured, by any path.
//!
//! Every capture surface — `BackendCapture`, `SupervisedCapture`,
//! `StreamCapture`, a fleet merge, a flight-recorder window — bottoms
//! out in the same [`Reconstruction`] monoid, so they all render the
//! same way: convert into a [`Profile`] view and call one of its
//! methods.  A `Profile` borrows the reconstruction (plus optional
//! supervised-run context and span journal) and owns nothing heavier
//! than a name, so conversion is free.
//!
//! ```
//! use hwprof_analysis::{Profile, Reconstruction, Symbols};
//! let r = Reconstruction::empty(Symbols::default());
//! let p = Profile::new(&r).name("quiet run");
//! assert!(p.chrome_trace().contains("quiet run"));
//! assert!(p.html().starts_with("<!DOCTYPE html>"));
//! ```
//!
//! The text reports ([`Profile::summary_report`], [`Profile::describe`])
//! and the machine formats ([`Profile::chrome_trace`],
//! [`Profile::speedscope`], [`Profile::folded`]) delegate to the
//! existing report/export machinery; [`Profile::html`] renders a
//! self-contained, byte-deterministic HTML report with no external
//! assets and no new dependencies.

use hwprof_profiler::SupervisedRun;
use hwprof_telemetry::{SpanEvent, SpanLog};

use crate::events::SymId;
use crate::export::Exporter;
use crate::recon::Reconstruction;
use crate::report::{fmt_us, summary_report};
use crate::sentinel::AlertEntry;

/// A borrowed, render-ready view over one reconstruction.
#[derive(Debug, Clone)]
pub struct Profile<'a> {
    r: &'a Reconstruction,
    run: Option<&'a SupervisedRun>,
    spans: Vec<SpanEvent>,
    alerts: Vec<AlertEntry>,
    name: String,
}

impl<'a> Profile<'a> {
    /// A profile view over a plain reconstruction.
    pub fn new(r: &'a Reconstruction) -> Self {
        Profile {
            r,
            run: None,
            spans: Vec::new(),
            alerts: Vec::new(),
            name: "hwprof".to_string(),
        }
    }

    /// Profile name stamped into every rendered output.
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Attaches supervised-run context: exports re-base sessions onto
    /// the run timeline and render gap/mask/coverage overlays.
    pub fn run(mut self, run: &'a SupervisedRun) -> Self {
        self.run = Some(run);
        self
    }

    /// Attaches a span journal; its events render as pipeline lanes.
    pub fn spans(self, log: &SpanLog) -> Self {
        self.span_events(log.snapshot())
    }

    /// Like [`Profile::spans`], from an already-snapshotted event list.
    pub fn span_events(mut self, events: Vec<SpanEvent>) -> Self {
        self.spans = events;
        self
    }

    /// Attaches sentinel alert-journal entries: they render as an
    /// Alerts section in [`Profile::html`] and as instant markers in
    /// [`Profile::chrome_trace`].  An empty slice leaves every output
    /// byte-identical to a profile with no alerts attached.
    pub fn alerts(mut self, entries: &[AlertEntry]) -> Self {
        self.alerts = entries.to_vec();
        self
    }

    /// The underlying reconstruction.
    pub fn reconstruction(&self) -> &'a Reconstruction {
        self.r
    }

    /// The configured exporter (the escape hatch for callers that want
    /// the builder itself rather than a finished document).
    pub fn exporter(&self) -> Exporter<'a> {
        Exporter::assemble(
            self.r,
            self.run,
            self.spans.clone(),
            self.alerts.clone(),
            &self.name,
        )
    }

    /// Chrome Trace Event JSON (Perfetto / `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        self.exporter().chrome_trace()
    }

    /// speedscope JSON.
    pub fn speedscope(&self) -> String {
        self.exporter().speedscope()
    }

    /// Folded flamegraph stacks.
    pub fn folded(&self) -> String {
        self.exporter().folded()
    }

    /// The paper's Figure-3 per-function summary (`top` caps the body
    /// rows; `None` = all).
    pub fn summary_report(&self, top: Option<usize>) -> String {
        summary_report(self.r, top)
    }

    /// A short deterministic text digest: headline totals, the top
    /// five functions by net time, and the coverage ledger when
    /// supervised-run context is attached.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let r = self.r;
        let _ = writeln!(
            out,
            "profile \"{}\": elapsed {}, run {}, idle {}, {} tags, {} sessions",
            self.name,
            fmt_us(r.total_elapsed),
            fmt_us(r.run_time()),
            fmt_us(r.idle),
            r.tags,
            r.sessions,
        );
        let order = function_order(r);
        let run = r.run_time();
        if !order.is_empty() {
            let _ = writeln!(out, "top functions (net us):");
            for &s in order.iter().take(5) {
                let agg = &r.stats[s as usize];
                let _ = writeln!(
                    out,
                    "  {:<14} {:>8} calls {:>10} us {:>6.2}%",
                    r.syms.name(s),
                    agg.calls,
                    agg.net,
                    if run == 0 {
                        0.0
                    } else {
                        agg.net as f64 * 100.0 / run as f64
                    },
                );
            }
        }
        if !r.anomalies.is_clean() {
            for line in r.anomalies.describe() {
                let _ = writeln!(out, "  {line}");
            }
        }
        if let Some(run) = self.run {
            for line in run.coverage.describe() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }

    /// A self-contained HTML report: headline totals, the full
    /// per-function table, and coverage/anomaly blocks when present.
    /// No scripts, no external assets; byte-deterministic for a given
    /// profile, so two identical runs render identical files.
    pub fn html(&self) -> String {
        use std::fmt::Write as _;
        let r = self.r;
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n");
        let _ = writeln!(
            out,
            "<title>hwprof &mdash; {}</title>",
            html_esc(&self.name)
        );
        out.push_str(HTML_STYLE);
        out.push_str("</head>\n<body>\n");
        let _ = writeln!(out, "<h1>{}</h1>", html_esc(&self.name));

        out.push_str("<table class=\"meta\">\n");
        let pct = |x: u64| {
            if r.total_elapsed == 0 {
                0.0
            } else {
                x as f64 * 100.0 / r.total_elapsed as f64
            }
        };
        let _ = writeln!(
            out,
            "<tr><th>Elapsed time</th><td>{} ({} tags)</td></tr>",
            fmt_us(r.total_elapsed),
            r.tags
        );
        let _ = writeln!(
            out,
            "<tr><th>Accumulated run time</th><td>{} ({:.2}%)</td></tr>",
            fmt_us(r.run_time()),
            pct(r.run_time())
        );
        let _ = writeln!(
            out,
            "<tr><th>Idle time</th><td>{} ({:.2}%)</td></tr>",
            fmt_us(r.idle),
            pct(r.idle)
        );
        let _ = writeln!(out, "<tr><th>Sessions</th><td>{}</td></tr>", r.sessions);
        let _ = writeln!(
            out,
            "<tr><th>Context switches</th><td>{}</td></tr>",
            r.context_switches
        );
        out.push_str("</table>\n");

        out.push_str("<h2>Functions</h2>\n<table class=\"fns\">\n");
        out.push_str(
            "<tr><th>function</th><th>calls</th><th>net us</th><th>elapsed us</th>\
             <th>max</th><th>avg</th><th>min</th><th>% real</th><th>% net</th></tr>\n",
        );
        for &s in &function_order(r) {
            let agg = &r.stats[s as usize];
            let avg = agg.net.checked_div(agg.calls).unwrap_or(0);
            let _ = writeln!(
                out,
                "<tr><td class=\"fn\">{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{:.2}</td><td>{:.2}</td></tr>",
                html_esc(r.syms.name(s)),
                agg.calls,
                agg.net,
                agg.elapsed,
                agg.max_net,
                avg,
                agg.min_net,
                pct(agg.net),
                if r.run_time() == 0 {
                    0.0
                } else {
                    agg.net as f64 * 100.0 / r.run_time() as f64
                },
            );
        }
        out.push_str("</table>\n");

        let cov = if let Some(run) = self.run {
            Some(&run.coverage)
        } else if r.coverage.timeline_us > 0 {
            Some(&r.coverage)
        } else {
            None
        };
        if let Some(cov) = cov {
            out.push_str("<h2>Coverage</h2>\n<ul>\n");
            for line in cov.describe() {
                let _ = writeln!(out, "<li>{}</li>", html_esc(&line));
            }
            out.push_str("</ul>\n");
        }
        if !r.anomalies.is_clean() {
            out.push_str("<h2>Capture integrity</h2>\n<ul>\n");
            for line in r.anomalies.describe() {
                let _ = writeln!(out, "<li>{}</li>", html_esc(&line));
            }
            out.push_str("</ul>\n");
        }
        if !self.alerts.is_empty() {
            out.push_str("<h2>Alerts</h2>\n<table class=\"alerts\">\n");
            out.push_str(
                "<tr><th>#</th><th>window</th><th>at us</th><th>detector</th>\
                 <th>subject</th><th>transition</th><th>baseline</th>\
                 <th>observed</th><th>delta</th><th>unit</th></tr>\n",
            );
            for a in &self.alerts {
                let _ = writeln!(
                    out,
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"fn\">{}</td>\
                     <td class=\"fn\">{}</td><td class=\"fn\">{}</td><td>{}</td>\
                     <td>{}</td><td>{:+}</td><td class=\"fn\">{}</td></tr>",
                    a.seq,
                    a.window,
                    a.at_us,
                    a.detector.label(),
                    html_esc(&a.subject),
                    a.transition.label(),
                    a.baseline,
                    a.observed,
                    a.delta,
                    a.detector.unit(),
                );
            }
            out.push_str("</table>\n");
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

/// Symbols with any recorded activity, highest net time first (ties by
/// symbol id) — the same presentation order as `summary_report`.
pub(crate) fn function_order(r: &Reconstruction) -> Vec<SymId> {
    let mut order: Vec<SymId> = (0..r.stats.len() as SymId)
        .filter(|&s| {
            let a = &r.stats[s as usize];
            a.calls > 0 || a.net > 0 || a.inline_hits > 0
        })
        .collect();
    order.sort_by(|&a, &b| {
        r.stats[b as usize]
            .net
            .cmp(&r.stats[a as usize].net)
            .then_with(|| r.syms.name(a).cmp(r.syms.name(b)))
    });
    order
}

/// Escapes text for an HTML context.
pub(crate) fn html_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// The report stylesheet, inlined so the file stands alone.
pub(crate) const HTML_STYLE: &str = "<style>\n\
body{font-family:monospace;margin:2em;background:#fdfdfd;color:#222}\n\
h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.5em}\n\
table{border-collapse:collapse}\n\
th,td{border:1px solid #bbb;padding:2px 8px;text-align:right}\n\
th{background:#eee}\n\
td.fn{text-align:left}\n\
table.meta th{text-align:left}\n\
table.meta td{text-align:left}\n\
</style>\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Symbols;

    #[test]
    fn empty_profile_renders_every_surface() {
        let r = Reconstruction::empty(Symbols::default());
        let p = Profile::new(&r).name("empty");
        assert!(p.chrome_trace().contains("empty"));
        assert!(p.speedscope().contains("empty"));
        assert_eq!(p.folded(), "");
        assert!(p.summary_report(None).contains("Elapsed time = 0 us"));
        assert!(p.describe().starts_with("profile \"empty\""));
        let html = p.html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn html_is_escaped_and_deterministic() {
        let r = Reconstruction::empty(Symbols::default());
        let p = Profile::new(&r).name("a<b>&\"c\"");
        let html = p.html();
        assert!(html.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(!html.contains("a<b>"));
        assert_eq!(html, Profile::new(&r).name("a<b>&\"c\"").html());
    }
}
