//! Supervised-capture property suite: for any seeded overflow/retry
//! schedule the coverage ledger must partition the timeline exactly,
//! the three stitch paths must agree bit-for-bit, and the EE-PAL mask
//! (a pure filter) must never *increase* what the analysis counts.
//!
//! Runs at 256 cases per property (`PROPTEST_CASES` overrides); the CI
//! fault job pins exactly that.

use proptest::prelude::*;

use hwprof_analysis::{
    reconstruct_session, Analyzer, Reconstruction, SessionDecoder, Symbols, TagMap,
};
use hwprof_machine::EpromTap;
use hwprof_profiler::{
    BoardConfig, CaptureSupervisor, FlakyTransport, MemoryTransport, Profiler, RawRecord,
    RetryPolicy, SupervisedRun, SupervisorPolicy, TagMask, TagMaskLevel,
};
use hwprof_tagfile::{TagFile, TagKind};

/// A tag file with `nfns` plain functions and one context-switch tag.
fn supervised_tagfile(nfns: u16) -> (TagFile, Vec<u16>, u16) {
    let mut tf = TagFile::new(500);
    let tags: Vec<u16> = (0..nfns)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    (tf, tags, swtch)
}

/// Drives a [`CaptureSupervisor`] through a random balanced call stream
/// (entries/exits with strictly increasing simulated time, periodic
/// context switches) over a deliberately tiny board, so overflows,
/// re-arms, retries and ladder moves all happen.
#[allow(clippy::too_many_arguments)]
fn drive_supervised(
    nfns: u16,
    ops: &[(u8, u8)],
    policy: SupervisorPolicy,
    capacity: usize,
    fail_ppm: u32,
    outage: Option<(u64, u64)>,
    seed: u64,
    telemetry: Option<&hwprof_telemetry::Registry>,
) -> (TagFile, SupervisedRun) {
    let (tf, tags, swtch) = supervised_tagfile(nfns);
    let board = Profiler::new(BoardConfig {
        capacity,
        time_bits: 24,
    });
    let mask = TagMask::new([swtch]);
    let mut transport = FlakyTransport::new(MemoryTransport::new(), fail_ppm, seed);
    if let Some((start, end)) = outage {
        transport = transport.with_outage(start, end.max(start));
    }
    let mut sup = CaptureSupervisor::new(board, mask, policy, Box::new(transport));
    if let Some(reg) = telemetry {
        sup.set_telemetry(reg);
    }
    let mut stack: Vec<u16> = Vec::new();
    let mut t = 1_000u64;
    for (i, &(sel, dt)) in ops.iter().enumerate() {
        t += u64::from(dt) + 1;
        if sel % 3 == 0 && !stack.is_empty() {
            let tag = stack.pop().expect("checked");
            sup.on_read(tag + 1, t);
        } else if stack.len() < 10 {
            let tag = tags[sel as usize % tags.len()];
            stack.push(tag);
            sup.on_read(tag, t);
        }
        if i % 13 == 12 {
            t += 2;
            sup.on_read(swtch, t);
            t += 2;
            sup.on_read(swtch + 1, t);
        }
    }
    for tag in stack.into_iter().rev() {
        t += 3;
        sup.on_read(tag + 1, t);
    }
    (tf, sup.finish())
}

/// A small, fast-moving policy shaped by the proptest inputs.
#[allow(clippy::too_many_arguments)]
fn policy(
    drain_budget_us: u64,
    max_attempts: u32,
    spill_banks: usize,
    ladder: bool,
    breaker_cooldown_us: u64,
    jitter_ppm: u32,
    seed: u64,
) -> SupervisorPolicy {
    SupervisorPolicy {
        drain_budget_us,
        drain_fill: None,
        max_session_us: u64::MAX,
        retry: RetryPolicy {
            max_attempts,
            base_backoff_us: 7,
            max_backoff_us: 60,
            jitter_ppm,
        },
        breaker_cooldown_us,
        spill_banks,
        ladder,
        downgrade_fill_us: 300,
        upgrade_fill_us: 2_000,
        auto_hot_top: 2,
        min_coverage_ppm: 0,
        seed,
        ..SupervisorPolicy::default()
    }
}

/// Merged strict reconstruction of pre-filtered banks — the fixed-bank
/// formulation the mask-monotonicity property uses.
fn reconstruct_filtered(
    tf: &TagFile,
    banks: &[Vec<RawRecord>],
    mask: &TagMask,
    level: TagMaskLevel,
) -> Reconstruction {
    let map = TagMap::from_tagfile(tf);
    let syms = Symbols::from_tagfile(tf);
    let mut out = Reconstruction::empty(syms.clone());
    for bank in banks {
        let filtered = mask.filter(level, bank);
        let mut decoder = SessionDecoder::new(&map);
        let mut events = Vec::new();
        decoder.extend(&filtered, &mut events);
        out.merge(reconstruct_session(&syms, &events));
    }
    out
}

proptest! {
    #![cases(256)]

    /// For any seeded overflow/retry/outage schedule, the coverage
    /// ledger partitions the timeline exactly: covered + gap time
    /// equals the first-to-last-trigger span (the "within one tick"
    /// acceptance bound is met with zero slack), the per-level time
    /// sums to the covered time, and the structural counts agree with
    /// the session/gap lists.
    #[test]
    fn coverage_partitions_the_timeline(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..300),
        capacity in 4usize..24,
        drain_budget in 1u64..200,
        attempts in 1u32..4,
        spill in 0usize..4,
        ladder_sel in 0u8..2,
        cooldown in 0u64..400,
        jitter in 0u32..500_000,
        fail_ppm in 0u32..400_000,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(drain_budget, attempts, spill, ladder_sel == 1, cooldown, jitter, seed);
        let (_tf, run) = drive_supervised(nfns, &ops, pol, capacity, fail_ppm, None, seed, None);
        let cov = run.coverage;
        prop_assert!(
            cov.covered_us + cov.gap_us == cov.timeline_us,
            "covered {} + gap {} != timeline {}",
            cov.covered_us, cov.gap_us, cov.timeline_us
        );
        prop_assert_eq!(cov.level_us.iter().sum::<u64>(), cov.covered_us);
        prop_assert_eq!(cov.gaps, run.gaps.len() as u64);
        prop_assert!(cov.fraction() >= 0.0 && cov.fraction() <= 1.0);
        // Sessions arrive sorted by bank index with sane spans, and
        // every delivered span is inside the timeline.
        for w in run.sessions.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
        for s in &run.sessions {
            prop_assert!(s.start_us <= s.end_us);
        }
        for g in &run.gaps {
            prop_assert!(g.start_us <= g.end_us);
        }
        // The session list never over-claims: delivered spans alone
        // cannot exceed the covered total (idle spans fill the rest).
        let delivered: u64 = run.sessions.iter().map(|s| s.span_us()).sum();
        prop_assert!(delivered <= cov.covered_us);
    }

    /// The three stitch flavours — sequential fold, parallel fan-out,
    /// streaming pipeline — are bit-identical on any supervised run,
    /// for any worker count.
    #[test]
    fn stitch_paths_are_bit_identical(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..250),
        capacity in 4usize..20,
        ladder_sel in 0u8..2,
        fail_ppm in 0u32..300_000,
        workers in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(25, 2, 2, ladder_sel == 1, 100, 0, seed);
        let (tf, run) = drive_supervised(nfns, &ops, pol, capacity, fail_ppm, None, seed, None);
        let seq = Analyzer::for_tagfile(&tf).run(&run).expect("ungated");
        let a = Analyzer::for_tagfile(&tf).workers(workers);
        let par = a.run(&run).expect("ungated");
        prop_assert!(seq == par, "parallel({workers}) diverged");
        let streamed = a.run_streaming(&run).expect("pipeline open");
        prop_assert!(seq == streamed, "streaming({workers}) diverged");
    }

    /// The EE-PAL mask is a pure filter: over fixed, call-aligned bank
    /// boundaries, stepping the ladder down never increases any
    /// per-function call count (or the total tag count) — each level's
    /// stream is a subset of the level above it.  (Boundaries must be
    /// call-aligned for the *reconstructed* counts to be comparable:
    /// cutting mid-call moves orphan entries/exits between banks, and
    /// the resynchronizer may then pair them differently per level.)
    #[test]
    fn mask_downgrades_never_increase_call_counts(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 4..250),
        cuts in prop::collection::vec(0usize..1000, 0..5),
        hot_pick in 0u16..6,
    ) {
        let (tf, tags, swtch) = supervised_tagfile(nfns);
        // A balanced record stream; context switches and bank-cut
        // candidates only at stack depth zero.
        let mut records = Vec::new();
        let mut stack: Vec<u16> = Vec::new();
        let mut safe_cuts: Vec<usize> = Vec::new();
        let mut t = 0u64;
        for (i, &(sel, dt)) in ops.iter().enumerate() {
            t += u64::from(dt) + 1;
            if sel % 3 == 0 && !stack.is_empty() {
                let tag = stack.pop().expect("checked");
                records.push(RawRecord::latch(tag + 1, t));
            } else if stack.len() < 10 {
                let tag = tags[sel as usize % tags.len()];
                stack.push(tag);
                records.push(RawRecord::latch(tag, t));
            }
            if stack.is_empty() {
                safe_cuts.push(records.len());
                if i % 11 == 10 {
                    t += 2;
                    records.push(RawRecord::latch(swtch, t));
                    t += 2;
                    records.push(RawRecord::latch(swtch + 1, t));
                    safe_cuts.push(records.len());
                }
            }
        }
        for tag in stack.into_iter().rev() {
            t += 3;
            records.push(RawRecord::latch(tag + 1, t));
        }
        prop_assume!(records.len() >= 4);
        // Fixed bank boundaries drawn from the call-aligned points.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .filter(|_| !safe_cuts.is_empty())
            .map(|c| safe_cuts[c % safe_cuts.len()])
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut banks: Vec<Vec<RawRecord>> = Vec::new();
        let mut prev = 0;
        for p in bounds.into_iter().chain([records.len()]) {
            if p < prev {
                continue;
            }
            banks.push(records[prev..p].to_vec());
            prev = p;
        }
        let mut mask = TagMask::new([swtch]);
        mask.set_hot([tags[hot_pick as usize % tags.len()]]);
        let all = reconstruct_filtered(&tf, &banks, &mask, TagMaskLevel::All);
        let hot = reconstruct_filtered(&tf, &banks, &mask, TagMaskLevel::HotMasked);
        let only = reconstruct_filtered(&tf, &banks, &mask, TagMaskLevel::SwitchOnly);
        prop_assert!(hot.tags <= all.tags);
        prop_assert!(only.tags <= hot.tags);
        for i in 0..nfns {
            let name = format!("f{i}");
            let calls = |r: &Reconstruction| r.agg(&name).map(|a| a.calls).unwrap_or(0);
            prop_assert!(
                calls(&hot) <= calls(&all),
                "{name}: HotMasked {} > All {}", calls(&hot), calls(&all)
            );
            prop_assert!(
                calls(&only) <= calls(&hot),
                "{name}: SwitchOnly {} > HotMasked {}", calls(&only), calls(&hot)
            );
        }
    }

    /// A scripted hard outage exercises retry, spill and the breaker
    /// without breaking the timeline partition or stitch agreement.
    #[test]
    fn outages_keep_the_ledger_consistent(
        nfns in 1u16..4,
        ops in prop::collection::vec((0u8..=255, 0u8..25), 20..250),
        capacity in 4usize..12,
        outage_start in 0u64..6,
        outage_len in 1u64..8,
        spill in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(20, 2, spill, false, 50, 0, seed);
        let (tf, run) = drive_supervised(
            nfns,
            &ops,
            pol,
            capacity,
            0,
            Some((outage_start, outage_start + outage_len)),
            seed,
            None,
        );
        let cov = run.coverage;
        prop_assert_eq!(cov.covered_us + cov.gap_us, cov.timeline_us);
        // A lost bank must be accounted: the BankLost gap count in the
        // gap list matches the ledger.
        let lost_gaps = run
            .gaps
            .iter()
            .filter(|g| g.cause == hwprof_profiler::GapCause::BankLost)
            .count() as u64;
        prop_assert_eq!(lost_gaps, cov.banks_lost);
        let seq = Analyzer::for_tagfile(&tf).run(&run).expect("ungated");
        let par = Analyzer::for_tagfile(&tf).workers(3).run(&run).expect("ungated");
        prop_assert_eq!(seq, par);
    }

    /// Telemetry is exact, not approximate: for any seeded
    /// fault/overflow schedule, the supervisor's live counters agree
    /// with the [`Coverage`] ledger on every paired metric
    /// ([`hwprof_profiler::HealthReport`]), and the streaming
    /// pipeline's counters agree with the merged reconstruction's
    /// per-class [`hwprof_analysis::Anomalies`] totals field for field.
    #[test]
    fn telemetry_agrees_with_ledger_and_anomalies(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..250),
        capacity in 4usize..20,
        drain_budget in 1u64..120,
        attempts in 1u32..4,
        spill in 0usize..3,
        ladder_sel in 0u8..2,
        fail_ppm in 0u32..400_000,
        workers in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(drain_budget, attempts, spill, ladder_sel == 1, 80, 0, seed);
        let reg = hwprof_telemetry::Registry::new();
        let (tf, run) = drive_supervised(
            nfns, &ops, pol, capacity, fail_ppm, None, seed, Some(&reg),
        );
        let report = hwprof_profiler::HealthReport::new(reg.snapshot(), run.coverage);
        prop_assert!(
            report.is_consistent(),
            "live metrics diverged from the ledger: {:?}",
            report.discrepancies()
        );
        // The streaming pipeline's counters against the merged result.
        let sreg = hwprof_telemetry::Registry::new();
        let r = Analyzer::for_tagfile(&tf)
            .workers(workers)
            .telemetry(&sreg)
            .run_streaming(&run)
            .expect("pipeline open");
        let snap = sreg.snapshot();
        prop_assert_eq!(snap.value("stream.banks"), Some(run.sessions.len() as u64));
        prop_assert_eq!(snap.value("stream.events"), Some(r.tags as u64));
        prop_assert_eq!(snap.value("stream.queue_depth"), Some(0));
        for (name, ledger) in [
            ("stream.anomalies.orphan_exits", r.anomalies.orphan_exits),
            ("stream.anomalies.unmatched_entries", r.anomalies.unmatched_entries),
            ("stream.anomalies.unknown_tags", r.anomalies.unknown_tags),
            ("stream.anomalies.time_jumps", r.anomalies.time_jumps),
            ("stream.anomalies.duplicates", r.anomalies.duplicates),
            ("stream.anomalies.truncations", r.anomalies.truncations),
        ] {
            prop_assert!(
                snap.value(name) == Some(ledger),
                "{name}: metric {:?} vs ledger {ledger}",
                snap.value(name)
            );
        }
    }
}
