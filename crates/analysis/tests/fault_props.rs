//! Fault-injection property suite: the decode → reconstruct → report
//! pipeline must never panic on corrupted input, must agree with
//! itself across chunked/batch/streaming paths, and must keep its
//! numbers inside the uncorrupted session's bounds.
//!
//! Runs at 256 cases per property (`PROPTEST_CASES` overrides); the CI
//! fault job pins exactly that.

use proptest::prelude::*;

use hwprof_analysis::anomaly::Anomalies;
use hwprof_analysis::{
    decode_recovering, reconstruct_session_recovering, summary_report,
    trace::{trace_report, TraceStyle},
    Reconstruction, RecordStream, StreamAnalyzer, Symbols,
};
use hwprof_profiler::{
    parse_raw_lossy, serialize_raw, FaultInjector, FaultSpec, RawRecord, TIME_MASK,
};
use hwprof_tagfile::{TagFile, TagKind};

/// A structurally valid single-thread capture: random nesting of `nfns`
/// functions with strictly increasing times (same shape as the lib
/// proptests' generator — the clean baseline the faults corrupt).
fn balanced_stream(nfns: u16, ops: &[(u8, u8)]) -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(100);
    let tags: Vec<u16> = (0..nfns)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let mut records = Vec::new();
    let mut stack: Vec<u16> = Vec::new();
    let mut t = 0u64;
    for &(sel, dt) in ops {
        t += u64::from(dt) + 1;
        if sel % 3 == 0 && !stack.is_empty() {
            let tag = stack.pop().expect("checked");
            records.push(RawRecord::latch(tag + 1, t));
        } else if stack.len() < 12 {
            let tag = tags[sel as usize % tags.len()];
            stack.push(tag);
            records.push(RawRecord::latch(tag, t));
        }
    }
    for tag in stack.into_iter().rev() {
        t += 3;
        records.push(RawRecord::latch(tag + 1, t));
    }
    (tf, records)
}

/// Batch recovery analysis over banks, exactly as the recovering
/// [`StreamAnalyzer`] workers do it: per-bank tolerant decode +
/// resynchronizing reconstruction, decode anomalies noted per bank,
/// merged in bank order.
fn batch_recovering(tf: &TagFile, banks: &[Vec<RawRecord>]) -> Reconstruction {
    let syms = Symbols::from_tagfile(tf);
    let mut out = Reconstruction::empty(syms);
    for bank in banks {
        let (s, events, anoms) = decode_recovering(bank, tf);
        let mut r = reconstruct_session_recovering(&s, &events);
        r.note(&anoms);
        out.merge(r);
    }
    out
}

proptest! {
    #![cases(256)]

    /// Arbitrary byte soup — not even record-aligned — decodes without
    /// panicking, chunked decode agrees with the batch lossy parse, and
    /// the full reconstruct/report/trace pipeline survives the result.
    #[test]
    fn byte_soup_never_panics_anywhere(
        bytes in prop::collection::vec(0u8..=255, 0..400),
        cuts in prop::collection::vec(0usize..1000, 0..6),
    ) {
        let (batch, trailing) = parse_raw_lossy(&bytes);
        // Chunked decode at arbitrary split points.
        let mut positions: Vec<usize> =
            cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        positions.sort_unstable();
        let mut stream = RecordStream::new();
        let mut chunked = Vec::new();
        let mut prev = 0;
        for p in positions {
            stream.push(&bytes[prev..p], &mut chunked);
            prev = p;
        }
        stream.push(&bytes[prev..], &mut chunked);
        prop_assert_eq!(&chunked, &batch);
        prop_assert_eq!(stream.finish_lossy(), trailing);
        // The soup reconstructs and renders without panicking.
        let tf = hwprof_tagfile::parse("a/100\nb/102\nswtch/200!\nMARK/300=\n")
            .expect("static tag file");
        let (syms, events, anoms) = decode_recovering(&batch, &tf);
        let mut r = reconstruct_session_recovering(&syms, &events);
        r.note(&anoms);
        if trailing > 0 {
            r.note(&Anomalies { truncations: 1, ..Anomalies::default() });
        }
        let report = summary_report(&r, Some(20));
        prop_assert!(report.contains("Elapsed time"));
        let trace = trace_report(&r, &TraceStyle::default());
        prop_assert!(trace.len() < usize::MAX); // rendered without panic
    }

    /// For every split point of a corrupted byte stream, one-split
    /// chunked decode is identical to the batch lossy parse.
    #[test]
    fn chunked_lossy_decode_agrees_at_every_split(
        bytes in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let batch = parse_raw_lossy(&bytes);
        for split in 0..=bytes.len() {
            let mut stream = RecordStream::new();
            let mut out = Vec::new();
            stream.push(&bytes[..split], &mut out);
            stream.push(&bytes[split..], &mut out);
            prop_assert!(out == batch.0, "records diverge at split {split}");
            prop_assert!(stream.finish_lossy() == batch.1, "trailing diverges at split {split}");
        }
    }

    /// Any seeded fault schedule over a clean session: recovery-mode
    /// reconstruction never panics, `run_time` stays within the
    /// session's elapsed time, and elapsed time stays within the clean
    /// session's bound plus the worst time-flip slack.
    #[test]
    fn faulted_reconstruction_never_panics_and_stays_bounded(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..40), 4..250),
        drop_ppm in 0u32..200_000,
        stuck_ppm in 0u32..200_000,
        flip_ppm in 0u32..200_000,
        spurious_ppm in 0u32..200_000,
        truncate_ppm in 0u32..1_000_000,
        seed in 0u64..1_000_000,
    ) {
        let (tf, records) = balanced_stream(nfns, &ops);
        prop_assume!(records.len() >= 4);
        let (syms, clean_events, _) = decode_recovering(&records, &tf);
        let clean = reconstruct_session_recovering(&syms, &clean_events);
        let spec = FaultSpec {
            drop_ppm,
            stuck_ppm,
            flip_ppm,
            flip_bit: None,
            spurious_ppm,
            truncate_ppm,
            refuse_after: None,
        };
        let inj = FaultInjector::new(spec, seed);
        let bytes = inj.corrupt_upload(serialize_raw(&inj.corrupt_records(&records)));
        let (corrupted, trailing) = parse_raw_lossy(&bytes);
        let (s2, events, anoms) = decode_recovering(&corrupted, &tf);
        let mut r = reconstruct_session_recovering(&s2, &events);
        r.note(&anoms);
        if trailing > 0 {
            r.note(&Anomalies { truncations: 1, ..Anomalies::default() });
        }
        // run_time is elapsed minus idle: always within the session.
        prop_assert!(r.run_time() <= r.total_elapsed);
        // A clean balanced stream has tiny deltas; every corrupt delta
        // the clamp accepts is < TIME_JUMP_THRESHOLD, each flip
        // perturbs at most two deltas, and base re-adoption adds at
        // most one more accepted-but-wrong delta per flip.
        let flips = inj.counts().flipped;
        let slack = (2 * flips + 2) * u64::from(hwprof_analysis::TIME_JUMP_THRESHOLD);
        prop_assert!(
            r.total_elapsed <= clean.total_elapsed + slack,
            "elapsed {} vs clean {} + slack {}",
            r.total_elapsed, clean.total_elapsed, slack
        );
        // And the result still renders.
        let report = summary_report(&r, Some(10));
        prop_assert!(report.contains("Elapsed time"));
    }

    /// Recovery-mode streaming over corrupted banks is bit-identical to
    /// batch recovery analysis of the same banks, for any bank split,
    /// worker count and fault schedule — the anomaly counters merge
    /// through the monoid exactly like every other field.
    #[test]
    fn streaming_recovery_matches_batch_recovery(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u8..40), 4..200),
        cuts in prop::collection::vec(0usize..1000, 0..5),
        workers in 1usize..5,
        ppm in 0u32..150_000,
        seed in 0u64..1_000_000,
    ) {
        let (tf, records) = balanced_stream(nfns, &ops);
        prop_assume!(records.len() >= 4);
        let inj = FaultInjector::new(
            FaultSpec { flip_bit: None, refuse_after: None, ..FaultSpec::uniform(ppm) },
            seed,
        );
        let corrupted = inj.corrupt_records(&records);
        // Split into banks at arbitrary points.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| c % (corrupted.len() + 1)).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut banks: Vec<Vec<RawRecord>> = Vec::new();
        let mut prev = 0;
        for p in bounds.into_iter().chain([corrupted.len()]) {
            if p < prev {
                continue;
            }
            banks.push(corrupted[prev..p].to_vec());
            prev = p;
        }
        let mut analyzer = StreamAnalyzer::recovering(&tf, workers);
        let mut feed = analyzer.feed().expect("open pipeline");
        for bank in &banks {
            prop_assert!(hwprof_profiler::BankSink::bank(&mut feed, bank.clone()));
        }
        drop(feed);
        let streamed = analyzer.finish().expect("first finish");
        let batch = batch_recovering(&tf, &banks);
        prop_assert_eq!(streamed, batch);
    }

    /// Fault-corrupted records always stay inside the hardware's
    /// domain: tags 16-bit by construction, times within the 24-bit
    /// counter.
    #[test]
    fn corruption_preserves_record_domain(
        n in 1usize..300,
        ppm in 0u32..1_000_000,
        seed in 0u64..1_000_000,
    ) {
        let input: Vec<RawRecord> = (0..n)
            .map(|i| RawRecord::latch(500 + (i % 40) as u16, i as u64 * 11))
            .collect();
        let inj = FaultInjector::new(
            FaultSpec { flip_bit: None, refuse_after: None, ..FaultSpec::uniform(ppm) },
            seed,
        );
        for r in inj.corrupt_records(&input) {
            prop_assert!(r.time <= TIME_MASK, "time {:#x} overflows the counter", r.time);
        }
    }
}
