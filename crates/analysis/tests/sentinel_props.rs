//! Sentinel property suite: evaluation is deterministic (the same
//! window stream yields a byte-identical journal), the hysteresis
//! state machine is monotone (no Firing without `fire_after`
//! consecutive breaches, no Resolved without `resolve_after`
//! consecutive clears while firing), steady workloads stay silent, and
//! the fleet roll-up equals a plain fold of the member journals.
//!
//! Runs at 256 cases per property (`PROPTEST_CASES` overrides); the CI
//! sentinel job pins exactly that.

use proptest::prelude::*;

use hwprof_analysis::{
    AlertTransition, Detector, FleetAlert, FleetSentinel, MaskVisibility, Reconstruction, Sentinel,
    SentinelConfig, Symbols,
};
use hwprof_profiler::Coverage;
use hwprof_tagfile::{TagFile, TagKind};

/// The net-µs a subject spends in a clear (baseline-rate) window.
const CLEAR_NET: u64 = 50;
/// The net-µs a subject spends in a breaching window: 6× baseline,
/// far past the default ±50% threshold at full coverage.
const BREACH_NET: u64 = 300;

fn syms() -> Symbols {
    let mut tf = TagFile::new(500);
    for n in ["bcopy", "ip_input", "tcp_input"] {
        tf.assign(n, TagKind::Function).expect("fresh");
    }
    Symbols::from_tagfile(&tf)
}

fn sym_of(sy: &Symbols, name: &str) -> usize {
    (0..sy.len())
        .find(|&s| sy.name(s as u32) == name)
        .expect("known symbol")
}

const SUBJECTS: [&str; 3] = ["bcopy", "ip_input", "tcp_input"];

/// One fully-covered 1 ms window where `subject` runs `net` µs and
/// every other function is idle (below the noise floor on both sides,
/// so only `subject` is ever evaluated).
fn window(sy: &Symbols, subject: &str, net: u64) -> Reconstruction {
    let mut r = Reconstruction::empty(sy.clone());
    let s = sym_of(sy, subject);
    r.stats[s].calls = net / 10;
    r.stats[s].net = net;
    r.stats[s].elapsed = net;
    r.total_elapsed = 1_000;
    r.tags = 100;
    r.note_coverage(&Coverage {
        timeline_us: 1_000,
        covered_us: 1_000,
        level_us: [1_000, 0, 0],
        ..Coverage::default()
    });
    r
}

/// Drives a fresh sentinel: `warmup` clear windows, then one window
/// per breach flag (`true` ⇒ the subject runs at the shifted rate).
fn drive(cfg: SentinelConfig, subject: &str, breaches: &[bool]) -> Sentinel {
    let sy = syms();
    let vis = vec![MaskVisibility::UnlessSwitchOnly; sy.len()];
    let mut sent = Sentinel::new(cfg);
    let mut w = 0u64;
    for _ in 0..cfg.warmup_windows {
        let r = window(&sy, subject, CLEAR_NET);
        sent.observe(w, (w + 1) * 1_000, &r, &vis, None);
        w += 1;
    }
    for &b in breaches {
        let net = if b { BREACH_NET } else { CLEAR_NET };
        let r = window(&sy, subject, net);
        sent.observe(w, (w + 1) * 1_000, &r, &vis, None);
        w += 1;
    }
    sent
}

fn config(warmup: u64, fire_after: u32, resolve_after: u32) -> SentinelConfig {
    SentinelConfig::builder()
        .warmup_windows(warmup)
        .fire_after(fire_after)
        .resolve_after(resolve_after)
        .build()
        .expect("valid config")
}

/// The hysteresis contract, simulated independently: the expected
/// (window, transition) sequence for one subject given its breach
/// flags.  Windows are numbered from 0 including warm-up, matching
/// [`drive`].
fn reference_transitions(cfg: &SentinelConfig, breaches: &[bool]) -> Vec<(u64, AlertTransition)> {
    let mut out = Vec::new();
    let (mut streak, mut clears, mut firing) = (0u32, 0u32, false);
    for (i, &b) in breaches.iter().enumerate() {
        let w = cfg.warmup_windows + i as u64;
        if b {
            if firing {
                clears = 0;
                continue;
            }
            streak += 1;
            clears = 0;
            if streak == 1 {
                out.push((w, AlertTransition::Pending));
            }
            if streak >= cfg.fire_after {
                firing = true;
                streak = 0;
                out.push((w, AlertTransition::Firing));
            }
        } else if firing {
            clears += 1;
            if clears >= cfg.resolve_after {
                firing = false;
                clears = 0;
                streak = 0;
                out.push((w, AlertTransition::Resolved));
            }
        } else {
            streak = 0;
        }
    }
    out
}

/// The roll-up contract, folded by hand: machines per (detector,
/// subject) with any Firing transition, input order then sorted,
/// duplicates dropped.
fn reference_roll_up(
    members: &[(u32, &hwprof_analysis::AlertJournal)],
    quorum: u32,
) -> Vec<FleetAlert> {
    let mut by_pair: std::collections::BTreeMap<(Detector, String), Vec<u32>> =
        std::collections::BTreeMap::new();
    for (id, journal) in members {
        for e in journal.entries() {
            if e.transition == AlertTransition::Firing {
                let ms = by_pair.entry((e.detector, e.subject.clone())).or_default();
                if !ms.contains(id) {
                    ms.push(*id);
                }
            }
        }
    }
    by_pair
        .into_iter()
        .map(|((detector, subject), mut machines)| {
            machines.sort_unstable();
            FleetAlert {
                detector,
                subject,
                fleet_level: machines.len() as u32 >= quorum.max(1),
                machines,
            }
        })
        .collect()
}

fn breach_flags() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec((0u8..2).prop_map(|b| b == 1), 0..40)
}

proptest! {
    #![cases(256)]

    /// Same windows in, same journal out — byte for byte.
    #[test]
    fn evaluation_is_deterministic(
        flags in breach_flags(),
        warmup in 1u64..5,
        fire in 1u32..4,
        resolve in 1u32..4,
    ) {
        let cfg = config(warmup, fire, resolve);
        let a = drive(cfg, "bcopy", &flags);
        let b = drive(cfg, "bcopy", &flags);
        prop_assert_eq!(a.describe(), b.describe());
        prop_assert_eq!(a.journal().describe(), b.journal().describe());
        prop_assert_eq!(a.firing(), b.firing());
    }

    /// The journal is exactly the reference hysteresis simulation: a
    /// Firing needs `fire_after` consecutive breaches, a Resolved
    /// needs `resolve_after` consecutive clears while firing, and
    /// every entry carries the exact rate evidence.
    #[test]
    fn hysteresis_matches_reference(
        flags in breach_flags(),
        warmup in 1u64..5,
        fire in 1u32..4,
        resolve in 1u32..4,
    ) {
        let cfg = config(warmup, fire, resolve);
        let sent = drive(cfg, "bcopy", &flags);
        let want = reference_transitions(&cfg, &flags);
        let got: Vec<(u64, AlertTransition)> = sent
            .journal()
            .entries()
            .iter()
            .map(|e| (e.window, e.transition))
            .collect();
        prop_assert_eq!(got, want);
        for e in sent.journal().entries() {
            prop_assert_eq!(e.detector, Detector::RateShift);
            prop_assert_eq!(&e.subject, "bcopy");
            prop_assert_eq!(e.baseline, CLEAR_NET);
            // The window that drove the transition determines the
            // observed rate: breaches carry the shifted rate, a
            // Resolved lands on a clear window.
            let b = flags[(e.window - cfg.warmup_windows) as usize];
            let expect = if b { BREACH_NET } else { CLEAR_NET };
            prop_assert_eq!(e.observed, expect);
            prop_assert_eq!(e.delta, expect as i64 - CLEAR_NET as i64);
        }
    }

    /// A workload that never shifts never alerts, whatever its steady
    /// rate or the thresholds.
    #[test]
    fn steady_workloads_stay_silent(
        net in 20u64..500,
        extra in 0usize..40,
        warmup in 1u64..5,
        fire in 1u32..4,
        resolve in 1u32..4,
    ) {
        let cfg = config(warmup, fire, resolve);
        let sy = syms();
        let vis = vec![MaskVisibility::UnlessSwitchOnly; sy.len()];
        let mut sent = Sentinel::new(cfg);
        for w in 0..cfg.warmup_windows + extra as u64 {
            let r = window(&sy, "bcopy", net);
            sent.observe(w, (w + 1) * 1_000, &r, &vis, None);
        }
        prop_assert!(sent.journal().is_empty(), "{}", sent.describe());
        prop_assert!(sent.firing().is_empty());
    }

    /// The fleet roll-up is a pure fold of the member journals —
    /// grouping, machine dedup, ordering, and quorum promotion all
    /// match the hand-rolled reference.
    #[test]
    fn fleet_roll_up_matches_fold(
        machines in prop::collection::vec((0usize..3, breach_flags()), 1..5),
        quorum in 0u32..5,
        dup_first in 0u8..2,
    ) {
        let cfg = config(2, 2, 2);
        let sentinels: Vec<Sentinel> = machines
            .iter()
            .map(|(subject, flags)| drive(cfg, SUBJECTS[*subject], flags))
            .collect();
        let mut members: Vec<(u32, &hwprof_analysis::AlertJournal)> = sentinels
            .iter()
            .enumerate()
            .map(|(id, s)| (id as u32, s.journal()))
            .collect();
        if dup_first == 1 {
            // The same machine reported twice must not double-count.
            members.push((0, sentinels[0].journal()));
        }
        let got = FleetSentinel::new(quorum).roll_up(&members);
        let want = reference_roll_up(&members, quorum);
        prop_assert_eq!(got, want);
    }
}
