//! Trace-export property suite: for any seeded supervised schedule the
//! Chrome trace must be valid JSON with every `B` closed by a
//! matching-name `E` at a non-earlier timestamp, the folded flamegraph
//! weights must sum to exactly the reconstruction's net-time
//! accounting, and on gap-free schedules the stitched export must be
//! bit-identical to a plain single-pass reconstruction of the same
//! record stream.
//!
//! Runs at 256 cases per property (`PROPTEST_CASES` overrides); the CI
//! fault job pins exactly that.

use proptest::prelude::*;

use hwprof_analysis::{
    reconstruct_session, validate_json, Analyzer, JsonValue, Profile, Reconstruction,
    SessionDecoder, Symbols, TagMap,
};
use hwprof_machine::EpromTap;
use hwprof_profiler::{
    BoardConfig, CaptureSupervisor, FlakyTransport, MemoryTransport, Profiler, RawRecord,
    RetryPolicy, SupervisedRun, SupervisorPolicy, TagMask,
};
use hwprof_tagfile::{TagFile, TagKind};
use hwprof_telemetry::SpanLog;

/// A tag file with `nfns` plain functions and one context-switch tag.
fn supervised_tagfile(nfns: u16) -> (TagFile, Vec<u16>, u16) {
    let mut tf = TagFile::new(500);
    let tags: Vec<u16> = (0..nfns)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    (tf, tags, swtch)
}

/// Drives a [`CaptureSupervisor`] through a random balanced call stream
/// over a deliberately tiny board (overflows, re-arms and ladder moves
/// all happen), optionally journalling every pipeline hop.
#[allow(clippy::too_many_arguments)]
fn drive_supervised(
    nfns: u16,
    ops: &[(u8, u8)],
    policy: SupervisorPolicy,
    capacity: usize,
    fail_ppm: u32,
    seed: u64,
    journal: Option<&SpanLog>,
) -> (TagFile, SupervisedRun) {
    let (tf, tags, swtch) = supervised_tagfile(nfns);
    let board = Profiler::new(BoardConfig {
        capacity,
        time_bits: 24,
    });
    let mask = TagMask::new([swtch]);
    let transport = FlakyTransport::new(MemoryTransport::new(), fail_ppm, seed);
    let mut sup = CaptureSupervisor::new(board, mask, policy, Box::new(transport));
    if let Some(log) = journal {
        sup.set_span_log(log);
    }
    let mut stack: Vec<u16> = Vec::new();
    let mut t = 1_000u64;
    for (i, &(sel, dt)) in ops.iter().enumerate() {
        t += u64::from(dt) + 1;
        if sel % 3 == 0 && !stack.is_empty() {
            let tag = stack.pop().expect("checked");
            sup.on_read(tag + 1, t);
        } else if stack.len() < 10 {
            let tag = tags[sel as usize % tags.len()];
            stack.push(tag);
            sup.on_read(tag, t);
        }
        if i % 13 == 12 {
            t += 2;
            sup.on_read(swtch, t);
            t += 2;
            sup.on_read(swtch + 1, t);
        }
    }
    for tag in stack.into_iter().rev() {
        t += 3;
        sup.on_read(tag + 1, t);
    }
    (tf, sup.finish())
}

/// A small, fast-moving policy shaped by the proptest inputs.
fn policy(drain_budget_us: u64, spill_banks: usize, ladder: bool, seed: u64) -> SupervisorPolicy {
    SupervisorPolicy {
        drain_budget_us,
        drain_fill: None,
        max_session_us: u64::MAX,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_us: 7,
            max_backoff_us: 60,
            jitter_ppm: 0,
        },
        breaker_cooldown_us: 100,
        spill_banks,
        ladder,
        downgrade_fill_us: 300,
        upgrade_fill_us: 2_000,
        auto_hot_top: 2,
        min_coverage_ppm: 0,
        seed,
        ..SupervisorPolicy::default()
    }
}

/// Plain single-pass reconstruction of a raw record stream — the
/// unsupervised formulation the gap-free bit-identity property compares
/// the stitcher against.
fn reconstruct_plain(tf: &TagFile, records: &[RawRecord]) -> Reconstruction {
    let map = TagMap::from_tagfile(tf);
    let syms = Symbols::from_tagfile(tf);
    let mut decoder = SessionDecoder::new(&map);
    let mut events = Vec::new();
    decoder.extend(records, &mut events);
    let mut out = Reconstruction::empty(syms.clone());
    out.merge(reconstruct_session(&syms, &events));
    out
}

/// Walks a parsed Chrome trace, asserting every `B` is closed by an
/// `E` with the same name on the same (pid, tid) lane at a timestamp
/// no earlier than the open — i.e. every span has a non-negative
/// duration — and that nothing is left open at the end.
fn assert_balanced(events: &[JsonValue]) -> Result<(), TestCaseError> {
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<(String, u64)>> =
        std::collections::BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let pid = ev.get("pid").and_then(JsonValue::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(JsonValue::as_u64).unwrap_or(0);
        match ph {
            "B" => stacks
                .entry((pid, tid))
                .or_default()
                .push((name.to_string(), ts)),
            "E" => {
                let top = stacks.entry((pid, tid)).or_default().pop();
                match top {
                    Some((open, opened_at)) => {
                        prop_assert!(open == name, "E closes {name}, open span is {open}");
                        prop_assert!(
                            ts >= opened_at,
                            "negative duration: {name} opened at {opened_at}, closed at {ts}"
                        );
                    }
                    None => prop_assert!(false, "E without a B: {name} on ({pid},{tid})"),
                }
            }
            _ => {}
        }
    }
    for ((pid, tid), stack) in stacks {
        prop_assert!(
            stack.is_empty(),
            "unclosed spans on ({pid},{tid}): {stack:?}"
        );
    }
    Ok(())
}

/// Sum of the per-line weights in a folded-stack export.
fn folded_total(folded: &str) -> u64 {
    folded
        .lines()
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|w| w.parse::<u64>().ok())
        .sum()
}

proptest! {
    #![cases(256)]

    /// For any seeded overflow/retry/ladder schedule — journal on, run
    /// context attached, every overlay and pipeline lane rendered —
    /// the Chrome trace parses as JSON and every `B` nests against a
    /// matching `E` with a non-negative duration; the speedscope
    /// export parses too.
    #[test]
    fn chrome_spans_are_balanced_and_nonnegative(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..200),
        capacity in 4usize..20,
        drain_budget in 1u64..150,
        spill in 0usize..3,
        ladder_sel in 0u8..2,
        fail_ppm in 0u32..400_000,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(drain_budget, spill, ladder_sel == 1, seed);
        let log = SpanLog::new();
        let (tf, run) =
            drive_supervised(nfns, &ops, pol, capacity, fail_ppm, seed, Some(&log));
        let r = Analyzer::for_tagfile(&tf).run(&run).expect("ungated");
        let profile = Profile::new(&r).run(&run).spans(&log);
        let chrome = profile.chrome_trace();
        let parsed = validate_json(&chrome);
        prop_assert!(parsed.is_ok(), "chrome trace is not valid JSON: {:?}", parsed.err());
        let parsed = parsed.expect("checked");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[]);
        prop_assert!(!events.is_empty(), "empty traceEvents");
        assert_balanced(events)?;
        prop_assert!(
            validate_json(&profile.speedscope()).is_ok(),
            "speedscope export is not valid JSON"
        );
    }

    /// The folded flamegraph never invents or loses a microsecond: for
    /// any supervised schedule its weights sum to exactly the
    /// reconstruction's total net time, with or without run context
    /// attached.
    #[test]
    fn folded_total_equals_net_accounting(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..200),
        capacity in 4usize..20,
        drain_budget in 1u64..150,
        ladder_sel in 0u8..2,
        fail_ppm in 0u32..300_000,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(drain_budget, 2, ladder_sel == 1, seed);
        let (tf, run) = drive_supervised(nfns, &ops, pol, capacity, fail_ppm, seed, None);
        let r = Analyzer::for_tagfile(&tf).run(&run).expect("ungated");
        let net: u64 = r.stats.iter().map(|a| a.net).sum();
        prop_assert_eq!(folded_total(&Profile::new(&r).folded()), net);
        prop_assert_eq!(folded_total(&Profile::new(&r).run(&run).folded()), net);
    }

    /// On gap-free schedules (a board that never fills) the supervised
    /// stitcher is invisible: exporting its reconstruction is
    /// bit-identical — all three formats — to exporting a plain
    /// single-pass reconstruction of the same record stream.
    #[test]
    fn gap_free_export_matches_plain_reconstruction(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..200),
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(50, 2, false, seed);
        let (tf, run) = drive_supervised(nfns, &ops, pol, 4096, 0, seed, None);
        prop_assert!(run.gaps.is_empty(), "oversized board still gapped");
        let stitched = Analyzer::for_tagfile(&tf).run(&run).expect("ungated");
        let records: Vec<RawRecord> = run
            .sessions
            .iter()
            .flat_map(|s| s.records.iter().copied())
            .collect();
        let plain = reconstruct_plain(&tf, &records);
        // Compare WITHOUT `.run()` attachment: the supervised timeline
        // re-basing is presentation, not data, and the plain side has
        // no run to attach.
        let a = Profile::new(&stitched).name("gap-free");
        let b = Profile::new(&plain).name("gap-free");
        prop_assert_eq!(a.chrome_trace(), b.chrome_trace());
        prop_assert_eq!(a.speedscope(), b.speedscope());
        prop_assert_eq!(a.folded(), b.folded());
    }
}
