//! Pipeline validation: capture a real simulated-kernel run with the
//! Profiler, reconstruct it, and check the result against the
//! simulator's zero-perturbation ground-truth oracle.
//!
//! This is the test no real 1993 hardware could run: the oracle sees
//! exact cycle times, so any disagreement beyond hardware quantization is
//! an analysis bug.

use hwprof_analysis::{decode, summary_report, trace_report, Analyzer, TraceStyle};
use hwprof_kernel386::funcs::KFn;
use hwprof_kernel386::hosts::TcpBlaster;
use hwprof_kernel386::kern_exec::ExecImage;
use hwprof_kernel386::kernel::Kernel;
use hwprof_kernel386::sim::SimBuilder;
use hwprof_kernel386::syscall::{sys_execve, sys_read, sys_sleep, sys_socket, sys_vfork, sys_wait};
use hwprof_kernel386::user::{ucompute, utouch_pages};
use hwprof_kernel386::wire_fmt::IPPROTO_TCP;
use hwprof_profiler::{BoardConfig, Profiler};

/// Runs a network-receive workload with a (wide, lossless) board and
/// returns (kernel, reconstruction).
fn captured_run(
    build: impl FnOnce(SimBuilder) -> SimBuilder,
    spawn: impl FnOnce(&hwprof_kernel386::sim::Sim),
) -> (Kernel, hwprof_analysis::Reconstruction) {
    let board = Profiler::new(BoardConfig::wide());
    board.set_switch(true);
    let image = Kernel::full_image();
    let tagfile = image.tagfile.clone();
    let sim = build(
        SimBuilder::new()
            .image(image)
            .profiler(Box::new(board.clone())),
    )
    .build();
    spawn(&sim);
    let k = sim.run();
    assert!(!board.leds().overflow, "capture RAM overflowed");
    let (syms, events) = decode(&board.records(), &tagfile);
    let r = Analyzer::new(&syms).session(&events).expect("ungated");
    (k, r)
}

#[test]
fn reconstruction_matches_oracle_for_network_receive() {
    let (k, r) = captured_run(
        |b| b.ether(Box::new(TcpBlaster::paced(5001, 1460, 48 * 1024, 2500))),
        |sim| {
            sim.spawn(
                "receiver",
                Box::new(|ctx| {
                    let fd = sys_socket(ctx, IPPROTO_TCP, 5001);
                    let mut got = 0usize;
                    while got < 48 * 1024 {
                        got += sys_read(ctx, fd, 4096).len();
                    }
                }),
            );
        },
    );
    // Call counts must match the oracle exactly for the hot functions.
    for f in [
        KFn::Bcopy,
        KFn::InCksum,
        KFn::Splnet,
        KFn::Splx,
        KFn::TcpInput,
        KFn::Ipintr,
        KFn::Werint,
        KFn::Weget,
        KFn::Weintr,
        KFn::InPcblookup,
        KFn::Sbappend,
        KFn::Hardclock,
    ] {
        let truth = k.trace.truth(f);
        let got = r.agg(f.name()).unwrap_or_default();
        assert_eq!(
            got.calls,
            truth.calls,
            "{}: analysis {} vs oracle {}",
            f.name(),
            got.calls,
            truth.calls
        );
    }
    // Net times agree within quantization: generous bound of 4 us per
    // call plus 2%.
    for f in [KFn::Bcopy, KFn::InCksum, KFn::TcpInput, KFn::Soreceive] {
        let truth = k.trace.truth(f);
        let got = r.agg(f.name()).unwrap_or_default();
        let truth_us = truth.net / 40;
        let tol = 4 * truth.calls + truth_us / 50 + 4;
        let diff = truth_us.abs_diff(got.net);
        assert!(
            diff <= tol,
            "{}: net {} us vs oracle {} us (tol {})",
            f.name(),
            got.net,
            truth_us,
            tol
        );
    }
    // Structural counters.
    assert_eq!(r.unknown_tags, 0);
    assert!(r.births >= 1, "the receiver's birth was seen");
    assert!(r.total_elapsed > 50_000);
}

#[test]
fn reconstruction_handles_forkexec_switch_storms() {
    let (k, r) = captured_run(
        |b| b,
        |sim| {
            sim.spawn(
                "parent",
                Box::new(|ctx| {
                    sys_execve(ctx, &ExecImage::shell());
                    utouch_pages(ctx, 30, true);
                    for _ in 0..2 {
                        let _ = sys_vfork(
                            ctx,
                            "child",
                            Box::new(|ctx| {
                                sys_execve(ctx, &ExecImage::small_util());
                                utouch_pages(ctx, 6, true);
                                ucompute(ctx, 500);
                            }),
                        );
                        let _ = sys_wait(ctx);
                    }
                }),
            );
        },
    );
    for f in [
        KFn::PmapPte,
        KFn::PmapRemove,
        KFn::PmapProtect,
        KFn::PmapEnter,
        KFn::VmFault,
        KFn::Fork1,
        KFn::Execve,
        KFn::Bzero,
    ] {
        let truth = k.trace.truth(f);
        let got = r.agg(f.name()).unwrap_or_default();
        assert_eq!(got.calls, truth.calls, "{} call count", f.name());
    }
    // pmap_pte dominates call counts, as in the paper.
    let pte = r.agg("pmap_pte").unwrap();
    assert!(pte.calls > 1500, "pmap_pte calls {}", pte.calls);
    // Context switches were resolved (vfork parent <-> child).
    assert!(r.context_switches >= 2);
    assert_eq!(r.unknown_tags, 0);
}

#[test]
fn idle_accounting_matches_scheduler() {
    let (k, r) = captured_run(
        |b| b,
        |sim| {
            sim.spawn(
                "sleepy",
                Box::new(|ctx| {
                    for _ in 0..5 {
                        sys_sleep(ctx, 2);
                        ucompute(ctx, 2_000);
                    }
                }),
            );
        },
    );
    let kernel_idle_us = k.sched.idle_cycles / 40;
    // The analyzer's idle includes swtch body time (~25 us per switch).
    let slack = 40 * (r.swtch_calls + r.context_switches + 2);
    let lo = kernel_idle_us.saturating_sub(slack);
    let hi = kernel_idle_us + slack;
    assert!(
        (lo..=hi).contains(&r.idle),
        "analysis idle {} vs kernel idle {} (slack {})",
        r.idle,
        kernel_idle_us,
        slack
    );
    // Idle dominates this workload.
    assert!(r.idle > r.total_elapsed / 2);
}

#[test]
fn reports_render_from_a_real_capture() {
    let (_k, r) = captured_run(
        |b| b.ether(Box::new(TcpBlaster::paced(5001, 1460, 16 * 1024, 2500))),
        |sim| {
            sim.spawn(
                "receiver",
                Box::new(|ctx| {
                    let fd = sys_socket(ctx, IPPROTO_TCP, 5001);
                    let mut got = 0usize;
                    while got < 16 * 1024 {
                        got += sys_read(ctx, fd, 4096).len();
                    }
                }),
            );
        },
    );
    let summary = summary_report(&r, Some(20));
    assert!(summary.contains("Elapsed time ="));
    assert!(summary.contains("bcopy"));
    assert!(summary.contains("in_cksum"));
    assert!(summary.contains("% real"));
    let trace = trace_report(&r, &TraceStyle::default());
    assert!(trace.contains("-> weintr"));
    assert!(trace.contains("-> ipintr"));
    assert!(trace.contains("-> tcp_input"));
    assert!(trace.contains("Context switch in"));
    assert!(trace.contains("== MGET"), "inline mbuf trigger visible");
}
