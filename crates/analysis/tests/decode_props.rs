//! Columnar-decode bit-identity property suite: the batch SoA decoder
//! ([`ColumnarDecoder`]) must produce byte-for-byte the same event
//! stream and anomaly counts as the record-at-a-time
//! [`SessionDecoder`] oracle — over arbitrary chunk boundaries, across
//! session resets, and in recovering mode on seeded faulty streams
//! with duplicates, time corruption, and unknown tags.
//!
//! Runs at 256 cases per property (`PROPTEST_CASES` overrides); the CI
//! property job pins exactly that.

use proptest::prelude::*;

use hwprof_analysis::{
    decode, decode_recovering, decode_recovering_scalar, decode_scalar, Anomalies, ColumnarDecoder,
    DenseTagTable, Event, SessionDecoder, TagMap,
};
use hwprof_profiler::{FaultInjector, FaultSpec, RawRecord};
use hwprof_tagfile::{TagFile, TagKind};

/// A capture that exercises every tag class the decoder can see:
/// functions (entry + exit tags), a context-switch pair, inline
/// counters, and — via `sel` overflow — tags no tag file entry claims.
/// Times advance by `dt`, so large `dt` values cross 24-bit wraps.
fn mixed_stream(nfns: u16, ops: &[(u8, u32)]) -> (TagFile, Vec<RawRecord>) {
    let mut tf = TagFile::new(100);
    let fns: Vec<u16> = (0..nfns.max(1))
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    let mark = tf.assign("MARK", TagKind::Inline).expect("fresh");
    let mut records = Vec::new();
    let mut t = 0u64;
    for &(sel, dt) in ops {
        t += u64::from(dt);
        let tag = match sel % 8 {
            0 => fns[usize::from(sel / 8) % fns.len()] + 1, // exit
            1 => swtch,
            2 => swtch + 1,
            3 => mark,
            4 => 9000 + u16::from(sel), // unknown tag
            _ => fns[usize::from(sel) % fns.len()],
        };
        records.push(RawRecord::latch(tag, t));
    }
    (tf, records)
}

/// Splits `records` at the given (arbitrary, possibly colliding) cut
/// points, producing chunks that may be empty.
fn chunked(records: &[RawRecord], cuts: &[usize]) -> Vec<Vec<RawRecord>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (records.len() + 1)).collect();
    bounds.sort_unstable();
    let mut chunks = Vec::new();
    let mut prev = 0;
    for b in bounds.into_iter().chain([records.len()]) {
        let b = b.max(prev);
        chunks.push(records[prev..b].to_vec());
        prev = b;
    }
    chunks
}

/// Scalar strict decode over chunks (the oracle).
fn scalar_strict(map: &TagMap, chunks: &[Vec<RawRecord>]) -> Vec<Event> {
    let mut d = SessionDecoder::new(map);
    let mut out = Vec::new();
    for c in chunks {
        d.extend(c, &mut out);
    }
    out
}

/// Scalar recovering decode over chunks (the oracle), with anomalies.
fn scalar_recovering(map: &TagMap, chunks: &[Vec<RawRecord>]) -> (Vec<Event>, Anomalies) {
    let mut d = SessionDecoder::new(map);
    let mut out = Vec::new();
    for c in chunks {
        d.extend_recovering(c, &mut out);
    }
    (out, d.anomalies())
}

/// Seeds adjacent duplicates into a stream (a stuck address counter
/// stores the same cell twice) so the recovering dedup path is hit
/// deterministically, not only when the fault injector happens to.
fn with_duplicates(records: &[RawRecord], every: usize) -> Vec<RawRecord> {
    let mut out = Vec::with_capacity(records.len() * 2);
    for (i, r) in records.iter().enumerate() {
        out.push(*r);
        if every > 0 && i % every == 0 {
            out.push(*r);
        }
    }
    out
}

proptest! {
    #![cases(256)]

    /// Strict mode: columnar decode over arbitrary chunk boundaries is
    /// bit-identical to the scalar oracle over the same chunks.
    #[test]
    fn columnar_strict_matches_scalar_over_chunks(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u32..(1 << 24)), 0..400),
        cuts in prop::collection::vec(0usize..1000, 0..8),
    ) {
        let (tf, records) = mixed_stream(nfns, &ops);
        let chunks = chunked(&records, &cuts);
        let map = TagMap::from_tagfile(&tf);
        let oracle = scalar_strict(&map, &chunks);

        let table = DenseTagTable::from_tagfile(&tf);
        let mut d = ColumnarDecoder::new(&table);
        let mut got = Vec::new();
        for c in &chunks {
            d.extend(c, &mut got);
        }
        prop_assert_eq!(got, oracle);
    }

    /// Recovering mode on a fault-corrupted stream with seeded
    /// duplicates: events AND per-class anomaly counts are
    /// bit-identical to the scalar oracle, over arbitrary chunks.
    #[test]
    fn columnar_recovering_matches_scalar_on_faulty_streams(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u32..5000), 0..300),
        dup_every in 0usize..20,
        ppm in 0u32..400_000,
        seed in 0u64..1_000_000,
        cuts in prop::collection::vec(0usize..1000, 0..8),
    ) {
        let (tf, clean) = mixed_stream(nfns, &ops);
        let inj = FaultInjector::new(
            FaultSpec { flip_bit: None, refuse_after: None, ..FaultSpec::uniform(ppm) },
            seed,
        );
        let faulty = with_duplicates(&inj.corrupt_records(&clean), dup_every);
        let chunks = chunked(&faulty, &cuts);
        let map = TagMap::from_tagfile(&tf);
        let (oracle, oracle_anoms) = scalar_recovering(&map, &chunks);

        let table = DenseTagTable::from_tagfile(&tf);
        let mut d = ColumnarDecoder::new(&table);
        let mut got = Vec::new();
        for c in &chunks {
            d.extend_recovering(c, &mut got);
        }
        prop_assert_eq!(got, oracle);
        prop_assert_eq!(d.anomalies(), oracle_anoms);
    }

    /// Chunking is invisible: for a faulty stream, every single split
    /// point yields the same events as the unsplit batch decode.
    #[test]
    fn recovering_decode_is_split_invariant(
        nfns in 1u16..4,
        ops in prop::collection::vec((0u8..=255, 0u32..5000), 0..60),
        ppm in 0u32..400_000,
        seed in 0u64..1_000_000,
    ) {
        let (tf, clean) = mixed_stream(nfns, &ops);
        let inj = FaultInjector::new(
            FaultSpec { flip_bit: None, refuse_after: None, ..FaultSpec::uniform(ppm) },
            seed,
        );
        let faulty = inj.corrupt_records(&clean);
        let table = DenseTagTable::from_tagfile(&tf);
        let mut whole = ColumnarDecoder::new(&table);
        let mut batch = Vec::new();
        whole.extend_recovering(&faulty, &mut batch);
        for split in 0..=faulty.len() {
            let mut d = ColumnarDecoder::new(&table);
            let mut out = Vec::new();
            d.extend_recovering(&faulty[..split], &mut out);
            d.extend_recovering(&faulty[split..], &mut out);
            prop_assert!(out == batch, "events diverge at split {}", split);
            prop_assert!(
                d.anomalies() == whole.anomalies(),
                "anomalies diverge at split {}", split
            );
        }
    }

    /// `reset` restores a decoder to factory state: a reused decoder
    /// (the analyzer/stream worker pattern) decodes a second session
    /// exactly as a fresh one would.
    #[test]
    fn reset_is_factory_fresh(
        nfns in 1u16..4,
        ops_a in prop::collection::vec((0u8..=255, 0u32..5000), 0..120),
        ops_b in prop::collection::vec((0u8..=255, 0u32..5000), 0..120),
        ppm in 0u32..400_000,
        seed in 0u64..1_000_000,
    ) {
        let (tf, a) = mixed_stream(nfns, &ops_a);
        let (_, b) = mixed_stream(nfns, &ops_b);
        let inj = FaultInjector::new(
            FaultSpec { flip_bit: None, refuse_after: None, ..FaultSpec::uniform(ppm) },
            seed,
        );
        let b = inj.corrupt_records(&b);
        let table = DenseTagTable::from_tagfile(&tf);

        let mut reused = ColumnarDecoder::new(&table);
        let mut scratch = Vec::new();
        reused.extend_recovering(&a, &mut scratch);
        reused.reset();
        let mut got = Vec::new();
        reused.extend_recovering(&b, &mut got);

        let mut fresh = ColumnarDecoder::new(&table);
        let mut want = Vec::new();
        fresh.extend_recovering(&b, &mut want);
        prop_assert_eq!(got, want);
        prop_assert_eq!(reused.anomalies(), fresh.anomalies());
    }

    /// The public one-shot entry points agree wholesale: `decode` vs
    /// `decode_scalar`, `decode_recovering` vs its scalar twin —
    /// symbols, events, and anomalies.
    #[test]
    fn one_shot_entry_points_agree(
        nfns in 1u16..6,
        ops in prop::collection::vec((0u8..=255, 0u32..(1 << 24)), 0..300),
        ppm in 0u32..400_000,
        seed in 0u64..1_000_000,
    ) {
        let (tf, clean) = mixed_stream(nfns, &ops);
        let (syms_c, ev_c) = decode(&clean, &tf);
        let (syms_s, ev_s) = decode_scalar(&clean, &tf);
        prop_assert_eq!(syms_c, syms_s);
        prop_assert_eq!(ev_c, ev_s);

        let inj = FaultInjector::new(
            FaultSpec { flip_bit: None, refuse_after: None, ..FaultSpec::uniform(ppm) },
            seed,
        );
        let faulty = inj.corrupt_records(&clean);
        let (_, ev_c, an_c) = decode_recovering(&faulty, &tf);
        let (_, ev_s, an_s) = decode_recovering_scalar(&faulty, &tf);
        prop_assert_eq!(ev_c, ev_s);
        prop_assert_eq!(an_c, an_s);
    }
}
