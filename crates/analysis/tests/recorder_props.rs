//! Flight-recorder property suite: for any seeded overflow/fault
//! schedule each retained window's rollup must be bit-identical to a
//! one-shot analysis of the same span, a range query must equal the
//! monoid fold of its windows, the eviction ledger must stay exact
//! (`covered + dark + evicted == elapsed`, zero slack), and diffs must
//! be antisymmetric.
//!
//! Runs at 256 cases per property (`PROPTEST_CASES` overrides); the CI
//! fault job pins exactly that.

use proptest::prelude::*;

use hwprof_analysis::{
    ColumnarDecoder, DenseTagTable, Event, FlightRecorder, Reconstruction, SessionRecon, Symbols,
    WindowRollup,
};
use hwprof_machine::EpromTap;
use hwprof_profiler::{
    BoardConfig, CaptureSupervisor, Coverage, FlakyTransport, GapCause, MemoryTransport, Profiler,
    RecorderConfig, RetryPolicy, SupervisedRun, SupervisorPolicy, TagMask,
};
use hwprof_tagfile::{TagFile, TagKind};

/// A tag file with `nfns` plain functions and one context-switch tag.
fn supervised_tagfile(nfns: u16) -> (TagFile, Vec<u16>, u16) {
    let mut tf = TagFile::new(500);
    let tags: Vec<u16> = (0..nfns)
        .map(|i| {
            tf.assign(&format!("f{i}"), TagKind::Function)
                .expect("fresh")
        })
        .collect();
    let swtch = tf.assign("swtch", TagKind::ContextSwitch).expect("fresh");
    (tf, tags, swtch)
}

/// Drives a [`CaptureSupervisor`] with a [`FlightRecorder`] attached as
/// its live session sink through a random balanced call stream over a
/// deliberately tiny board, then seals the recorder on the finished
/// run.  The recorder therefore sees sessions in *delivery* order —
/// spill-shelf permutations included — while the returned run holds
/// them in bank order for the one-shot oracle.
#[allow(clippy::too_many_arguments)]
fn drive_recorded(
    nfns: u16,
    ops: &[(u8, u8)],
    policy: SupervisorPolicy,
    capacity: usize,
    fail_ppm: u32,
    outage: Option<(u64, u64)>,
    seed: u64,
    cfg: RecorderConfig,
) -> (TagFile, SupervisedRun, FlightRecorder) {
    let (tf, tags, swtch) = supervised_tagfile(nfns);
    let board = Profiler::new(BoardConfig {
        capacity,
        time_bits: 24,
    });
    let mask = TagMask::new([swtch]);
    let mut transport = FlakyTransport::new(MemoryTransport::new(), fail_ppm, seed);
    if let Some((start, end)) = outage {
        transport = transport.with_outage(start, end.max(start));
    }
    let mut sup = CaptureSupervisor::new(board, mask, policy, Box::new(transport));
    let rec = FlightRecorder::new(&tf, cfg);
    sup.set_session_sink(Box::new(rec.clone()));
    let mut stack: Vec<u16> = Vec::new();
    let mut t = 1_000u64;
    for (i, &(sel, dt)) in ops.iter().enumerate() {
        t += u64::from(dt) + 1;
        if sel % 3 == 0 && !stack.is_empty() {
            let tag = stack.pop().expect("checked");
            sup.on_read(tag + 1, t);
        } else if stack.len() < 10 {
            let tag = tags[sel as usize % tags.len()];
            stack.push(tag);
            sup.on_read(tag, t);
        }
        if i % 13 == 12 {
            t += 2;
            sup.on_read(swtch, t);
            t += 2;
            sup.on_read(swtch + 1, t);
        }
    }
    for tag in stack.into_iter().rev() {
        t += 3;
        sup.on_read(tag + 1, t);
    }
    let run = sup.finish();
    rec.seal(&run);
    (tf, run, rec)
}

/// A small, fast-moving policy shaped by the proptest inputs.
fn policy(drain_budget_us: u64, spill_banks: usize, ladder: bool, seed: u64) -> SupervisorPolicy {
    SupervisorPolicy {
        drain_budget_us,
        drain_fill: None,
        max_session_us: u64::MAX,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_us: 7,
            max_backoff_us: 60,
            jitter_ppm: 0,
        },
        breaker_cooldown_us: 80,
        spill_banks,
        ladder,
        downgrade_fill_us: 300,
        upgrade_fill_us: 2_000,
        auto_hot_top: 2,
        min_coverage_ppm: 0,
        seed,
        ..SupervisorPolicy::default()
    }
}

/// A recorder config straight from the builder (also exercising it).
fn config(window_us: u64, retain: usize) -> RecorderConfig {
    RecorderConfig::builder()
        .window_us(window_us)
        .retain(retain)
        .build()
        .expect("non-degenerate config")
}

/// The one-shot oracle for one retained window: decode every session of
/// the *finished* run in bank order, keep only the events falling in
/// the window, rebase them to the window origin and fold them through
/// the same strict reconstruction any batch analysis uses; then build
/// the window's coverage directly from the run's session/gap spans.
fn window_oracle(
    tf: &TagFile,
    run: &SupervisedRun,
    rollup: &WindowRollup,
    wd: u64,
) -> Reconstruction {
    let table = DenseTagTable::from_tagfile(tf);
    let syms = Symbols::from_tagfile(tf);
    let w = rollup.index;
    let lo = w * wd;
    let hi = lo + wd;
    let (ws, we) = (rollup.start_us, rollup.end_us);
    let mut out = Reconstruction::empty(syms.clone());
    let mut recon = SessionRecon::new(&syms, false);
    for s in &run.sessions {
        let mut decoder = ColumnarDecoder::new(&table);
        let mut events = Vec::new();
        decoder.extend(&s.records, &mut events);
        let frag: Vec<Event> = events
            .iter()
            .filter(|e| {
                let t = s.start_us + e.t;
                lo <= t && t < hi
            })
            .map(|e| Event {
                t: s.start_us + e.t - lo,
                kind: e.kind,
            })
            .collect();
        if !frag.is_empty() {
            recon.session_into(&frag, &mut out);
        }
        let anoms = decoder.anomalies();
        if !anoms.is_clean() && s.start_us / wd == w {
            out.note(&anoms);
        }
    }
    let mut cov = Coverage::empty();
    cov.timeline_us = we - ws;
    for s in &run.sessions {
        let a = s.start_us.max(ws);
        let b = s.end_us.min(we);
        if b > a {
            cov.covered_us += b - a;
            cov.level_us[s.level.idx()] += b - a;
        }
    }
    cov.gap_us = cov.timeline_us - cov.covered_us;
    for g in &run.gaps {
        if g.end_us > g.start_us && g.start_us / wd <= w && w <= (g.end_us - 1) / wd {
            cov.gaps += 1;
            if g.cause == GapCause::Overflow {
                cov.overflow_gaps += 1;
            }
        }
    }
    out.note_coverage(&cov);
    out
}

proptest! {
    #![cases(256)]

    /// Every retained window's rollup is bit-identical — stats, trace,
    /// anomalies, coverage, the whole monoid — to a one-shot analysis
    /// of the same clipped span, no matter how overflows, faults and
    /// the spill shelf sliced and permuted delivery.  Querying twice is
    /// also bit-stable (the fold cache is invisible).
    #[test]
    fn window_rollup_matches_one_shot_analysis(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..250),
        capacity in 4usize..20,
        drain_budget in 1u64..150,
        spill in 0usize..3,
        ladder_sel in 0u8..2,
        fail_ppm in 0u32..400_000,
        window_us in 40u64..400,
        retain in 2usize..32,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(drain_budget, spill, ladder_sel == 1, seed);
        let cfg = config(window_us, retain);
        let (tf, run, rec) =
            drive_recorded(nfns, &ops, pol, capacity, fail_ppm, None, seed, cfg);
        for w in rec.retained() {
            let rollup = rec.window(w);
            prop_assert!(rollup.is_some(), "retained window {w} not foldable");
            let rollup = rollup.expect("checked");
            let oracle = window_oracle(&tf, &run, &rollup, window_us);
            prop_assert!(
                rollup.recon == oracle,
                "window {w} diverged from its one-shot analysis"
            );
            let again = rec.window(w).expect("still retained");
            prop_assert!(again.recon == rollup.recon, "window {w} query unstable");
        }
    }

    /// A range query is exactly the monoid fold of its windows, and the
    /// full retained range reproduces every per-function total summed
    /// across windows.
    #[test]
    fn range_query_is_the_fold_of_its_windows(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..250),
        capacity in 4usize..20,
        fail_ppm in 0u32..300_000,
        window_us in 40u64..400,
        retain in 2usize..32,
        lo_sel in 0u64..64,
        hi_sel in 0u64..64,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(30, 2, false, seed);
        let cfg = config(window_us, retain);
        let (_tf, _run, rec) =
            drive_recorded(nfns, &ops, pol, capacity, fail_ppm, None, seed, cfg);
        let retained = rec.retained();
        prop_assume!(!retained.is_empty());
        let span = retained.end - retained.start;
        let mut a = retained.start + lo_sel % span;
        let mut b = retained.start + hi_sel % span;
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let b = b + 1; // half-open, non-empty
        let merged = rec.range(a..b).expect("in-ring range");
        let mut fold = rec.window(a).expect("retained").recon;
        for w in a + 1..b {
            fold.merge(rec.window(w).expect("retained").recon);
        }
        prop_assert!(merged.recon == fold, "range {a}..{b} diverged from window fold");
        prop_assert_eq!(merged.index, a);
        // Out-of-ring ranges refuse rather than silently truncate.
        prop_assert!(rec.range(retained.end..retained.end + 1).is_none());
        prop_assert!(rec.range(a..a).is_none());
    }

    /// The eviction ledger is exact at seal for any schedule — faults,
    /// outages, retention small enough to force evictions: retained
    /// covered + retained dark + evicted spans partition the elapsed
    /// timeline with zero slack, and the window count agrees with the
    /// query surface.
    #[test]
    fn ledger_stays_exact_under_eviction_and_faults(
        nfns in 1u16..4,
        ops in prop::collection::vec((0u8..=255, 0u8..25), 20..250),
        capacity in 4usize..12,
        spill in 0usize..3,
        fail_ppm in 0u32..400_000,
        outage_start in 0u64..6,
        outage_len in 0u64..8,
        window_us in 20u64..120,
        retain in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(20, spill, false, seed);
        let cfg = config(window_us, retain);
        let outage = (outage_len > 0).then_some((outage_start, outage_start + outage_len));
        let (_tf, run, rec) =
            drive_recorded(nfns, &ops, pol, capacity, fail_ppm, outage, seed, cfg);
        let ledger = rec.ledger();
        prop_assert!(
            ledger.is_exact(),
            "ledger broke: {}",
            ledger.describe()
        );
        let retained = rec.retained();
        prop_assert_eq!(ledger.windows, retained.end - retained.start);
        prop_assert!(ledger.windows <= retain as u64);
        // The retained ring never out-claims the run's own ledger.
        prop_assert!(ledger.covered_us <= run.coverage.covered_us);
        // Folding every window must not perturb the ledger.
        for w in retained {
            let _ = rec.window(w);
        }
        prop_assert_eq!(rec.ledger(), ledger);
    }

    /// Diffs are antisymmetric: `diff(b, a)` is `diff(a, b)` with every
    /// exact delta negated, the two sides swapped, and the identical
    /// row ranking (`|d_net|` is direction-blind).
    #[test]
    fn diff_is_antisymmetric(
        nfns in 1u16..5,
        ops in prop::collection::vec((0u8..=255, 0u8..30), 8..250),
        capacity in 4usize..20,
        fail_ppm in 0u32..300_000,
        window_us in 40u64..400,
        retain in 2usize..32,
        a_sel in 0u64..64,
        b_sel in 0u64..64,
        seed in 0u64..1_000_000,
    ) {
        let pol = policy(30, 2, true, seed);
        let cfg = config(window_us, retain);
        let (_tf, _run, rec) =
            drive_recorded(nfns, &ops, pol, capacity, fail_ppm, None, seed, cfg);
        let retained = rec.retained();
        prop_assume!(!retained.is_empty());
        let span = retained.end - retained.start;
        let a = retained.start + a_sel % span;
        let b = retained.start + b_sel % span;
        let fwd = rec.diff(a, b).expect("both retained");
        let rev = rec.diff(b, a).expect("both retained");
        prop_assert_eq!(fwd.a_span, rev.b_span);
        prop_assert_eq!(fwd.b_span, rev.a_span);
        prop_assert_eq!(fwd.d_anomalies, -rev.d_anomalies);
        prop_assert_eq!(fwd.rows.len(), rev.rows.len());
        for (f, r) in fwd.rows.iter().zip(&rev.rows) {
            prop_assert!(f.name == r.name, "row ranking diverged between directions");
            prop_assert_eq!(f.a, r.b);
            prop_assert_eq!(f.b, r.a);
            prop_assert_eq!(f.d_calls, -r.d_calls);
            prop_assert_eq!(f.d_net, -r.d_net);
            prop_assert_eq!(f.d_elapsed, -r.d_elapsed);
            prop_assert_eq!(f.d_inline, -r.d_inline);
            prop_assert_eq!(f.a_rate, r.b_rate);
            prop_assert_eq!(f.b_rate, r.a_rate);
        }
        // A self-diff is all zeros and never ranks a mover.
        let zero = rec.diff(a, a).expect("retained");
        prop_assert_eq!(zero.d_anomalies, 0);
        for row in &zero.rows {
            prop_assert_eq!(row.d_net, 0);
            prop_assert_eq!(row.d_calls, 0);
        }
        prop_assert!(zero.movers(usize::MAX).is_empty());
        // An evicted window refuses to diff.
        prop_assert!(rec.diff(a, rec.retained().end).is_none());
    }
}
