//! The Heisenberg experiment: sampling granularity vs perturbation.

use hwprof_baseline::sampling_accuracy;
use hwprof_kernel386::hosts::TcpBlaster;
use hwprof_kernel386::kernel::KernelConfig;
use hwprof_kernel386::sim::SimBuilder;
use hwprof_kernel386::syscall::{sys_read, sys_socket};
use hwprof_kernel386::wire_fmt::IPPROTO_TCP;

fn run_network(clock_hz: u64, sample: bool) -> hwprof_kernel386::kernel::Kernel {
    let config = KernelConfig {
        clock_hz,
        ..KernelConfig::default()
    };
    let sim = SimBuilder::new()
        .config(config)
        .ether(Box::new(TcpBlaster::paced(5001, 1460, 48 * 1024, 2500)))
        .build();
    if sample {
        // Arm the sampler before anything runs.
        // (Direct state poke: the profil() syscall equivalent.)
        sim.spawn(
            "receiver",
            Box::new(|ctx| {
                ctx.k.sampling.enabled = true;
                let fd = sys_socket(ctx, IPPROTO_TCP, 5001);
                let mut got = 0usize;
                while got < 48 * 1024 {
                    got += sys_read(ctx, fd, 4096).len();
                }
            }),
        );
    } else {
        sim.spawn(
            "receiver",
            Box::new(|ctx| {
                let fd = sys_socket(ctx, IPPROTO_TCP, 5001);
                let mut got = 0usize;
                while got < 48 * 1024 {
                    got += sys_read(ctx, fd, 4096).len();
                }
            }),
        );
    }
    sim.run()
}

#[test]
fn finer_sampling_covers_more_but_stays_biased() {
    let coarse = run_network(100, true);
    let fine = run_network(5000, true);
    let sc = sampling_accuracy(&coarse);
    let sf = sampling_accuracy(&fine);
    assert!(sf.samples > sc.samples * 10);
    // Coverage improves with rate: fewer functions invisible.
    assert!(
        sf.missed_functions < sc.missed_functions,
        "fine missed {} vs coarse {}",
        sf.missed_functions,
        sc.missed_functions
    );
    assert!(sf.top5_overlap >= sc.top5_overlap);
    assert!(sc.missed_functions > 5, "missed {}", sc.missed_functions);
    // The two giants are correctly ranked at the fine rate...
    use hwprof_baseline::sampling::{sampled_share, true_share};
    use hwprof_kernel386::funcs::KFn;
    assert!(sampled_share(&fine, KFn::InCksum) > 0.2);
    assert!(sampled_share(&fine, KFn::Bcopy) > 0.12);
    // ...but the systematic bias the paper's pseudo-random-clock remark
    // targets does NOT average out: ticks deferred by spl-masked
    // critical sections land when interrupts re-enable, so `splx` stays
    // oversampled no matter how many samples are taken.
    let splx_true = true_share(&fine, KFn::Splx);
    let splx_sampled = sampled_share(&fine, KFn::Splx);
    assert!(
        splx_sampled > splx_true * 1.2,
        "splx sampled {splx_sampled:.4} vs true {splx_true:.4}"
    );
    // And the clock path's own cost is invisible to itself, growing
    // with the rate.
    assert!(sf.self_blind_us > sc.self_blind_us * 4);
}

#[test]
fn finer_sampling_perturbs_more() {
    // Same workload, same virtual work: compare total cycles with the
    // profiling clock at 100 Hz vs 5 kHz.
    let slow = run_network(100, true);
    let fast = run_network(5000, true);
    // Identical bytes moved.
    assert_eq!(slow.stats.packets_in, fast.stats.packets_in);
    let slow_run = slow.machine.now - slow.sched.idle_cycles;
    let fast_run = fast.machine.now - fast.sched.idle_cycles;
    let inflation = fast_run as f64 / slow_run as f64;
    assert!(
        inflation > 1.02,
        "5 kHz sampling should inflate run time measurably: {inflation:.4}"
    );
}

#[test]
fn sampling_off_costs_nothing() {
    let off = run_network(100, false);
    let on = run_network(100, true);
    assert_eq!(off.stats.packets_in, on.stats.packets_in);
    let off_run = off.machine.now - off.sched.idle_cycles;
    let on_run = on.machine.now - on.sched.idle_cycles;
    // ~50 samples at 3 us each: well under 1%.
    let delta = on_run as f64 / off_run as f64;
    assert!(delta < 1.01, "delta {delta:.4}");
    assert_eq!(off.sampling.total, 0);
    assert!(on.sampling.total > 10);
}
