//! The pseudo-random (skewed) profiling clock: "If a psuedo-random or
//! skewed clock is available, then it is possible to improve the clock
//! profiling so that other clock-related activity is not missed."
//!
//! The workload here does its kernel work immediately after each clock
//! tick (a timeout-driven pattern).  A sampler synchronised with that
//! same clock always fires *before* the work runs and never sees it; a
//! skewed statclock lands at random phases and does.

use hwprof_kernel386::funcs::KFn;
use hwprof_kernel386::kernel::KernelConfig;
use hwprof_kernel386::sim::SimBuilder;
use hwprof_kernel386::syscall::{sys_open, sys_sleep, sys_sync, sys_write};

/// Runs the tick-synchronised write workload under a sampler.
fn run(statclock: Option<(u64, bool)>) -> hwprof_kernel386::kernel::Kernel {
    let config = KernelConfig {
        statclock_hz: statclock.map(|(hz, _)| hz),
        statclock_skewed: statclock.is_some_and(|(_, s)| s),
        ..KernelConfig::default()
    };
    let sim = SimBuilder::new().disk().config(config).build();
    sim.spawn(
        "ticker",
        Box::new(|ctx| {
            ctx.k.sampling.enabled = true;
            let fd = sys_open(ctx, "/tick/file", true);
            let block = vec![0x3Cu8; 4096];
            for _ in 0..120 {
                // Wake on the clock edge, then do kernel work right
                // after the tick (the synchronised pattern).
                sys_sleep(ctx, 1);
                sys_write(ctx, fd, &block);
            }
            sys_sync(ctx);
        }),
    );
    sim.run()
}

fn write_path_samples(k: &hwprof_kernel386::kernel::Kernel) -> u64 {
    [
        KFn::SysWrite,
        KFn::VnWrite,
        KFn::FfsWrite,
        KFn::FfsBalloc,
        KFn::Bcopy,
        KFn::Copyin,
        KFn::Getblk,
        KFn::Bawrite,
        KFn::WdStrategy,
        KFn::WdStart,
        KFn::Syscall,
    ]
    .iter()
    .map(|f| k.sampling.counts[f.idx()])
    .sum()
}

#[test]
fn synchronized_sampler_misses_tick_driven_work() {
    let k = run(None); // sampling at hardclock itself
    assert!(k.sampling.total >= 100, "samples {}", k.sampling.total);
    // The write path really consumed time...
    let write_us = k.trace.truth(KFn::FfsWrite).gross / 40;
    assert!(write_us > 10_000, "write path {write_us} us");
    // ...but the tick-synchronised sampler barely ever lands in it.
    let hits = write_path_samples(&k);
    assert!(
        hits * 20 <= k.sampling.total,
        "synchronized sampler saw {hits}/{} in the write path",
        k.sampling.total
    );
}

#[test]
fn skewed_statclock_sees_the_hidden_work() {
    let sync = run(None);
    let skewed = run(Some((100, true)));
    let sync_share = write_path_samples(&sync) as f64 / sync.sampling.total.max(1) as f64;
    let skew_share = write_path_samples(&skewed) as f64 / skewed.sampling.total.max(1) as f64;
    // The skewed clock attributes a clearly larger share to the
    // tick-driven work.
    assert!(
        skew_share > sync_share + 0.02,
        "skewed {skew_share:.3} vs synchronized {sync_share:.3}"
    );
    // And its rate stays ~100 Hz on average despite the jitter.
    let secs = skewed.now_us() as f64 / 1e6;
    let rate = skewed.sampling.total as f64 / secs;
    assert!((60.0..150.0).contains(&rate), "rate {rate:.0} Hz");
}
