//! Scoring a clock-sampled profile against the ground truth, and
//! normalizing one into the analysis pipeline's [`Reconstruction`]
//! monoid (the capture-backend path).

use hwprof_analysis::{Reconstruction, Symbols};
use hwprof_kernel386::funcs::{KFn, FUNCS, NFUNCS};
use hwprof_kernel386::kernel::Kernel;

/// How well a sampled profile approximates the true time distribution.
#[derive(Debug, Clone)]
pub struct SamplingScore {
    /// Samples taken.
    pub samples: u64,
    /// Sampling rate used (Hz).
    pub rate_hz: u64,
    /// Sum over functions of |sampled share − true share| (0 = perfect,
    /// 2 = disjoint), over kernel (non-idle, non-user) time.
    pub l1_error: f64,
    /// How many of the true top-5 net-time functions appear in the
    /// sampled top-5.
    pub top5_overlap: usize,
    /// Functions the sampler never saw despite non-zero true time.
    pub missed_functions: usize,
    /// True net µs of the missed functions (invisible cost).
    pub missed_us: u64,
    /// True net µs of the clock path itself, which a clock-driven
    /// sampler can never observe (its self-blindness — and it *grows*
    /// with the sampling rate).
    pub self_blind_us: u64,
}

/// Functions a clock-driven sampler is structurally blind to: the clock
/// interrupt path itself (it cannot interrupt itself), plus the idle
/// marker.  Excluded from the accuracy comparison and reported
/// separately as `self_blind_us`.
fn excluded(f: KFn) -> bool {
    matches!(
        f,
        KFn::Swtch | KFn::IsaIntr | KFn::Hardclock | KFn::Gatherstats | KFn::Softclock
    )
}

/// Shares of true net time per function (workload kernel time only).
fn truth_shares(k: &Kernel) -> Vec<f64> {
    let mut net = vec![0u64; NFUNCS];
    let mut total = 0u64;
    for f in KFn::ALL {
        if excluded(f) {
            continue;
        }
        let t = k.trace.truth(f).net;
        net[f.idx()] = t;
        total += t;
    }
    net.iter()
        .map(|&n| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            }
        })
        .collect()
}

fn sample_shares(k: &Kernel) -> Vec<f64> {
    let mut counts = k.sampling.counts.clone();
    for f in KFn::ALL {
        if excluded(f) {
            counts[f.idx()] = 0;
        }
    }
    let kernel_samples: u64 = counts.iter().sum();
    counts
        .iter()
        .map(|&c| {
            if kernel_samples == 0 {
                0.0
            } else {
                c as f64 / kernel_samples as f64
            }
        })
        .collect()
}

fn top5(shares: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..shares.len()).collect();
    // total_cmp: never panics, even if a share upstream went NaN.
    idx.sort_by(|&a, &b| shares[b].total_cmp(&shares[a]));
    idx.truncate(5);
    idx.into_iter().filter(|&i| shares[i] > 0.0).collect()
}

/// Sampled share of one function (of workload kernel samples).
pub fn sampled_share(k: &Kernel, f: KFn) -> f64 {
    sample_shares(k)[f.idx()]
}

/// True net-time share of one function (of workload kernel time).
pub fn true_share(k: &Kernel, f: KFn) -> f64 {
    truth_shares(k)[f.idx()]
}

/// Scores the kernel's sampled profile against its oracle.
pub fn sampling_accuracy(k: &Kernel) -> SamplingScore {
    let truth = truth_shares(k);
    let sampled = sample_shares(k);
    let l1_error = truth
        .iter()
        .zip(&sampled)
        .map(|(t, s)| (t - s).abs())
        .sum::<f64>();
    let t5t = top5(&truth);
    let t5s = top5(&sampled);
    let top5_overlap = t5t.iter().filter(|i| t5s.contains(i)).count();
    let mut missed_functions = 0;
    let mut missed_us = 0;
    let mut self_blind_us = 0;
    for f in KFn::ALL {
        let t = k.trace.truth(f);
        if excluded(f) {
            if f != KFn::Swtch {
                self_blind_us += t.net / 40;
            }
            continue;
        }
        if t.net > 0 && k.sampling.counts[f.idx()] == 0 {
            missed_functions += 1;
            missed_us += t.net / 40;
        }
    }
    SamplingScore {
        samples: k.sampling.total,
        rate_hz: k.config.clock_hz,
        l1_error,
        top5_overlap,
        missed_functions,
        missed_us,
        self_blind_us,
    }
}

/// A sampled profile lifted out of the kernel: what the clock-sampling
/// capture backend uploads instead of a board RAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleProfile {
    /// Effective sampling rate (statclock if configured, else
    /// hardclock).
    pub rate_hz: u64,
    /// Samples per kernel function (indexed by `KFn as usize`).
    pub counts: Vec<u64>,
    /// Samples that landed in the idle loop.
    pub idle_samples: u64,
    /// Samples that landed in user mode.
    pub user_samples: u64,
    /// Total samples.
    pub total: u64,
}

impl SampleProfile {
    /// Lifts the sampler state out of a finished kernel.
    pub fn from_kernel(k: &Kernel) -> Self {
        SampleProfile {
            rate_hz: k.config.statclock_hz.unwrap_or(k.config.clock_hz),
            counts: k.sampling.counts.clone(),
            idle_samples: k.sampling.idle_samples,
            user_samples: k.sampling.user_samples,
            total: k.sampling.total,
        }
    }

    /// The sampling period in microseconds (exact for the classic
    /// 100/1000/5000 Hz rates).
    pub fn period_us(&self) -> u64 {
        1_000_000 / self.rate_hz.max(1)
    }

    /// Normalizes this profile into the [`Reconstruction`] monoid: each
    /// sample becomes one period of attributed time against the kernel
    /// function table ([`kernel_symbols`]), idle and user samples land
    /// in `idle`, and `tags` counts the samples.
    ///
    /// Every populated field is linear in the sample counts and the
    /// fields a sampler cannot know (calls, min/max, trace, sessions)
    /// stay at the merge identity, so splitting the counts any way and
    /// merging the per-chunk normalizations is bit-identical to
    /// normalizing the whole profile — the monoid law the backend
    /// property suite pins.
    pub fn normalize(&self) -> Reconstruction {
        let period = self.period_us();
        let mut r = Reconstruction::empty(kernel_symbols());
        for (i, &c) in self.counts.iter().take(NFUNCS).enumerate() {
            let t = c * period;
            r.stats[i].elapsed = t;
            r.stats[i].net = t;
        }
        r.idle = (self.idle_samples + self.user_samples) * period;
        r.total_elapsed = self.total * period;
        r.tags = self.total as usize;
        r
    }
}

/// The kernel's function table as an analysis symbol table, in `KFn`
/// index order — the symbol space sampling and counter backends
/// normalize into.
pub fn kernel_symbols() -> Symbols {
    Symbols::from_names(FUNCS.iter().map(|f| f.name))
}

/// Renders a score line for the sweep table.
pub fn render_score(s: &SamplingScore, perturbation_pct: f64) -> String {
    format!(
        "{:>8} Hz {:>8} samples  L1 err {:>5.3}  top5 {}/5  missed {:>3} fns ({:>8} us)  perturbation {:>6.2}%",
        s.rate_hz, s.samples, s.l1_error, s.top5_overlap, s.missed_functions, s.missed_us, perturbation_pct
    )
}
