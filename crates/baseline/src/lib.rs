//! The measurement techniques the paper *rejected*, built so the
//! motivation section can be reproduced quantitatively:
//!
//! * **Event statistics** — "a rough idea of the overall performance
//!   [...] The main drawback [...] is the poor granularity and lack of
//!   detail concerning where the kernel time is spent."
//! * **Clock sampling** — "these measurements are useful but suffer from
//!   a trade-off in granularity and accuracy; the finer the granularity,
//!   the more time is spent running the profiling clock and not actually
//!   running the kernel" (the paper's Heisenberg analogy).
//!
//! The simulated kernel exposes both (its `KernStats` counters and the
//! `Sampling` hook in `gatherstats`); this crate scores their output
//! against the zero-perturbation ground-truth oracle.
//!
//! Since the capture-backend redesign, both techniques also *normalize*
//! into the analysis pipeline's `Reconstruction` monoid — see
//! [`SampleProfile::normalize`](sampling::SampleProfile::normalize) and
//! [`CounterModel::normalize`](counters::CounterModel::normalize) — so
//! the same reports, exports, and comparisons run over all of them.

pub mod counters;
pub mod sampling;

pub use counters::{counters_report, CounterAnchor, CounterModel, CrossCheck};
pub use sampling::{kernel_symbols, sampling_accuracy, SampleProfile, SamplingScore};
