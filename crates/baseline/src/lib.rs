//! The measurement techniques the paper *rejected*, built so the
//! motivation section can be reproduced quantitatively:
//!
//! * **Event statistics** — "a rough idea of the overall performance
//!   [...] The main drawback [...] is the poor granularity and lack of
//!   detail concerning where the kernel time is spent."
//! * **Clock sampling** — "these measurements are useful but suffer from
//!   a trade-off in granularity and accuracy; the finer the granularity,
//!   the more time is spent running the profiling clock and not actually
//!   running the kernel" (the paper's Heisenberg analogy).
//!
//! The simulated kernel exposes both (its `KernStats` counters and the
//! `Sampling` hook in `gatherstats`); this crate scores their output
//! against the zero-perturbation ground-truth oracle.

pub mod counters;
pub mod sampling;

pub use counters::counters_report;
pub use sampling::{sampling_accuracy, SamplingScore};
