//! The event-statistics report: what every kernel already gives you.
//!
//! Instructive precisely because of what it *cannot* say — it answers
//! "how many packets" but never "where did the time go", the paper's
//! core complaint about counters.
//!
//! The [`CounterModel`] half follows CounterPoint's lead: hardware
//! event counters cannot locate time themselves, but each one can be
//! *anchored* to the kernel function that increments it, turning the
//! counter into (a) a crude time estimate (count × a fixed per-event
//! cost) and (b) a refutation cross-check against any richer profile
//! claiming to have observed the same events.

use hwprof_analysis::Reconstruction;
use hwprof_kernel386::funcs::KFn;
use hwprof_kernel386::kernel::{KernStats, Kernel};

use crate::sampling::kernel_symbols;

/// Renders the classic counters dump (vmstat/netstat flavour).
pub fn counters_report(k: &Kernel) -> String {
    let s = &k.stats;
    let elapsed_us = k.now_us().max(1);
    let per_sec = |v: u64| v * 1_000_000 / elapsed_us;
    let mut out = String::new();
    out.push_str(&format!(
        "elapsed {:>10} us   idle {:>10} us\n",
        elapsed_us,
        k.sched.idle_cycles / 40
    ));
    for (name, v) in [
        ("interrupts", s.intrs),
        ("clock ticks", s.ticks),
        ("context switches", s.cswitches),
        ("system calls", s.syscalls),
        ("packets in", s.packets_in),
        ("packets out", s.packets_out),
        ("checksum drops", s.cksum_drops),
        ("disk transfers", s.disk_xfers),
        ("page faults", s.page_faults),
    ] {
        out.push_str(&format!("{name:>18} {v:>10}   ({}/s)\n", per_sec(v)));
    }
    out
}

/// One counter anchored to the kernel function that increments it.
#[derive(Debug, Clone, Copy)]
pub struct CounterAnchor {
    /// Which `KernStats` counter this is.
    pub counter: &'static str,
    /// The kernel function each increment attributes to.
    pub function: KFn,
    /// Fixed cost estimate charged per event, in microseconds.  These
    /// are static guesses — the whole point of the model is that they
    /// are *not* measured, which is why counter profiles carry the
    /// largest declared bias of any backend.
    pub per_event_us: u64,
}

/// The static anchor table mapping every always-on `KernStats` counter
/// to a kernel function and a per-event cost guess.
#[derive(Debug, Clone)]
pub struct CounterModel {
    /// Anchors, one per modelled counter.
    pub anchors: Vec<CounterAnchor>,
}

impl Default for CounterModel {
    fn default() -> Self {
        let a = |counter, function, per_event_us| CounterAnchor {
            counter,
            function,
            per_event_us,
        };
        CounterModel {
            anchors: vec![
                a("ticks", KFn::Hardclock, 94),
                a("intrs", KFn::IsaIntr, 24),
                a("cswitches", KFn::Swtch, 30),
                a("syscalls", KFn::Syscall, 40),
                a("packets_in", KFn::Ipintr, 150),
                a("packets_out", KFn::IpOutput, 100),
                a("disk_xfers", KFn::WdIntr, 200),
                a("page_faults", KFn::VmFault, 250),
            ],
        }
    }
}

/// One CounterPoint-style refutation check: an always-on counter
/// compared against the call count a profile claims for the anchored
/// function.  A profile that disagrees wildly with a free hardware
/// counter has refuted itself.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Counter name.
    pub counter: &'static str,
    /// Anchored function name.
    pub function: &'static str,
    /// Events the counter saw.
    pub counted: u64,
    /// Calls the profile claims for the anchored function.
    pub profiled: u64,
    /// Whether the two agree within `tolerance` (relative, plus an
    /// absolute slack of 2 events for edge effects at run boundaries).
    pub agrees: bool,
}

impl CounterModel {
    fn value(s: &KernStats, counter: &str) -> u64 {
        match counter {
            "ticks" => s.ticks,
            "intrs" => s.intrs,
            "cswitches" => s.cswitches,
            "syscalls" => s.syscalls,
            "packets_in" => s.packets_in,
            "packets_out" => s.packets_out,
            "disk_xfers" => s.disk_xfers,
            "page_faults" => s.page_faults,
            _ => 0,
        }
    }

    /// Normalizes a counter dump into the [`Reconstruction`] monoid:
    /// each anchored counter contributes `count` calls and
    /// `count × per_event_us` of net/elapsed time to its function.
    ///
    /// Linear by construction: every populated per-function field is
    /// either proportional to the count or (min/max) a constant that
    /// only appears when the count is non-zero, and `sessions` stays 0
    /// — so any additive split of the counters merges bit-identically,
    /// the law `backend_props` pins.
    pub fn normalize(&self, s: &KernStats) -> Reconstruction {
        let mut r = Reconstruction::empty(kernel_symbols());
        let mut total = 0u64;
        for a in &self.anchors {
            let count = Self::value(s, a.counter);
            if count == 0 {
                continue;
            }
            let i = a.function.idx();
            let t = count * a.per_event_us;
            let st = &mut r.stats[i];
            st.min_net = if st.calls == 0 {
                a.per_event_us
            } else {
                st.min_net.min(a.per_event_us)
            };
            st.max_net = st.max_net.max(a.per_event_us);
            st.calls += count;
            st.elapsed += t;
            st.net += t;
            total += t;
            r.tags += count as usize;
        }
        r.total_elapsed = total;
        r
    }

    /// Refutes (or fails to refute) a profile's call counts against the
    /// always-on counters.  `tolerance` is the allowed relative error
    /// (e.g. 0.05 for 5%); counters the profile did not observe at all
    /// (function absent from its symbol table) are skipped.
    pub fn cross_checks(
        &self,
        s: &KernStats,
        profile: &Reconstruction,
        tolerance: f64,
    ) -> Vec<CrossCheck> {
        let mut out = Vec::new();
        for a in &self.anchors {
            let counted = Self::value(s, a.counter);
            let Some(i) =
                (0..profile.syms.len()).find(|&i| profile.syms.name(i as _) == a.function.name())
            else {
                continue;
            };
            let profiled = profile.stats[i].calls;
            let diff = counted.abs_diff(profiled);
            let slack = ((counted as f64) * tolerance).ceil() as u64 + 2;
            out.push(CrossCheck {
                counter: a.counter,
                function: a.function.name(),
                counted,
                profiled,
                agrees: diff <= slack,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use hwprof_kernel386::sim::SimBuilder;
    use hwprof_kernel386::user::ucompute;

    #[test]
    fn counters_render_after_a_run() {
        let sim = SimBuilder::new().build();
        sim.spawn("w", Box::new(|ctx| ucompute(ctx, 30_000)));
        let k = sim.run();
        let rep = super::counters_report(&k);
        assert!(rep.contains("clock ticks"));
        assert!(rep.contains("interrupts"));
        // Counters say how many ticks, but nowhere does any function
        // name appear: the granularity critique in one assertion.
        assert!(!rep.contains("bcopy"));
    }
}
