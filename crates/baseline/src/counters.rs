//! The event-statistics report: what every kernel already gives you.
//!
//! Instructive precisely because of what it *cannot* say — it answers
//! "how many packets" but never "where did the time go", the paper's
//! core complaint about counters.

use hwprof_kernel386::kernel::Kernel;

/// Renders the classic counters dump (vmstat/netstat flavour).
pub fn counters_report(k: &Kernel) -> String {
    let s = &k.stats;
    let elapsed_us = k.now_us().max(1);
    let per_sec = |v: u64| v * 1_000_000 / elapsed_us;
    let mut out = String::new();
    out.push_str(&format!(
        "elapsed {:>10} us   idle {:>10} us\n",
        elapsed_us,
        k.sched.idle_cycles / 40
    ));
    for (name, v) in [
        ("interrupts", s.intrs),
        ("clock ticks", s.ticks),
        ("context switches", s.cswitches),
        ("system calls", s.syscalls),
        ("packets in", s.packets_in),
        ("packets out", s.packets_out),
        ("checksum drops", s.cksum_drops),
        ("disk transfers", s.disk_xfers),
        ("page faults", s.page_faults),
    ] {
        out.push_str(&format!("{name:>18} {v:>10}   ({}/s)\n", per_sec(v)));
    }
    out
}

#[cfg(test)]
mod tests {
    use hwprof_kernel386::sim::SimBuilder;
    use hwprof_kernel386::user::ucompute;

    #[test]
    fn counters_render_after_a_run() {
        let sim = SimBuilder::new().build();
        sim.spawn("w", Box::new(|ctx| ucompute(ctx, 30_000)));
        let k = sim.run();
        let rep = super::counters_report(&k);
        assert!(rep.contains("clock ticks"));
        assert!(rep.contains("interrupts"));
        // Counters say how many ticks, but nowhere does any function
        // name appear: the granularity critique in one assertion.
        assert!(!rep.contains("bcopy"));
    }
}
