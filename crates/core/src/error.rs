//! Errors an [`Experiment`](crate::Experiment) run can hit.

use hwprof_analysis::PipelineClosed;
use hwprof_instrument::LinkError;
use hwprof_tagfile::TagFileError;

/// Everything that can go wrong between configuring an experiment and
/// getting a capture back.
///
/// Non-exhaustive: new capture modes grow new failure classes (the
/// supervised transport variants arrived after the first release of
/// this enum), so downstream matches must carry a wildcard arm.  Use
/// [`Error::is_retryable`] to decide whether re-running the same
/// experiment could succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// [`Experiment::scenario`](crate::Experiment::scenario) was never
    /// called.
    MissingScenario,
    /// The scenario spawned no processes, so the simulation would have
    /// nothing to schedule.
    EmptyScenario,
    /// The modified compiler pass rejected the tag assignment.
    Compile(TagFileError),
    /// The two-stage link could not resolve `_ProfileBase`.
    Link(LinkError),
    /// A streaming capture overflowed: a full bank found no empty RAM
    /// (the analysis pipeline refused it) and the board stopped storing.
    BoardOverflow {
        /// Banks successfully handed to the pipeline before the stop.
        banks: u64,
        /// Trigger reads lost after the board stopped.
        missed: u64,
    },
    /// The capture's anomaly rate crossed the caller's threshold: the
    /// upload is too corrupt for its numbers to be trusted.
    CorruptUpload {
        /// Classified anomalies the recovery pipeline counted.
        anomalies: u64,
        /// Hardware events in the capture.
        tags: u64,
        /// The caller's threshold, in anomalies per million tags.
        limit_ppm: u32,
    },
    /// The streaming pipeline was used after `finish()` closed it.
    PipelineClosed,
    /// A supervised capture delivered nothing: the upload transport
    /// stayed down and every captured bank was lost.
    TransportFailed {
        /// Captured banks lost (spill shelf exhausted, retries spent).
        banks_lost: u64,
        /// Individual upload attempts that failed.
        failures: u64,
    },
    /// A capture backend could not observe the run: nothing to arm, no
    /// samples taken, software trace buffer overflowed, or the native
    /// data failed to decode.  The configuration is at fault (wrong
    /// backend for the build, buffer sized too small), so this is not
    /// retryable.
    BackendFailed {
        /// Which backend failed
        /// ([`CaptureBackend::name`](crate::CaptureBackend::name)).
        backend: &'static str,
        /// What went wrong, in the backend's own words.
        reason: String,
    },
    /// A fleet aggregator received a shard whose payload failed its
    /// checksum or did not parse as a record stream.  The corruption
    /// is in the delivered bytes, not the link: the machine's
    /// transport already succeeded (contrast
    /// [`Error::TransportFailed`], where retrying the upload can
    /// help), so resubmitting the same shard reproduces the same
    /// garbage and this is not retryable.
    ShardCorrupt {
        /// The fleet machine whose shard was rejected.
        machine: u32,
        /// The shard's bank index within that machine's capture.
        shard: u64,
        /// What the decoder rejected, in its own words.
        reason: String,
    },
    /// A supervised capture finished below the policy's minimum
    /// timeline coverage.
    CoverageTooLow {
        /// Covered fraction achieved, in parts per million.
        achieved_ppm: u32,
        /// The policy's floor
        /// ([`SupervisorPolicy::min_coverage_ppm`](hwprof_profiler::SupervisorPolicy)).
        required_ppm: u32,
    },
}

impl Error {
    /// True when re-running the same experiment could plausibly
    /// succeed: the failure came from the run's environment (a flaky
    /// upload transport, a capture race against the analysis pipeline,
    /// coverage lost to seeded outages), not from the configuration.
    ///
    /// Configuration and build errors ([`Error::MissingScenario`],
    /// [`Error::EmptyScenario`], [`Error::Compile`], [`Error::Link`]),
    /// API misuse ([`Error::PipelineClosed`]), deterministic data
    /// corruption ([`Error::CorruptUpload`] — the fault schedule is
    /// seeded, so a re-run reproduces it) and backend misconfiguration
    /// ([`Error::BackendFailed`] — the same backend observes the same
    /// deterministic run identically) and corrupt fleet shards
    /// ([`Error::ShardCorrupt`] — the bytes are already wrong at rest;
    /// only a transport outage, surfaced as
    /// [`Error::TransportFailed`], is worth retrying) are not
    /// retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::BoardOverflow { .. }
                | Error::TransportFailed { .. }
                | Error::CoverageTooLow { .. }
        )
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::MissingScenario => write!(f, "experiment has no scenario"),
            Error::EmptyScenario => write!(f, "scenario spawned no processes"),
            Error::Compile(e) => write!(f, "instrumented compile failed: {e}"),
            Error::Link(e) => write!(f, "two-stage link failed: {e}"),
            Error::BoardOverflow { banks, missed } => write!(
                f,
                "board overflowed mid-stream after {banks} banks ({missed} trigger reads lost)"
            ),
            Error::CorruptUpload {
                anomalies,
                tags,
                limit_ppm,
            } => write!(
                f,
                "upload too corrupt to trust: {anomalies} anomalies in {tags} tags                  (limit {limit_ppm} per million)"
            ),
            Error::PipelineClosed => {
                write!(f, "streaming pipeline already closed by finish()")
            }
            Error::TransportFailed {
                banks_lost,
                failures,
            } => write!(
                f,
                "upload transport never recovered: {banks_lost} banks lost across {failures} failed attempts"
            ),
            Error::BackendFailed { backend, reason } => {
                write!(f, "{backend} backend failed: {reason}")
            }
            Error::ShardCorrupt {
                machine,
                shard,
                reason,
            } => write!(
                f,
                "machine {machine} shard {shard} corrupt on arrival: {reason}"
            ),
            Error::CoverageTooLow {
                achieved_ppm,
                required_ppm,
            } => write!(
                f,
                "supervised capture covered only {:.2}% of the timeline (policy floor {:.2}%)",
                *achieved_ppm as f64 / 10_000.0,
                *required_ppm as f64 / 10_000.0
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Link(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TagFileError> for Error {
    fn from(e: TagFileError) -> Self {
        Error::Compile(e)
    }
}

impl From<LinkError> for Error {
    fn from(e: LinkError) -> Self {
        Error::Link(e)
    }
}

impl From<PipelineClosed> for Error {
    fn from(_: PipelineClosed) -> Self {
        Error::PipelineClosed
    }
}
