//! The cross-backend comparison: every [`CaptureBackend`] run over the
//! same scenario, scored against the same-run ground-truth oracle and a
//! clean (uninstrumented, unobserved) reference run.
//!
//! This is the quantitative version of the paper's motivation section:
//! instead of arguing that counters are coarse and sampling perturbs,
//! measure all four techniques on one workload and put the bias,
//! coverage, and overhead numbers side by side — with the board as the
//! reference row.  Pinned as experiment E19 (`repro_backends`).

use hwprof_analysis::Reconstruction;
use hwprof_kernel386::funcs::KFn;
use hwprof_kernel386::kernel::Kernel;

use crate::backend::{
    BackendCost, BoardBackend, CaptureBackend, CountersBackend, KtraceBackend, SamplingBackend,
};
use crate::error::Error;
use crate::experiment::{Experiment, Scenario};

/// One backend's scorecard against the same-run ground truth.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Backend name.
    pub backend: &'static str,
    /// The backend's declared cost model.
    pub cost: BackendCost,
    /// Native events the backend observed.
    pub events: u64,
    /// Measured attribution bias: L1 distance between the backend's
    /// per-function time shares and the oracle's true shares, over
    /// workload kernel functions (0 = exact, 2 = disjoint).
    pub l1_bias: f64,
    /// How many of the true top-5 net-time functions the backend's
    /// top-5 contains.
    pub top5_overlap: usize,
    /// Fraction of truth-active functions (non-zero true net time) the
    /// backend observed at all.
    pub coverage: f64,
    /// Measured run perturbation: busy-cycle inflation over the clean
    /// reference run, in percent.
    pub overhead_pct: f64,
    /// Whether the measured `l1_bias` stayed within the backend's
    /// declared [`BackendCost::bias_l1_bound`].
    pub within_bias: bool,
}

/// All four backends run over one scenario, plus the clean reference.
#[derive(Debug, Clone)]
pub struct BackendComparison {
    /// One row per backend, in the order run (board first).
    pub rows: Vec<BackendRow>,
    /// Busy µs of the clean reference run (uninstrumented build,
    /// nothing armed) — the overhead baseline.
    pub clean_busy_us: u64,
}

/// Functions excluded from the bias comparison: the clock/profiling
/// interrupt path (a clock-driven sampler is structurally blind to it)
/// and the context switcher (attributed specially by the analyzer).
/// Mirrors `hwprof_baseline::sampling`'s exclusion set so all backends
/// are scored on the same workload functions.
fn excluded(f: KFn) -> bool {
    matches!(
        f,
        KFn::Swtch | KFn::IsaIntr | KFn::Hardclock | KFn::Gatherstats | KFn::Softclock
    )
}

/// True net-time shares per function from the run's own oracle.
fn truth_shares(kernel: &Kernel) -> Vec<(&'static str, f64, u64)> {
    let mut rows = Vec::new();
    let mut total = 0u64;
    for f in KFn::ALL {
        if excluded(f) {
            continue;
        }
        let net = kernel.trace.truth(f).net;
        total += net;
        rows.push((f.name(), 0.0, net));
    }
    if total > 0 {
        for r in &mut rows {
            r.1 = r.2 as f64 / total as f64;
        }
    }
    rows
}

/// The backend's net-time shares over the same function set.
fn profile_shares(profile: &Reconstruction, names: &[&'static str]) -> Vec<f64> {
    let nets: Vec<u64> = names
        .iter()
        .map(|n| profile.agg(n).map_or(0, |a| a.net))
        .collect();
    let total: u64 = nets.iter().sum();
    nets.iter()
        .map(|&n| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            }
        })
        .collect()
}

fn top5(shares: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..shares.len()).collect();
    idx.sort_by(|&a, &b| shares[b].total_cmp(&shares[a]));
    idx.truncate(5);
    idx.into_iter().filter(|&i| shares[i] > 0.0).collect()
}

fn busy_us(kernel: &Kernel) -> u64 {
    (kernel.machine.now - kernel.sched.idle_cycles) / hwprof_machine::CYCLES_PER_US
}

impl BackendComparison {
    /// Runs `make_experiment()`'s scenario under all four backends plus
    /// one clean reference run and scores every backend.  The closure
    /// must build the same deterministic experiment each call (same
    /// scenario, same config) — that's what makes the rows comparable.
    ///
    /// # Errors
    ///
    /// Any [`Error`] a single backend run reports.
    pub fn run(make_scenario: impl Fn() -> Scenario) -> Result<BackendComparison, Error> {
        // The overhead baseline: production build, nothing observing.
        let clean = Experiment::new()
            .profile_none()
            .unarmed()
            .scenario(make_scenario())
            .try_run()?;
        let clean_busy_us = busy_us(&clean.kernel);

        let backends: Vec<Box<dyn CaptureBackend>> = vec![
            Box::new(BoardBackend),
            Box::new(SamplingBackend::statclock(5000)),
            Box::new(CountersBackend::default()),
            Box::new(KtraceBackend::default()),
        ];
        let mut rows = Vec::new();
        for backend in backends {
            let cap = Experiment::new()
                .backend_boxed(backend)
                .scenario(make_scenario())
                .try_capture()?;
            let truth = truth_shares(&cap.kernel);
            let names: Vec<&'static str> = truth.iter().map(|r| r.0).collect();
            let tshares: Vec<f64> = truth.iter().map(|r| r.1).collect();
            let pshares = profile_shares(&cap.profile, &names);
            let l1_bias = tshares
                .iter()
                .zip(&pshares)
                .map(|(t, p)| (t - p).abs())
                .sum::<f64>();
            let t5t = top5(&tshares);
            let t5p = top5(&pshares);
            let top5_overlap = t5t.iter().filter(|i| t5p.contains(i)).count();
            let active = truth.iter().filter(|r| r.2 > 0).count();
            let seen = truth
                .iter()
                .zip(&pshares)
                .filter(|(r, &p)| r.2 > 0 && p > 0.0)
                .count();
            let coverage = if active == 0 {
                1.0
            } else {
                seen as f64 / active as f64
            };
            let run_busy = busy_us(&cap.kernel);
            let overhead_pct = if clean_busy_us == 0 {
                0.0
            } else {
                (run_busy as f64 - clean_busy_us as f64) * 100.0 / clean_busy_us as f64
            };
            rows.push(BackendRow {
                backend: cap.backend,
                cost: cap.cost,
                events: cap.native.events(),
                l1_bias,
                top5_overlap,
                coverage,
                overhead_pct,
                within_bias: l1_bias <= cap.cost.bias_l1_bound,
            });
        }
        Ok(BackendComparison {
            rows,
            clean_busy_us,
        })
    }

    /// The board's row (the reference backend; always present).
    ///
    /// # Panics
    ///
    /// Panics if the comparison was built without the board row (it
    /// never is by [`BackendComparison::run`]).
    pub fn board(&self) -> &BackendRow {
        self.rows
            .iter()
            .find(|r| r.backend == "board")
            .expect("comparison always runs the board")
    }

    /// True when every backend stayed within its declared bias bound.
    pub fn all_within_bias(&self) -> bool {
        self.rows.iter().all(|r| r.within_bias)
    }

    /// Renders the comparison as the E19 table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>9} {:>8} {:>7} {:>6} {:>9} {:>9} {:>6}\n",
            "backend", "events", "ev-cost", "L1bias", "top5", "coverage", "overhead", "decl"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>9} {:>7}c {:>7.3} {:>4}/5 {:>8.0}% {:>8.2}% {:>6}\n",
                r.backend,
                r.events,
                r.cost.per_event_cycles,
                r.l1_bias,
                r.top5_overlap,
                r.coverage * 100.0,
                r.overhead_pct,
                if r.within_bias { "ok" } else { "OVER" }
            ));
        }
        out
    }
}
