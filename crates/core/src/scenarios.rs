//! The standard workloads: each of the paper's experiments as a
//! [`Scenario`].

use hwprof_kernel386::ctx::Ctx;
use hwprof_kernel386::hosts::{NfsServer, TcpBlaster};
use hwprof_kernel386::kern_exec::ExecImage;
use hwprof_kernel386::nfs;
use hwprof_kernel386::syscall::{
    sys_close, sys_execve, sys_open, sys_read, sys_read_timeout, sys_sleep, sys_socket, sys_vfork,
    sys_wait, sys_write,
};
use hwprof_kernel386::user::{ucompute, utouch_pages};
use hwprof_kernel386::wire_fmt::IPPROTO_TCP;

use crate::experiment::Scenario;

/// Port the receive experiments listen on.
pub const RECV_PORT: u16 = 5001;

/// Reads from a TCP socket (blocking inside `soreceive`, as the paper's
/// receiver did) until `deadline_us` of virtual time passes with no
/// data.  Returns the bytes received.  (The saturation test drops
/// packets, so byte counts cannot terminate the loop; the paper armed
/// the Profiler's switch for a window instead.)
fn drain_socket_until(ctx: &mut Ctx, fd: usize, deadline_us: u64) -> usize {
    let mut got = 0usize;
    loop {
        let data = sys_read_timeout(ctx, fd, 4096, 3);
        got += data.len();
        if data.is_empty() && ctx.k.now_us() >= deadline_us {
            break;
        }
    }
    got
}

/// The Figure 3 workload: a remote host streams TCP at the PC; the
/// receiver reads and discards.  `saturate = true` sends back to back
/// (the PC cannot keep up, the paper's CPU-bound case); otherwise the
/// stream is paced so nothing drops.
pub fn network_receive(total_bytes: u64, saturate: bool) -> Scenario {
    // The paper's numbers ("checksum a 1 Kbyte packet", "a 1Kbyte mbuf
    // cluster") show the Sparc was sending ~1 KiB segments; the paced
    // integrity runs use full frames.
    let mss: usize = if saturate { 1024 } else { 1460 };
    let frames = total_bytes.div_ceil(mss as u64);
    // A saturated run is CPU-clocked (~2 ms per frame once TCP flow
    // control paces the sender down); a paced run is wire+gap clocked.
    let deadline_us = frames * if saturate { 2100 } else { 1250 + 2500 } + 10_000;
    let blaster = if saturate {
        TcpBlaster::new(RECV_PORT, mss, total_bytes)
    } else {
        TcpBlaster::paced(RECV_PORT, mss, total_bytes, 2500)
    };
    Scenario::builder()
        .host(blaster)
        .spawn(move |sim| {
            sim.spawn(
                "ttcp-r",
                Box::new(move |ctx| {
                    let fd = sys_socket(ctx, IPPROTO_TCP, RECV_PORT);
                    drain_socket_until(ctx, fd, deadline_us);
                    sys_close(ctx, fd);
                }),
            );
        })
        .build()
}

/// The Figure 4 workload: a handful of packets arriving while a second
/// process wakes up and opens files — one capture showing the driver
/// path, `ipintr`, `tcp_input`, a context switch and the `falloc` path.
pub fn single_packet_trace() -> Scenario {
    Scenario::builder()
        .host(TcpBlaster::paced(RECV_PORT, 1460, 6 * 1460, 3000))
        .disk()
        .spawn(|sim| {
            sim.spawn(
                "reader",
                Box::new(|ctx| {
                    let fd = sys_socket(ctx, IPPROTO_TCP, RECV_PORT);
                    drain_socket_until(ctx, fd, 40_000);
                    sys_close(ctx, fd);
                }),
            );
            sim.spawn(
                "opener",
                Box::new(|ctx| {
                    for i in 0..4 {
                        sys_sleep(ctx, 1);
                        let fd = sys_open(ctx, &format!("/tmp/f{i}"), true);
                        sys_write(ctx, fd, &[0u8; 512]);
                        sys_close(ctx, fd);
                    }
                }),
            );
        })
        .build()
}

/// The Figure 5 workload: a shell-sized parent vforks + execs children
/// in a loop ("a common operation of UNIX").  `iterations` fork/exec
/// cycles.
pub fn forkexec_loop(iterations: usize) -> Scenario {
    Scenario::builder()
        .spawn(move |sim| {
            sim.spawn(
                "sh",
                Box::new(move |ctx| {
                    sys_execve(ctx, &ExecImage::shell());
                    utouch_pages(ctx, 60, true);
                    for _ in 0..iterations {
                        let _child = sys_vfork(
                            ctx,
                            "cmd",
                            Box::new(|ctx| {
                                sys_execve(ctx, &ExecImage::shell());
                                utouch_pages(ctx, 14, true);
                                ucompute(ctx, 800);
                            }),
                        );
                        let _ = sys_wait(ctx);
                        ucompute(ctx, 300);
                    }
                }),
            );
        })
        .build()
}

/// The filesystem workload: stream `blocks` 4 KiB blocks into a file
/// through the buffer cache and the IDE driver.
pub fn fs_writer(blocks: usize) -> Scenario {
    Scenario::builder()
        .disk()
        .spawn(move |sim| {
            sim.spawn(
                "writer",
                Box::new(move |ctx| {
                    let fd = sys_open(ctx, "/bench/out", true);
                    let chunk = vec![0xA5u8; 4096];
                    for _ in 0..blocks {
                        sys_write(ctx, fd, &chunk);
                    }
                    sys_close(ctx, fd);
                    hwprof_kernel386::syscall::sys_sync(ctx);
                }),
            );
        })
        .build()
}

/// Scattered uncached reads: the 18-26 ms read-latency study.  Writes
/// `files` one-block files first (cache warm), then reads them back
/// through a *cold* cache is impossible in one boot, so the reader skips
/// around a large pre-written file instead, defeating readahead-free
/// caching by visiting each block once.
pub fn fs_scattered_reads(blocks: usize) -> Scenario {
    Scenario::builder()
        .disk()
        .spawn(move |sim| {
            sim.spawn(
                "reader",
                Box::new(move |ctx| {
                    // Build a fragmented file: the allocator jumps
                    // cylinder groups every 16 blocks.
                    let fd = sys_open(ctx, "/bench/big", true);
                    let chunk = vec![0x5Au8; 4096];
                    for _ in 0..blocks {
                        sys_write(ctx, fd, &chunk);
                    }
                    sys_close(ctx, fd);
                    // Wait for the write buffer to drain.
                    hwprof_kernel386::syscall::sys_sync(ctx);
                    sys_sleep(ctx, 20);
                    // Evict by dropping cache state: new open, invalidate.
                    {
                        // Cold-read emulation: mark every buffer invalid
                        // (the paper rebooted between runs).
                        for b in ctx.k.fs.bufs.iter_mut() {
                            b.valid = false;
                        }
                    }
                    // Read back in a strided order so every block pays a
                    // real seek (the paper's 18-26 ms per read).
                    let fd = sys_open(ctx, "/bench/big", false);
                    for i in 0..blocks {
                        let blk = (i * 7 + 3) % blocks;
                        hwprof_kernel386::syscall::sys_lseek(ctx, fd, (blk * 4096) as u64);
                        let d = sys_read(ctx, fd, 4096);
                        assert_eq!(d.len(), 4096);
                    }
                    sys_close(ctx, fd);
                }),
            );
        })
        .build()
}

/// The NFS-vs-FTP comparison: read `total` bytes over NFS RPC (UDP,
/// checksums off).
pub fn nfs_stream(total: usize) -> Scenario {
    Scenario::builder()
        .host(NfsServer::new(1200, false))
        .spawn(move |sim| {
            sim.spawn(
                "nfsio",
                Box::new(move |ctx| {
                    let data = nfs::nfs_read(ctx, 1, 0, total);
                    assert_eq!(data.len(), total);
                }),
            );
        })
        .build()
}

/// An idle machine with the clock ticking: the clock-interrupt study.
pub fn clock_idle(ticks: u32) -> Scenario {
    Scenario::builder()
        .spawn(move |sim| {
            sim.spawn(
                "idle-watch",
                Box::new(move |ctx| {
                    sys_sleep(ctx, ticks);
                }),
            );
        })
        .build()
}

/// A mixed workload exercising every subsystem (Table 1 sampling).
pub fn mixed(iterations: usize) -> Scenario {
    Scenario::builder()
        .host(TcpBlaster::paced(
            RECV_PORT,
            1460,
            (iterations as u64) * 8 * 1460,
            2600,
        ))
        .disk()
        .spawn(move |sim| {
            sim.spawn(
                "mix-net",
                Box::new(move |ctx| {
                    let fd = sys_socket(ctx, IPPROTO_TCP, RECV_PORT);
                    drain_socket_until(ctx, fd, iterations as u64 * 35_000);
                    sys_close(ctx, fd);
                }),
            );
            sim.spawn(
                "mix-proc",
                Box::new(move |ctx| {
                    sys_execve(ctx, &ExecImage::shell());
                    utouch_pages(ctx, 25, true);
                    for i in 0..iterations {
                        let fd = sys_open(ctx, &format!("/mix/{i}"), true);
                        sys_write(ctx, fd, &vec![7u8; 8192]);
                        sys_close(ctx, fd);
                        let _ = sys_vfork(
                            ctx,
                            "mixchild",
                            Box::new(|ctx| {
                                sys_execve(ctx, &ExecImage::shell());
                                utouch_pages(ctx, 6, true);
                            }),
                        );
                        let _ = sys_wait(ctx);
                        ucompute(ctx, 2_000);
                    }
                }),
            );
        })
        .build()
}
