//! # hwprof — Hardware Profiling of Kernels, reproduced
//!
//! A full working reproduction of Andrew McRae's 1993 system for
//! profiling a running kernel with a cheap EPROM-socket event-capture
//! board: the board, the modified compiler, the simulated 386BSD-style
//! kernel it profiles, the analysis software, and the paper's rejected
//! baselines.
//!
//! ## Quickstart
//!
//! ```
//! use hwprof::{Experiment, scenarios};
//! use hwprof::analysis::summary_report;
//!
//! // Profile the network modules while a remote host streams TCP at
//! // the machine (the paper's Figure 3 setup, shortened).
//! let capture = Experiment::new()
//!     .profile_modules(&["net", "locore", "kern"])
//!     .scenario(scenarios::network_receive(32 * 1024, false))
//!     .run();
//! let profile = capture.analyze();
//! println!("{}", summary_report(&profile, Some(10)));
//! assert!(profile.agg("bcopy").unwrap().calls > 0);
//! ```

pub mod experiment;
pub mod scenarios;

pub use experiment::{Capture, Experiment};

// Re-export the component crates under one roof.
pub use hwprof_analysis as analysis;
pub use hwprof_baseline as baseline;
pub use hwprof_instrument as instrument;
pub use hwprof_kernel386 as kernel386;
pub use hwprof_machine as machine;
pub use hwprof_profiler as profiler;
pub use hwprof_snmpmib as snmpmib;
pub use hwprof_tagfile as tagfile;
