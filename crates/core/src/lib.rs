//! # hwprof — Hardware Profiling of Kernels, reproduced
//!
//! A full working reproduction of Andrew McRae's 1993 system for
//! profiling a running kernel with a cheap EPROM-socket event-capture
//! board: the board, the modified compiler, the simulated 386BSD-style
//! kernel it profiles, the analysis software, and the paper's rejected
//! baselines.
//!
//! ## Quickstart
//!
//! ```
//! use hwprof::{Experiment, scenarios};
//! use hwprof::analysis::summary_report;
//!
//! // Profile the network modules while a remote host streams TCP at
//! // the machine (the paper's Figure 3 setup, shortened).
//! let capture = Experiment::new()
//!     .profile_modules(&["net", "locore", "kern"])
//!     .scenario(scenarios::network_receive(32 * 1024, false))
//!     .try_run()
//!     .expect("experiment builds and links");
//! let profile = capture.analyze();
//! println!("{}", summary_report(&profile, Some(10)));
//! assert!(profile.agg("bcopy").unwrap().calls > 0);
//! ```
//!
//! For captures longer than the board's RAM, stream instead: the board
//! drains full half-RAM banks into analysis workers while the workload
//! runs, and the merged profile is bit-identical to the batch answer.
//!
//! ```
//! use hwprof::{Experiment, scenarios};
//!
//! let stream = Experiment::new()
//!     .scenario(scenarios::network_receive(64 * 1024, false))
//!     .try_run_streaming(4)
//!     .expect("pipeline keeps up");
//! assert!(stream.banks >= 1);
//! ```

pub mod backend;
pub mod comparison;
pub mod error;
pub mod experiment;
pub mod scenarios;

pub use backend::{
    BackendCost, BoardBackend, CaptureBackend, CountersBackend, KtraceBackend, NativeCapture,
    SamplingBackend,
};
pub use comparison::{BackendComparison, BackendRow};
pub use error::Error;
pub use experiment::{
    build_tagfile, BackendCapture, Capture, Experiment, RecorderHandle, Scenario, ScenarioBuilder,
    SentinelHandle, StreamCapture, SupervisedCapture,
};
pub use hwprof_analysis::{
    validate_json, AlertEntry, AlertJournal, AlertTransition, Analyzer, AnalyzerError, Anomalies,
    Baseline, Detector, Exporter, FleetAlert, FleetSentinel, FlightRecorder, JsonValue, Profile,
    RecorderLedger, Sentinel, SentinelConfig, SentinelConfigError, WindowDiff, WindowRollup,
};
pub use hwprof_baseline::{CounterModel, SampleProfile};
pub use hwprof_profiler::{
    Coverage, FaultInjector, FaultSpec, FlakyTransport, HealthReport, InjectedFaults,
    MemoryTransport, RecorderConfig, RecorderConfigError, RetryPolicy, SupervisorPolicy,
    TagMaskLevel, Transport,
};
pub use hwprof_telemetry::{Registry, SpanEvent, SpanLog, SpanName, SpanPhase, SpanTrack};

// Re-export the component crates under one roof.
pub use hwprof_analysis as analysis;
pub use hwprof_baseline as baseline;
pub use hwprof_instrument as instrument;
pub use hwprof_kernel386 as kernel386;
pub use hwprof_machine as machine;
pub use hwprof_profiler as profiler;
pub use hwprof_snmpmib as snmpmib;
pub use hwprof_tagfile as tagfile;
pub use hwprof_telemetry as telemetry;
