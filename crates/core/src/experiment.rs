//! The experiment harness: build an instrumented kernel, plug in the
//! board, run a scenario, pull the data.
//!
//! This mirrors the paper's workflow end to end: compile the chosen
//! modules with profiling (selective macro-/micro-profiling), resolve
//! `_ProfileBase` with the two-stage link, flip the board's switch, run
//! the workload, carry the RAMs to the "UNIX host" (the analysis crate).

use hwprof_analysis::{analyze_sessions, decode, Reconstruction};
use hwprof_instrument::{two_stage_link, Compiler, KernelImage, LinkResult, ModuleSelect};
use hwprof_kernel386::funcs::{KFn, FUNCS, INLINES};
use hwprof_kernel386::kernel::{Kernel, KernelConfig};
use hwprof_kernel386::sim::{Sim, SimBuilder};
use hwprof_machine::machine::DEFAULT_EPROM_PHYS;
use hwprof_machine::wire::RemoteHost;
use hwprof_machine::CostModel;
use hwprof_profiler::{BoardConfig, Profiler, RawRecord};
use hwprof_tagfile::TagFile;

/// Text+data bytes of the uninstrumented kernel image (a 386BSD 0.1
/// GENERIC-ish size; only the Figure 2 address arithmetic consumes it).
pub const BASE_KERNEL_SIZE: u32 = 560 * 1024;

/// A workload: devices it needs plus the processes it spawns.
pub struct Scenario {
    /// Remote Ethernet host, if the scenario needs the wire.
    pub host: Option<Box<dyn RemoteHost>>,
    /// Whether the IDE disk is needed.
    pub disk: bool,
    /// Spawns the scenario's processes.
    pub spawn: Box<dyn FnOnce(&Sim)>,
}

/// A configured profiling experiment.
pub struct Experiment {
    select: ModuleSelect,
    config: KernelConfig,
    cost: CostModel,
    board: BoardConfig,
    scenario: Option<Scenario>,
    armed: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment {
    /// Defaults: profile everything, stock board, 40 MHz PC, armed.
    pub fn new() -> Self {
        Experiment {
            select: ModuleSelect::All,
            config: KernelConfig::default(),
            cost: CostModel::pc386(),
            board: BoardConfig::default(),
            scenario: None,
            armed: true,
        }
    }

    /// Selective profiling: compile only these modules with triggers
    /// (`swtch` stays tagged regardless — the analyzer needs it).
    pub fn profile_modules(mut self, modules: &[&'static str]) -> Self {
        self.select = ModuleSelect::only(modules);
        self
    }

    /// Profile every module (the macro view).
    pub fn profile_all(mut self) -> Self {
        self.select = ModuleSelect::All;
        self
    }

    /// Production build: no triggers at all (overhead comparisons).
    pub fn profile_none(mut self) -> Self {
        self.select = ModuleSelect::None;
        self
    }

    /// Kernel configuration (clock rate, checksum variant, ...).
    pub fn config(mut self, config: KernelConfig) -> Self {
        self.config = config;
        self
    }

    /// Machine cost model (e.g. the 68020 board).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Board variant (stock 16384x24-bit, or the wide future-work one).
    pub fn board(mut self, board: BoardConfig) -> Self {
        self.board = board;
        self
    }

    /// The workload.
    pub fn scenario(mut self, s: Scenario) -> Self {
        self.scenario = Some(s);
        self
    }

    /// Leave the switch off (the board records nothing).
    pub fn unarmed(mut self) -> Self {
        self.armed = false;
        self
    }

    /// Builds, links, runs and uploads.
    ///
    /// # Panics
    ///
    /// Panics if no scenario was supplied or the simulation panics.
    pub fn run(self) -> Capture {
        let scenario = self.scenario.expect("Experiment needs a scenario");
        // The modified compiler pass; swtch is always tagged.
        let mut compiler = Compiler::new(500);
        let image = compiler
            .compile_forced(&FUNCS, &INLINES, &self.select, &[KFn::Swtch.idx()])
            .expect("fresh tag file cannot collide");
        let tagfile = image.tagfile.clone();
        // The two-stage link resolves _ProfileBase for this build.
        let link = two_stage_link(
            KernelImage::new(BASE_KERNEL_SIZE, &image.stats),
            DEFAULT_EPROM_PHYS,
        )
        .expect("EPROM socket is in the ISA window");
        // The board on the EPROM socket.
        let board = Profiler::new(self.board);
        if self.armed {
            board.set_switch(true);
        }
        let mut builder = SimBuilder::new()
            .cost(self.cost)
            .config(self.config)
            .image(image)
            .profiler(Box::new(board.clone()));
        if let Some(host) = scenario.host {
            builder = builder.ether(host);
        }
        if scenario.disk {
            builder = builder.disk();
        }
        let sim = builder.build();
        (scenario.spawn)(&sim);
        let kernel = sim.run();
        Capture {
            records: board.records(),
            overflowed: board.leds().overflow,
            missed: board.missed(),
            tagfile,
            link,
            kernel,
        }
    }
}

/// The upload: everything the run produced.
pub struct Capture {
    /// The board's RAM contents.
    pub records: Vec<RawRecord>,
    /// The overflow LED: the RAM filled and capture stopped early.
    pub overflowed: bool,
    /// Trigger reads the board saw while not storing.
    pub missed: u64,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
}

impl Capture {
    /// Runs the analysis software over this capture.
    pub fn analyze(&self) -> Reconstruction {
        let (syms, events) = decode(&self.records, &self.tagfile);
        analyze_sessions(&syms, &[events])
    }

    /// Analyzes several captures together (the paper's Figure 3 header
    /// shows 28060 tags — more than one RAM load; the operator swapped
    /// battery-backed RAMs between runs).
    pub fn analyze_concatenated(captures: &[&Capture]) -> Reconstruction {
        assert!(!captures.is_empty(), "at least one capture");
        let mut sessions = Vec::new();
        let mut syms = None;
        for c in captures {
            let (s, events) = decode(&c.records, &c.tagfile);
            syms.get_or_insert(s);
            sessions.push(events);
        }
        analyze_sessions(&syms.expect("non-empty"), &sessions)
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}
