//! The experiment harness: build an instrumented kernel, plug in the
//! board, run a scenario, pull the data.
//!
//! This mirrors the paper's workflow end to end: compile the chosen
//! modules with profiling (selective macro-/micro-profiling), resolve
//! `_ProfileBase` with the two-stage link, flip the board's switch, run
//! the workload, carry the RAMs to the "UNIX host" (the analysis crate).
//!
//! Two capture modes:
//!
//! * [`Experiment::try_run`] — the paper's one-shot capture: the RAM
//!   fills once, the whole image is uploaded afterwards.
//! * [`Experiment::try_run_streaming`] — drain-while-armed: the board's
//!   RAM runs as a double buffer and every full bank streams into an
//!   analysis worker pool *while the workload is still running*, so a
//!   capture is no longer bounded by the 16384-event RAM.

use hwprof_analysis::{analyze_sessions, decode, Reconstruction, StreamAnalyzer};
use hwprof_instrument::{two_stage_link, Compiler, KernelImage, LinkResult, ModuleSelect};
use hwprof_kernel386::funcs::{KFn, FUNCS, INLINES};
use hwprof_kernel386::kernel::{Kernel, KernelConfig};
use hwprof_kernel386::sim::{Sim, SimBuilder};
use hwprof_machine::machine::DEFAULT_EPROM_PHYS;
use hwprof_machine::wire::RemoteHost;
use hwprof_machine::CostModel;
use hwprof_profiler::{BoardConfig, Profiler, RawRecord};
use hwprof_tagfile::TagFile;

use crate::error::Error;

/// Text+data bytes of the uninstrumented kernel image (a 386BSD 0.1
/// GENERIC-ish size; only the Figure 2 address arithmetic consumes it).
pub const BASE_KERNEL_SIZE: u32 = 560 * 1024;

/// A workload: devices it needs plus the processes it spawns.
///
/// Built with [`Scenario::builder`]:
///
/// ```no_run
/// use hwprof::Scenario;
///
/// let s = Scenario::builder()
///     .disk()
///     .spawn(|sim| {
///         sim.spawn("worker", Box::new(|_ctx| { /* ... */ }));
///     })
///     .build();
/// ```
pub struct Scenario {
    host: Option<Box<dyn RemoteHost>>,
    disk: bool,
    spawn: SpawnHook,
}

/// The one-shot process-spawning hook a scenario runs at boot.
type SpawnHook = Box<dyn FnOnce(&Sim)>;

impl Scenario {
    /// Starts building a scenario: no remote host, no disk, nothing
    /// spawned.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// This scenario with `f` run just before its own spawn hook —
    /// decorates a canned workload with bootstrap processes (e.g. a
    /// process that switches the clock sampler on).
    pub fn with_spawn_prelude(self, f: impl FnOnce(&Sim) + 'static) -> Scenario {
        let inner = self.spawn;
        Scenario {
            host: self.host,
            disk: self.disk,
            spawn: Box::new(move |sim| {
                f(sim);
                inner(sim);
            }),
        }
    }
}

/// Builder for [`Scenario`].
#[derive(Default)]
pub struct ScenarioBuilder {
    host: Option<Box<dyn RemoteHost>>,
    disk: bool,
    spawn: Option<SpawnHook>,
}

impl ScenarioBuilder {
    /// The remote Ethernet host on the other end of the wire.
    pub fn host(mut self, host: impl RemoteHost + 'static) -> Self {
        self.host = Some(Box::new(host));
        self
    }

    /// The scenario needs the IDE disk.
    pub fn disk(mut self) -> Self {
        self.disk = true;
        self
    }

    /// Spawns the scenario's processes (runs once, just before the
    /// simulation starts).
    pub fn spawn(mut self, f: impl FnOnce(&Sim) + 'static) -> Self {
        self.spawn = Some(Box::new(f));
        self
    }

    /// Finishes the scenario.  A scenario that never called
    /// [`spawn`](ScenarioBuilder::spawn) spawns nothing and the run
    /// reports [`Error::EmptyScenario`].
    pub fn build(self) -> Scenario {
        Scenario {
            host: self.host,
            disk: self.disk,
            spawn: self.spawn.unwrap_or_else(|| Box::new(|_| {})),
        }
    }
}

/// A configured profiling experiment.
pub struct Experiment {
    select: ModuleSelect,
    config: KernelConfig,
    cost: CostModel,
    board: BoardConfig,
    scenario: Option<Scenario>,
    armed: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment {
    /// Defaults: profile everything, stock board, 40 MHz PC, armed.
    pub fn new() -> Self {
        Experiment {
            select: ModuleSelect::All,
            config: KernelConfig::default(),
            cost: CostModel::pc386(),
            board: BoardConfig::default(),
            scenario: None,
            armed: true,
        }
    }

    /// Selective profiling: compile only these modules with triggers
    /// (`swtch` stays tagged regardless — the analyzer needs it).
    pub fn profile_modules(mut self, modules: &[&'static str]) -> Self {
        self.select = ModuleSelect::only(modules);
        self
    }

    /// Profile every module (the macro view).
    pub fn profile_all(mut self) -> Self {
        self.select = ModuleSelect::All;
        self
    }

    /// Production build: no triggers at all (overhead comparisons).
    pub fn profile_none(mut self) -> Self {
        self.select = ModuleSelect::None;
        self
    }

    /// Kernel configuration (clock rate, checksum variant, ...).
    pub fn config(mut self, config: KernelConfig) -> Self {
        self.config = config;
        self
    }

    /// Machine cost model (e.g. the 68020 board).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Board variant (stock 16384x24-bit, or the wide future-work one).
    pub fn board(mut self, board: BoardConfig) -> Self {
        self.board = board;
        self
    }

    /// The workload.
    pub fn scenario(mut self, s: Scenario) -> Self {
        self.scenario = Some(s);
        self
    }

    /// Leave the switch off (the board records nothing).
    pub fn unarmed(mut self) -> Self {
        self.armed = false;
        self
    }

    /// Compiles, links, plugs the board in and spawns the scenario's
    /// processes; shared by both capture modes.
    fn prepare(self) -> Result<PreparedRun, Error> {
        let scenario = self.scenario.ok_or(Error::MissingScenario)?;
        // The modified compiler pass; swtch is always tagged.
        let mut compiler = Compiler::new(500);
        let image = compiler.compile_forced(&FUNCS, &INLINES, &self.select, &[KFn::Swtch.idx()])?;
        let tagfile = image.tagfile.clone();
        // The two-stage link resolves _ProfileBase for this build.
        let link = two_stage_link(
            KernelImage::new(BASE_KERNEL_SIZE, &image.stats),
            DEFAULT_EPROM_PHYS,
        )?;
        // The board on the EPROM socket.
        let board = Profiler::new(self.board);
        if self.armed {
            board.set_switch(true);
        }
        let mut builder = SimBuilder::new()
            .cost(self.cost)
            .config(self.config)
            .image(image)
            .profiler(Box::new(board.clone()));
        if let Some(host) = scenario.host {
            builder = builder.ether(host);
        }
        if scenario.disk {
            builder = builder.disk();
        }
        let sim = builder.build();
        (scenario.spawn)(&sim);
        if sim.process_count() == 0 {
            return Err(Error::EmptyScenario);
        }
        Ok(PreparedRun {
            board,
            sim,
            tagfile,
            link,
        })
    }

    /// Builds, links, runs and uploads.
    ///
    /// # Errors
    ///
    /// See [`Error`]; a full RAM is *not* an error here — the capture
    /// simply stopped early, exactly like the hardware, and
    /// [`Capture::overflowed`] says so.
    pub fn try_run(self) -> Result<Capture, Error> {
        let p = self.prepare()?;
        let kernel = p.sim.run();
        Ok(Capture {
            records: p.board.records(),
            overflowed: p.board.leds().overflow,
            missed: p.board.missed(),
            tagfile: p.tagfile,
            link: p.link,
            kernel,
        })
    }

    /// Builds, links, runs and uploads.
    ///
    /// # Panics
    ///
    /// Panics on any [`Error`]; use [`Experiment::try_run`] to handle
    /// them.
    pub fn run(self) -> Capture {
        match self.try_run() {
            Ok(c) => c,
            Err(e) => panic!("experiment failed: {e}"),
        }
    }

    /// Drain-while-armed capture: the board streams full half-RAM banks
    /// into a pool of `workers` analysis threads while the scenario is
    /// still running, and the per-bank reconstructions are merged — the
    /// result is bit-identical to uploading all the banks and running
    /// the batch analysis, but the capture length is bounded by the
    /// workload, not the RAM.
    ///
    /// # Errors
    ///
    /// Everything [`Experiment::try_run`] reports, plus
    /// [`Error::BoardOverflow`] if the pipeline ever refused a bank and
    /// the board stopped storing.
    pub fn try_run_streaming(self, workers: usize) -> Result<StreamCapture, Error> {
        let p = self.prepare()?;
        let analyzer = StreamAnalyzer::new(&p.tagfile, workers);
        p.board.set_drain(Box::new(analyzer.feed()));
        let kernel = p.sim.run();
        p.board.set_switch(false);
        // The operator pulls the last, partial RAM...
        let overflowed = p.board.leds().overflow;
        if !overflowed {
            p.board.flush_drain();
        }
        // ...and unplugs the sink so the worker pool can drain out.
        drop(p.board.clear_drain());
        let banks = p.board.banks_drained();
        let missed = p.board.missed();
        let profile = analyzer.finish();
        if overflowed {
            return Err(Error::BoardOverflow { banks, missed });
        }
        Ok(StreamCapture {
            profile,
            banks,
            missed,
            tagfile: p.tagfile,
            link: p.link,
            kernel,
        })
    }

    /// Drain-while-armed capture; see [`Experiment::try_run_streaming`].
    ///
    /// # Panics
    ///
    /// Panics on any [`Error`].
    pub fn run_streaming(self, workers: usize) -> StreamCapture {
        match self.try_run_streaming(workers) {
            Ok(c) => c,
            Err(e) => panic!("streaming experiment failed: {e}"),
        }
    }
}

/// Everything `prepare` sets up before a run.
struct PreparedRun {
    board: Profiler,
    sim: Sim,
    tagfile: TagFile,
    link: LinkResult,
}

/// The upload: everything the run produced.
pub struct Capture {
    /// The board's RAM contents.
    pub records: Vec<RawRecord>,
    /// The overflow LED: the RAM filled and capture stopped early.
    pub overflowed: bool,
    /// Trigger reads the board saw while not storing.
    pub missed: u64,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
}

impl Capture {
    /// Runs the analysis software over this capture.
    pub fn analyze(&self) -> Reconstruction {
        let (syms, events) = decode(&self.records, &self.tagfile);
        analyze_sessions(&syms, &[events])
    }

    /// Analyzes several captures together (the paper's Figure 3 header
    /// shows 28060 tags — more than one RAM load; the operator swapped
    /// battery-backed RAMs between runs).
    pub fn analyze_concatenated(captures: &[&Capture]) -> Reconstruction {
        assert!(!captures.is_empty(), "at least one capture");
        let mut sessions = Vec::new();
        let mut syms = None;
        for c in captures {
            let (s, events) = decode(&c.records, &c.tagfile);
            syms.get_or_insert(s);
            sessions.push(events);
        }
        analyze_sessions(&syms.expect("non-empty"), &sessions)
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}

/// What a drain-while-armed run produced: the capture was analyzed as
/// it streamed, so the profile arrives already reconstructed.
pub struct StreamCapture {
    /// The merged reconstruction over every drained bank.
    pub profile: Reconstruction,
    /// Banks the board handed to the pipeline (including the final
    /// partial one).
    pub banks: u64,
    /// Trigger reads the board saw while not storing (switch off before
    /// arming; zero in a clean streaming run).
    pub missed: u64,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
}

impl StreamCapture {
    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}
