//! The experiment harness: build an instrumented kernel, plug in the
//! board, run a scenario, pull the data.
//!
//! This mirrors the paper's workflow end to end: compile the chosen
//! modules with profiling (selective macro-/micro-profiling), resolve
//! `_ProfileBase` with the two-stage link, flip the board's switch, run
//! the workload, carry the RAMs to the "UNIX host" (the analysis crate).
//!
//! Three capture modes:
//!
//! * [`Experiment::try_run`] — the paper's one-shot capture: the RAM
//!   fills once, the whole image is uploaded afterwards.
//! * [`Experiment::try_run_streaming`] — drain-while-armed: the board's
//!   RAM runs as a double buffer and every full bank streams into an
//!   analysis worker pool *while the workload is still running*, so a
//!   capture is no longer bounded by the 16384-event RAM.
//! * [`Experiment::try_capture`] — the backend-agnostic capture: any
//!   [`CaptureBackend`] (the board, clock sampling, event counters,
//!   ktrace-style software tracing) observes the same run through the
//!   shared arm/drain/finish lifecycle and normalizes into the same
//!   [`Reconstruction`].

use hwprof_analysis::{
    Analyzer, Anomalies, Detector, FlightRecorder, Profile, Reconstruction, RecorderLedger,
    Sentinel, SentinelConfig, StreamAnalyzer, WindowDiff, WindowRollup,
};
use hwprof_instrument::{two_stage_link, Compiler, KernelImage, LinkResult, ModuleSelect};
use hwprof_kernel386::funcs::{KFn, FUNCS, INLINES};
use hwprof_kernel386::kernel::{Kernel, KernelConfig};
use hwprof_kernel386::sim::{Sim, SimBuilder};
use hwprof_machine::machine::DEFAULT_EPROM_PHYS;
use hwprof_machine::wire::RemoteHost;
use hwprof_machine::{CostModel, EpromTap};
use hwprof_profiler::{
    parse_raw_lossy, serialize_raw, BoardConfig, CaptureSupervisor, Coverage, FaultInjector,
    FaultSpec, FlakyTransport, HealthReport, InjectedFaults, MemoryTransport, Profiler, RawRecord,
    RecorderConfig, SupervisedRun, SupervisorPolicy, TagMask, Transport,
};
use hwprof_tagfile::{TagFile, TagKind};
use hwprof_telemetry::{Registry, Snapshot, SpanLog};

use crate::backend::{BackendCost, BoardBackend, CaptureBackend, NativeCapture};
use crate::error::Error;

/// Text+data bytes of the uninstrumented kernel image (a 386BSD 0.1
/// GENERIC-ish size; only the Figure 2 address arithmetic consumes it).
pub const BASE_KERNEL_SIZE: u32 = 560 * 1024;

/// A workload: devices it needs plus the processes it spawns.
///
/// Built with [`Scenario::builder`]:
///
/// ```no_run
/// use hwprof::Scenario;
///
/// let s = Scenario::builder()
///     .disk()
///     .spawn(|sim| {
///         sim.spawn("worker", Box::new(|_ctx| { /* ... */ }));
///     })
///     .build();
/// ```
pub struct Scenario {
    host: Option<Box<dyn RemoteHost>>,
    disk: bool,
    spawn: SpawnHook,
}

/// The one-shot process-spawning hook a scenario runs at boot.
type SpawnHook = Box<dyn FnOnce(&Sim)>;

impl Scenario {
    /// Starts building a scenario: no remote host, no disk, nothing
    /// spawned.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// This scenario with `f` run just before its own spawn hook —
    /// decorates a canned workload with bootstrap processes (e.g. a
    /// process that switches the clock sampler on).
    #[must_use = "returns the decorated scenario; the original is consumed"]
    pub fn with_spawn_prelude(self, f: impl FnOnce(&Sim) + 'static) -> Scenario {
        let inner = self.spawn;
        Scenario {
            host: self.host,
            disk: self.disk,
            spawn: Box::new(move |sim| {
                f(sim);
                inner(sim);
            }),
        }
    }
}

/// Builder for [`Scenario`].
#[derive(Default)]
pub struct ScenarioBuilder {
    host: Option<Box<dyn RemoteHost>>,
    disk: bool,
    spawn: Option<SpawnHook>,
}

impl ScenarioBuilder {
    /// The remote Ethernet host on the other end of the wire.
    #[must_use = "builder methods return the updated builder"]
    pub fn host(mut self, host: impl RemoteHost + 'static) -> Self {
        self.host = Some(Box::new(host));
        self
    }

    /// The scenario needs the IDE disk.
    #[must_use = "builder methods return the updated builder"]
    pub fn disk(mut self) -> Self {
        self.disk = true;
        self
    }

    /// Spawns the scenario's processes (runs once, just before the
    /// simulation starts).
    #[must_use = "builder methods return the updated builder"]
    pub fn spawn(mut self, f: impl FnOnce(&Sim) + 'static) -> Self {
        self.spawn = Some(Box::new(f));
        self
    }

    /// Finishes the scenario.  A scenario that never called
    /// [`spawn`](ScenarioBuilder::spawn) spawns nothing and the run
    /// reports [`Error::EmptyScenario`].
    #[must_use = "the built scenario must be handed to Experiment::scenario"]
    pub fn build(self) -> Scenario {
        Scenario {
            host: self.host,
            disk: self.disk,
            spawn: self.spawn.unwrap_or_else(|| Box::new(|_| {})),
        }
    }
}

/// A configured profiling experiment.
#[must_use = "an Experiment does nothing until a run method consumes it"]
pub struct Experiment {
    select: ModuleSelect,
    config: KernelConfig,
    cost: CostModel,
    board: BoardConfig,
    scenario: Option<Scenario>,
    armed: bool,
    faults: Option<(FaultSpec, u64)>,
    anomaly_limit_ppm: Option<u32>,
    telemetry: Option<Registry>,
    journal: Option<SpanLog>,
    backend: Option<Box<dyn CaptureBackend>>,
}

impl Default for Experiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment {
    /// Defaults: profile everything, stock board, 40 MHz PC, armed.
    pub fn new() -> Self {
        Experiment {
            select: ModuleSelect::All,
            config: KernelConfig::default(),
            cost: CostModel::pc386(),
            board: BoardConfig::default(),
            scenario: None,
            armed: true,
            faults: None,
            anomaly_limit_ppm: None,
            telemetry: None,
            journal: None,
            backend: None,
        }
    }

    /// Selective profiling: compile only these modules with triggers
    /// (`swtch` stays tagged regardless — the analyzer needs it).
    #[must_use = "builder methods return the updated experiment"]
    pub fn profile_modules(mut self, modules: &[&'static str]) -> Self {
        self.select = ModuleSelect::only(modules);
        self
    }

    /// Profile every module (the macro view).
    #[must_use = "builder methods return the updated experiment"]
    pub fn profile_all(mut self) -> Self {
        self.select = ModuleSelect::All;
        self
    }

    /// Production build: no triggers at all (overhead comparisons).
    #[must_use = "builder methods return the updated experiment"]
    pub fn profile_none(mut self) -> Self {
        self.select = ModuleSelect::None;
        self
    }

    /// Kernel configuration (clock rate, checksum variant, ...).
    #[must_use = "builder methods return the updated experiment"]
    pub fn config(mut self, config: KernelConfig) -> Self {
        self.config = config;
        self
    }

    /// Machine cost model (e.g. the 68020 board).
    #[must_use = "builder methods return the updated experiment"]
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Board variant (stock 16384x24-bit, or the wide future-work one).
    #[must_use = "builder methods return the updated experiment"]
    pub fn board(mut self, board: BoardConfig) -> Self {
        self.board = board;
        self
    }

    /// The workload.
    #[must_use = "builder methods return the updated experiment"]
    pub fn scenario(mut self, s: Scenario) -> Self {
        self.scenario = Some(s);
        self
    }

    /// Leave the switch off (the board records nothing).
    #[must_use = "builder methods return the updated experiment"]
    pub fn unarmed(mut self) -> Self {
        self.armed = false;
        self
    }

    /// The measurement technique [`Experiment::try_capture`] drives:
    /// the board ([`BoardBackend`], the default), clock sampling,
    /// event counters, or ktrace-style software tracing — any
    /// [`CaptureBackend`].  Ignored by the other run methods, which
    /// are board-only by construction.
    #[must_use = "builder methods return the updated experiment"]
    pub fn backend(self, b: impl CaptureBackend + 'static) -> Self {
        self.backend_boxed(Box::new(b))
    }

    /// [`Experiment::backend`] for an already-boxed backend (e.g. from
    /// a `Vec<Box<dyn CaptureBackend>>` sweep).
    #[must_use = "builder methods return the updated experiment"]
    pub fn backend_boxed(mut self, b: Box<dyn CaptureBackend>) -> Self {
        self.backend = Some(b);
        self
    }

    /// Injects seeded faults into the capture/upload path
    /// ([`hwprof_profiler::FaultSpec`]): the one-shot upload is
    /// corrupted in transit, and streaming banks are corrupted (or
    /// refused) on their way to the workers.  Analysis automatically
    /// runs in recovery mode so every fault is classified in
    /// [`Anomalies`] rather than corrupting the numbers silently.
    #[must_use = "builder methods return the updated experiment"]
    pub fn faults(mut self, spec: FaultSpec, seed: u64) -> Self {
        self.faults = Some((spec, seed));
        self
    }

    /// Refuse the capture ([`Error::CorruptUpload`]) if classified
    /// anomalies exceed `ppm` per million tags (streaming runs check at
    /// [`Experiment::try_run_streaming`]; one-shot captures at
    /// [`Capture::try_analyze`]).
    #[must_use = "builder methods return the updated experiment"]
    pub fn anomaly_limit_ppm(mut self, ppm: u32) -> Self {
        self.anomaly_limit_ppm = Some(ppm);
        self
    }

    /// Publishes live run telemetry into `reg`: the board's counters
    /// (`board.*`), the supervisor's coverage/mask/transport ledger
    /// (`sup.*`, `transport.*`) on supervised runs, and the analysis
    /// pipeline's `stream.*` metrics on streaming runs.  Off by
    /// default; when off, no metric atomics are touched anywhere on
    /// the capture path.  Serve the registry over SNMP with
    /// [`hwprof_snmpmib::MibExporter`], or join it with the coverage
    /// ledger via [`SupervisedCapture::health`].
    #[must_use = "builder methods return the updated experiment"]
    pub fn telemetry(mut self, reg: &Registry) -> Self {
        self.telemetry = Some(reg.clone());
        self
    }

    /// Records the capture pipeline's span journal into `log`: board
    /// bank swaps and overflows, the supervisor's armed-bank spans,
    /// dark windows, mask shifts and upload rounds, and the streaming
    /// pipeline's per-bank analyze spans, all with simulated
    /// timestamps.  Off by default; the simulated machine is
    /// bit-identical with or without it.  Render the journal alongside
    /// the kernel timeline through [`SupervisedCapture::as_profile`] /
    /// [`StreamCapture::as_profile`].
    #[must_use = "builder methods return the updated experiment"]
    pub fn journal(mut self, log: &SpanLog) -> Self {
        self.journal = Some(log.clone());
        self
    }

    /// Compiles, links, plugs the board in and spawns the scenario's
    /// processes; shared by both capture modes.
    fn prepare(self) -> Result<PreparedRun, Error> {
        self.prepare_with_tap(|board, _| Box::new(board.clone()))
    }

    /// [`prepare`](Experiment::prepare) with a custom EPROM-socket tap:
    /// `make_tap` receives the freshly built board and the build's tag
    /// file and returns whatever sits on the socket (the bare board for
    /// plain captures, a [`CaptureSupervisor`] for supervised ones).
    fn prepare_with_tap(
        self,
        make_tap: impl FnOnce(&Profiler, &TagFile) -> Box<dyn EpromTap>,
    ) -> Result<PreparedRun, Error> {
        let telemetry = self.telemetry;
        let journal = self.journal;
        let scenario = self.scenario.ok_or(Error::MissingScenario)?;
        // The modified compiler pass; swtch is always tagged.
        let mut compiler = Compiler::new(500);
        let image = compiler.compile_forced(&FUNCS, &INLINES, &self.select, &[KFn::Swtch.idx()])?;
        let tagfile = image.tagfile.clone();
        // The two-stage link resolves _ProfileBase for this build.
        let link = two_stage_link(
            KernelImage::new(BASE_KERNEL_SIZE, &image.stats),
            DEFAULT_EPROM_PHYS,
        )?;
        // The board on the EPROM socket.
        let board = Profiler::new(self.board);
        if let Some(reg) = &telemetry {
            board.set_telemetry(reg);
        }
        if let Some(log) = &journal {
            board.set_span_log(log);
        }
        if self.armed {
            board.set_switch(true);
        }
        let tap = make_tap(&board, &tagfile);
        let mut builder = SimBuilder::new()
            .cost(self.cost)
            .config(self.config)
            .image(image)
            .profiler(tap);
        if let Some(host) = scenario.host {
            builder = builder.ether(host);
        }
        if scenario.disk {
            builder = builder.disk();
        }
        let sim = builder.build();
        (scenario.spawn)(&sim);
        if sim.process_count() == 0 {
            return Err(Error::EmptyScenario);
        }
        Ok(PreparedRun {
            board,
            sim,
            tagfile,
            link,
            telemetry,
            journal,
        })
    }

    /// Builds, links, runs and uploads.
    ///
    /// # Errors
    ///
    /// See [`Error`]; a full RAM is *not* an error here — the capture
    /// simply stopped early, exactly like the hardware, and
    /// [`Capture::overflowed`] says so.
    pub fn try_run(self) -> Result<Capture, Error> {
        let faults = self.faults;
        let anomaly_limit_ppm = self.anomaly_limit_ppm;
        let p = self.prepare()?;
        let kernel = p.sim.run();
        let mut records = p.board.records();
        let mut injected = None;
        let mut trailing_bytes = 0u64;
        if let Some((spec, seed)) = faults {
            // The upload leg: records corrupt in the carried RAM, then
            // the byte stream itself can lose its tail.
            let inj = FaultInjector::new(spec, seed);
            let bytes = inj.corrupt_upload(serialize_raw(&inj.corrupt_records(&records)));
            let (parsed, trailing) = parse_raw_lossy(&bytes);
            records = parsed;
            trailing_bytes = trailing as u64;
            injected = Some(inj.counts());
        }
        Ok(Capture {
            records,
            overflowed: p.board.leds().overflow,
            missed: p.board.missed(),
            tagfile: p.tagfile,
            link: p.link,
            kernel,
            injected,
            trailing_bytes,
            anomaly_limit_ppm,
        })
    }

    /// Backend-agnostic capture: builds and links as usual, then drives
    /// the configured [`CaptureBackend`] (default: the board) through
    /// its lifecycle — `plan` before the build, `arm` before the run,
    /// `drain` after it, `finish` to normalize into a
    /// [`Reconstruction`].  The same scenario runs unmodified under
    /// every backend; only the observation technique changes.
    ///
    /// # Errors
    ///
    /// Everything [`Experiment::try_run`] reports, plus
    /// [`Error::BackendFailed`] when the backend could not observe the
    /// run (no samples taken, trace buffer overflowed, ...).
    pub fn try_capture(mut self) -> Result<BackendCapture, Error> {
        let mut backend = self
            .backend
            .take()
            .unwrap_or_else(|| Box::new(BoardBackend));
        // The backend owns the arm switch; prepare leaves the board off.
        self.armed = false;
        backend.plan(&mut self.select, &mut self.config);
        let p = self.prepare()?;
        p.sim.with_kernel(|k| backend.arm(&p.board, k))?;
        let mut kernel = p.sim.run();
        let native = backend.drain(&p.board, &mut kernel)?;
        let profile = backend.finish(&native, &p.tagfile, &kernel)?;
        Ok(BackendCapture {
            backend: backend.name(),
            cost: backend.cost_model(),
            native,
            profile,
            tagfile: p.tagfile,
            link: p.link,
            kernel,
            journal: p.journal,
        })
    }

    /// Drain-while-armed capture: the board streams full half-RAM banks
    /// into a pool of `workers` analysis threads while the scenario is
    /// still running, and the per-bank reconstructions are merged — the
    /// result is bit-identical to uploading all the banks and running
    /// the batch analysis, but the capture length is bounded by the
    /// workload, not the RAM.
    ///
    /// # Errors
    ///
    /// Everything [`Experiment::try_run`] reports, plus
    /// [`Error::BoardOverflow`] if the pipeline ever refused a bank and
    /// the board stopped storing.
    pub fn try_run_streaming(self, workers: usize) -> Result<StreamCapture, Error> {
        let faults = self.faults;
        let anomaly_limit_ppm = self.anomaly_limit_ppm;
        let p = self.prepare()?;
        let injector = faults.map(|(spec, seed)| FaultInjector::new(spec, seed));
        let mut analyzer = match injector {
            Some(_) => StreamAnalyzer::recovering(&p.tagfile, workers),
            None => StreamAnalyzer::new(&p.tagfile, workers),
        };
        if let Some(reg) = &p.telemetry {
            analyzer.set_telemetry(reg);
        }
        if let Some(log) = &p.journal {
            analyzer.set_span_log(log);
        }
        let feed: Box<dyn hwprof_profiler::BankSink> = match &injector {
            // Banks corrupt (or are refused) in transit to the workers.
            Some(inj) => Box::new(inj.sink(Box::new(analyzer.feed()?))),
            None => Box::new(analyzer.feed()?),
        };
        p.board.set_drain(feed);
        let kernel = p.sim.run();
        p.board.set_switch(false);
        // The operator pulls the last, partial RAM...
        let overflowed = p.board.leds().overflow;
        if !overflowed {
            p.board.flush_drain();
        }
        // ...and unplugs the sink so the worker pool can drain out.
        drop(p.board.clear_drain());
        let banks = p.board.banks_drained();
        let missed = p.board.missed();
        let profile = analyzer.finish()?;
        if overflowed {
            return Err(Error::BoardOverflow { banks, missed });
        }
        if let Some(limit) = anomaly_limit_ppm {
            check_anomaly_limit(&profile.anomalies, profile.tags as u64, limit)?;
        }
        Ok(StreamCapture {
            profile,
            banks,
            missed,
            tagfile: p.tagfile,
            link: p.link,
            kernel,
            injected: injector.map(|inj| inj.counts()),
            journal: p.journal,
        })
    }

    /// Supervised capture: a [`CaptureSupervisor`] wraps the board and
    /// drives the run to completion instead of dying on the first
    /// overflow — full banks are pulled, uploaded (with retry, backoff
    /// and a circuit breaker over the policy's seeded transport) and the
    /// board re-armed, each swap leaving an explicit coverage gap; under
    /// sustained overload the EE-PAL tag mask steps down its ladder and
    /// back up when pressure subsides.  The per-bank sessions are
    /// stitched into one timeline reconstruction
    /// ([`Analyzer::run`](hwprof_analysis::Analyzer::run)) whose report
    /// carries a "Coverage" block.
    ///
    /// # Errors
    ///
    /// Everything [`Experiment::try_run`] reports, plus
    /// [`Error::TransportFailed`] when every captured bank was lost and
    /// [`Error::CoverageTooLow`] when the covered fraction ends below
    /// [`SupervisorPolicy::min_coverage_ppm`].
    pub fn supervised(self, policy: SupervisorPolicy) -> Result<SupervisedCapture, Error> {
        let transport: Box<dyn Transport> = Box::new(FlakyTransport::new(
            MemoryTransport::new(),
            policy.transport_fail_ppm,
            policy.seed,
        ));
        self.supervised_with(policy, transport)
    }

    /// [`Experiment::supervised`] with a caller-supplied [`Transport`]
    /// (e.g. a channel into a live pipeline, or a transport with a
    /// scripted outage).
    pub fn supervised_with(
        mut self,
        policy: SupervisorPolicy,
        transport: Box<dyn Transport>,
    ) -> Result<SupervisedCapture, Error> {
        // The supervisor owns the arm switch; the board starts off.
        self.armed = false;
        let mut supervisor: Option<CaptureSupervisor> = None;
        let sup_slot = &mut supervisor;
        let pol = policy.clone();
        let telem = self.telemetry.clone();
        let jour = self.journal.clone();
        let p = self.prepare_with_tap(move |board, tagfile| {
            // The EE-PAL decode for this build: context-switch tags
            // always pass; pinned hot functions resolve by name.
            let cswitch = tagfile
                .entries()
                .iter()
                .filter(|e| e.kind == TagKind::ContextSwitch)
                .map(|e| e.tag);
            let mut mask = TagMask::new(cswitch);
            if !pol.hot_functions.is_empty() {
                mask.set_hot(
                    pol.hot_functions
                        .iter()
                        .filter_map(|name| tagfile.tag_of(name)),
                );
            }
            let sup = CaptureSupervisor::new(board.clone(), mask, pol, transport);
            if let Some(reg) = &telem {
                sup.set_telemetry(reg);
            }
            if let Some(log) = &jour {
                sup.set_span_log(log);
            }
            *sup_slot = Some(sup.clone());
            Box::new(sup)
        })?;
        let sup = supervisor.expect("prepare ran the tap closure");
        let kernel = p.sim.run();
        let run = sup.finish();
        let cov = run.coverage;
        if run.sessions.is_empty() && cov.banks_lost > 0 {
            return Err(Error::TransportFailed {
                banks_lost: cov.banks_lost,
                failures: cov.transport_failures,
            });
        }
        if policy.min_coverage_ppm > 0 && cov.timeline_us > 0 {
            let achieved_ppm = (cov.covered_us.saturating_mul(1_000_000) / cov.timeline_us) as u32;
            if achieved_ppm < policy.min_coverage_ppm {
                return Err(Error::CoverageTooLow {
                    achieved_ppm,
                    required_ppm: policy.min_coverage_ppm,
                });
            }
        }
        let profile = Analyzer::for_tagfile(&p.tagfile)
            .run(&run)
            .expect("supervised stitch configures no anomaly budget");
        Ok(SupervisedCapture {
            run,
            profile,
            tagfile: p.tagfile,
            link: p.link,
            kernel,
            telemetry: p.telemetry,
            journal: p.journal,
        })
    }

    /// Continuous profiling: a supervised run with an always-on
    /// [`FlightRecorder`] subscribed to the capture stream, folding
    /// every delivered bank into fixed-width window rollups as the
    /// workload runs.  Returns a [`RecorderHandle`] carrying the live
    /// query surface (`window` / `range` / `diff` / movers) alongside
    /// the usual full-run reconstruction.
    ///
    /// # Errors
    ///
    /// Everything [`Experiment::supervised`] reports.
    pub fn record(
        self,
        policy: SupervisorPolicy,
        cfg: RecorderConfig,
    ) -> Result<RecorderHandle, Error> {
        let transport: Box<dyn Transport> = Box::new(FlakyTransport::new(
            MemoryTransport::new(),
            policy.transport_fail_ppm,
            policy.seed,
        ));
        self.record_with(policy, transport, cfg)
    }

    /// [`Experiment::record`] with a caller-supplied [`Transport`].
    pub fn record_with(
        mut self,
        policy: SupervisorPolicy,
        transport: Box<dyn Transport>,
        cfg: RecorderConfig,
    ) -> Result<RecorderHandle, Error> {
        // The supervisor owns the arm switch; the board starts off.
        self.armed = false;
        let mut supervisor: Option<CaptureSupervisor> = None;
        let sup_slot = &mut supervisor;
        let mut recorder: Option<FlightRecorder> = None;
        let rec_slot = &mut recorder;
        let pol = policy.clone();
        let telem = self.telemetry.clone();
        let jour = self.journal.clone();
        let p = self.prepare_with_tap(move |board, tagfile| {
            let cswitch = tagfile
                .entries()
                .iter()
                .filter(|e| e.kind == TagKind::ContextSwitch)
                .map(|e| e.tag);
            let mut mask = TagMask::new(cswitch);
            if !pol.hot_functions.is_empty() {
                mask.set_hot(
                    pol.hot_functions
                        .iter()
                        .filter_map(|name| tagfile.tag_of(name)),
                );
            }
            let sup = CaptureSupervisor::new(board.clone(), mask, pol, transport);
            let rec = FlightRecorder::new(tagfile, cfg);
            if let Some(reg) = &telem {
                sup.set_telemetry(reg);
                rec.set_telemetry(reg);
            }
            if let Some(log) = &jour {
                sup.set_span_log(log);
                rec.set_span_log(log);
            }
            sup.set_session_sink(Box::new(rec.clone()));
            *rec_slot = Some(rec);
            *sup_slot = Some(sup.clone());
            Box::new(sup)
        })?;
        let sup = supervisor.expect("prepare ran the tap closure");
        let recorder = recorder.expect("prepare ran the tap closure");
        let kernel = p.sim.run();
        let run = sup.finish();
        recorder.seal(&run);
        let cov = run.coverage;
        if run.sessions.is_empty() && cov.banks_lost > 0 {
            return Err(Error::TransportFailed {
                banks_lost: cov.banks_lost,
                failures: cov.transport_failures,
            });
        }
        if policy.min_coverage_ppm > 0 && cov.timeline_us > 0 {
            let achieved_ppm = (cov.covered_us.saturating_mul(1_000_000) / cov.timeline_us) as u32;
            if achieved_ppm < policy.min_coverage_ppm {
                return Err(Error::CoverageTooLow {
                    achieved_ppm,
                    required_ppm: policy.min_coverage_ppm,
                });
            }
        }
        let profile = Analyzer::for_tagfile(&p.tagfile)
            .run(&run)
            .expect("supervised stitch configures no anomaly budget");
        Ok(RecorderHandle {
            recorder,
            run,
            profile,
            tagfile: p.tagfile,
            link: p.link,
            kernel,
            telemetry: p.telemetry,
            journal: p.journal,
        })
    }

    /// Continuous profiling with regression watching: an
    /// [`Experiment::record`] run whose sealed window stream is then
    /// evaluated by a deterministic [`Sentinel`] — baseline warm-up,
    /// the fixed detector set, hysteresis, and an append-only
    /// [`AlertJournal`](hwprof_analysis::AlertJournal).  Returns a
    /// [`SentinelHandle`] wrapping the usual [`RecorderHandle`].
    ///
    /// The sentinel is a pure read over the recorder: the capture and
    /// the underlying handle are bit-identical to what `record` with
    /// the same policy and config produces.
    ///
    /// # Errors
    ///
    /// Everything [`Experiment::record`] reports.
    pub fn watch(
        self,
        policy: SupervisorPolicy,
        cfg: RecorderConfig,
        sentinel: SentinelConfig,
    ) -> Result<SentinelHandle, Error> {
        let transport: Box<dyn Transport> = Box::new(FlakyTransport::new(
            MemoryTransport::new(),
            policy.transport_fail_ppm,
            policy.seed,
        ));
        self.watch_with(policy, transport, cfg, sentinel)
    }

    /// [`Experiment::watch`] with a caller-supplied [`Transport`].
    pub fn watch_with(
        self,
        policy: SupervisorPolicy,
        transport: Box<dyn Transport>,
        cfg: RecorderConfig,
        sentinel: SentinelConfig,
    ) -> Result<SentinelHandle, Error> {
        let handle = self.record_with(policy, transport, cfg)?;
        let mut sent = Sentinel::new(sentinel);
        if let Some(reg) = &handle.telemetry {
            sent.set_telemetry(reg);
        }
        sent.scan(&handle.recorder);
        Ok(SentinelHandle {
            sentinel: sent,
            handle,
        })
    }
}

/// The trust gate shared by both capture modes: anomalies per million
/// tags against the caller's limit.
fn check_anomaly_limit(anomalies: &Anomalies, tags: u64, limit_ppm: u32) -> Result<(), Error> {
    let total = anomalies.total();
    if total * 1_000_000 > tags.max(1) * u64::from(limit_ppm) {
        return Err(Error::CorruptUpload {
            anomalies: total,
            tags,
            limit_ppm,
        });
    }
    Ok(())
}

/// Everything `prepare` sets up before a run.
struct PreparedRun {
    board: Profiler,
    sim: Sim,
    tagfile: TagFile,
    link: LinkResult,
    telemetry: Option<Registry>,
    journal: Option<SpanLog>,
}

/// The upload: everything the run produced.
pub struct Capture {
    /// The board's RAM contents.
    pub records: Vec<RawRecord>,
    /// The overflow LED: the RAM filled and capture stopped early.
    pub overflowed: bool,
    /// Trigger reads the board saw while not storing.
    pub missed: u64,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
    /// Fault totals, when the run injected faults
    /// ([`Experiment::faults`]).
    pub injected: Option<InjectedFaults>,
    /// Upload bytes that never completed a 5-byte record (nonzero only
    /// when fault injection truncated the stream).
    pub trailing_bytes: u64,
    /// Threshold carried from [`Experiment::anomaly_limit_ppm`].
    anomaly_limit_ppm: Option<u32>,
}

impl Capture {
    /// Runs the analysis software over this capture (strict mode); the
    /// configured front door for other flavours is
    /// [`Analyzer::for_tagfile`]`(&capture.tagfile)`.
    pub fn analyze(&self) -> Reconstruction {
        Analyzer::for_tagfile(&self.tagfile)
            .records(&self.records)
            .expect("strict analysis configures no anomaly budget")
    }

    /// Recovery-mode analysis of this capture, with the upload-level
    /// truncation (bytes that never completed a record) folded into the
    /// anomaly ledger alongside the decode/reconstruction classes.
    fn recovered(&self) -> Reconstruction {
        let mut r = Analyzer::for_tagfile(&self.tagfile)
            .recovering(true)
            .records(&self.records)
            .expect("recovery analysis configures no anomaly budget");
        if self.trailing_bytes > 0 {
            r.note(&Anomalies {
                truncations: 1,
                ..Anomalies::default()
            });
        }
        r
    }

    /// Recovery-mode analysis with a trust gate: errors with
    /// [`Error::CorruptUpload`] if classified anomalies exceed
    /// `limit_ppm` per million tags (defaulting to the experiment's
    /// [`Experiment::anomaly_limit_ppm`], else 1000000 — never refuse).
    pub fn try_analyze(&self, limit_ppm: Option<u32>) -> Result<Reconstruction, Error> {
        let r = self.recovered();
        let limit = limit_ppm.or(self.anomaly_limit_ppm).unwrap_or(1_000_000);
        check_anomaly_limit(&r.anomalies, r.tags as u64, limit)?;
        Ok(r)
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}

/// What a backend-agnostic [`Experiment::try_capture`] run produced:
/// the backend's native data, its normalized reconstruction, and the
/// declared cost model it ran under.
pub struct BackendCapture {
    /// Which backend observed the run ([`CaptureBackend::name`]).
    pub backend: &'static str,
    /// The backend's declared cost model.
    pub cost: BackendCost,
    /// The backend's native output (banks, samples, or counters).
    pub native: NativeCapture,
    /// The normalized reconstruction — the same monoid every capture
    /// mode produces, so reports and exports work unchanged.
    pub profile: Reconstruction,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
    /// The span journal the run recorded into, when
    /// [`Experiment::journal`] was configured.
    journal: Option<SpanLog>,
}

impl BackendCapture {
    /// The unified [`Profile`] view over the normalized reconstruction,
    /// carrying the run's span journal when [`Experiment::journal`] was
    /// configured — the one render/export surface every capture path
    /// shares.
    pub fn as_profile(&self) -> Profile<'_> {
        let p = Profile::new(&self.profile).name(self.backend);
        match &self.journal {
            Some(log) => p.spans(log),
            None => p,
        }
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}

/// What a drain-while-armed run produced: the capture was analyzed as
/// it streamed, so the profile arrives already reconstructed.
pub struct StreamCapture {
    /// The merged reconstruction over every drained bank.
    pub profile: Reconstruction,
    /// Banks the board handed to the pipeline (including the final
    /// partial one).
    pub banks: u64,
    /// Trigger reads the board saw while not storing (switch off before
    /// arming; zero in a clean streaming run).
    pub missed: u64,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
    /// Fault totals, when the run injected faults
    /// ([`Experiment::faults`]).
    pub injected: Option<InjectedFaults>,
    /// The span journal the run recorded into, when
    /// [`Experiment::journal`] was configured.
    journal: Option<SpanLog>,
}

impl StreamCapture {
    /// The unified [`Profile`] view over the streamed reconstruction,
    /// carrying the run's span journal when [`Experiment::journal`]
    /// was configured: `.chrome_trace()` / `.speedscope()` /
    /// `.folded()` / `.html()` render it for Perfetto, speedscope,
    /// flamegraph and standalone-report tooling.
    pub fn as_profile(&self) -> Profile<'_> {
        let p = Profile::new(&self.profile);
        match &self.journal {
            Some(log) => p.spans(log),
            None => p,
        }
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}

/// What a supervised run produced: the delivered per-bank sessions with
/// their gap/downgrade bookkeeping, plus the stitched reconstruction.
pub struct SupervisedCapture {
    /// The supervised run itself: delivered sessions, explicit gaps,
    /// final ladder level and the full [`Coverage`] ledger.
    pub run: SupervisedRun,
    /// The gap-aware stitched reconstruction (coverage folded in, so
    /// [`hwprof_analysis::summary_report`] prints the Coverage block).
    pub profile: Reconstruction,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
    /// The registry the run published into, when
    /// [`Experiment::telemetry`] was configured.
    telemetry: Option<Registry>,
    /// The span journal the run recorded into, when
    /// [`Experiment::journal`] was configured.
    journal: Option<SpanLog>,
}

impl SupervisedCapture {
    /// The run's coverage ledger.
    pub fn coverage(&self) -> &Coverage {
        &self.run.coverage
    }

    /// The unified [`Profile`] view over the stitched reconstruction,
    /// placed on the supervised timeline (per-bank lanes, gap slices,
    /// mask-change markers) and carrying the run's span journal when
    /// [`Experiment::journal`] was configured: `.chrome_trace()` /
    /// `.speedscope()` / `.folded()` / `.html()` render the whole
    /// capture — kernel activity and pipeline — as one trace.
    pub fn as_profile(&self) -> Profile<'_> {
        let p = Profile::new(&self.profile).run(&self.run);
        match &self.journal {
            Some(log) => p.spans(log),
            None => p,
        }
    }

    /// A point-in-time snapshot of the run's telemetry registry, when
    /// [`Experiment::telemetry`] was configured.
    pub fn metrics(&self) -> Option<Snapshot> {
        self.telemetry.as_ref().map(Registry::snapshot)
    }

    /// Joins the live metrics with the [`Coverage`] ledger: every
    /// metric↔ledger pairing the two bookkeeping paths maintain
    /// independently, checked for exact agreement
    /// ([`HealthReport::is_consistent`]).  `None` when the run had no
    /// [`Experiment::telemetry`] registry.
    pub fn health(&self) -> Option<HealthReport> {
        self.metrics()
            .map(|snap| HealthReport::new(snap, self.run.coverage))
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}

/// What [`Experiment::record`] produced: the live flight-recorder
/// query surface over the retained window ring, plus everything a
/// supervised capture carries (the run, the full-run stitched
/// reconstruction, kernel ground truth).
pub struct RecorderHandle {
    /// The sealed flight recorder (cloneable; queries are live).
    recorder: FlightRecorder,
    /// The supervised run itself: delivered sessions, explicit gaps,
    /// final ladder level and the full [`Coverage`] ledger.
    pub run: SupervisedRun,
    /// The full-run gap-aware stitched reconstruction — the one-shot
    /// analysis the window rollups tile.
    pub profile: Reconstruction,
    /// The name/tag file of this build.
    pub tagfile: TagFile,
    /// The resolved two-stage link.
    pub link: LinkResult,
    /// Final kernel state (ground truth, statistics).
    pub kernel: Kernel,
    /// The registry the run published into, when
    /// [`Experiment::telemetry`] was configured.
    telemetry: Option<Registry>,
    /// The span journal the run recorded into, when
    /// [`Experiment::journal`] was configured.
    journal: Option<SpanLog>,
}

impl RecorderHandle {
    /// The recorder itself, for callers that want to keep (or clone)
    /// the query surface directly.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Window `w`'s rollup (see [`FlightRecorder::window`]).
    pub fn window(&self, w: u64) -> Option<WindowRollup> {
        self.recorder.window(w)
    }

    /// The monoid merge of a window range (see
    /// [`FlightRecorder::range`]).
    pub fn range(&self, range: std::ops::Range<u64>) -> Option<WindowRollup> {
        self.recorder.range(range)
    }

    /// The exact per-function delta between two windows (see
    /// [`FlightRecorder::diff`]).
    pub fn diff(&self, a: u64, b: u64) -> Option<WindowDiff> {
        self.recorder.diff(a, b)
    }

    /// Absolute indices of the retained windows, oldest to newest.
    pub fn retained(&self) -> std::ops::Range<u64> {
        self.recorder.retained()
    }

    /// The recorder's exact `covered + dark + evicted == elapsed`
    /// ledger.
    pub fn ledger(&self) -> RecorderLedger {
        self.recorder.ledger()
    }

    /// The run's coverage ledger.
    pub fn coverage(&self) -> &Coverage {
        &self.run.coverage
    }

    /// The unified [`Profile`] view over the *full-run* reconstruction
    /// on the supervised timeline; individual windows render through
    /// [`WindowRollup::as_profile`].
    pub fn as_profile(&self) -> Profile<'_> {
        let p = Profile::new(&self.profile).run(&self.run);
        match &self.journal {
            Some(log) => p.spans(log),
            None => p,
        }
    }

    /// A point-in-time snapshot of the run's telemetry registry, when
    /// [`Experiment::telemetry`] was configured.
    pub fn metrics(&self) -> Option<Snapshot> {
        self.telemetry.as_ref().map(Registry::snapshot)
    }

    /// Fraction of wall time the CPU was busy (from the scheduler, not
    /// the capture).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.kernel.machine.now.max(1);
        1.0 - self.kernel.sched.idle_cycles as f64 / total as f64
    }
}

/// What [`Experiment::watch`] produced: the sealed [`Sentinel`] —
/// baseline, alert journal, firing set — wrapped around the full
/// [`RecorderHandle`] it evaluated.
pub struct SentinelHandle {
    sentinel: Sentinel,
    handle: RecorderHandle,
}

impl SentinelHandle {
    /// The sentinel itself: baseline, config, evaluation counters.
    pub fn sentinel(&self) -> &Sentinel {
        &self.sentinel
    }

    /// The underlying recorder handle (bit-identical to what
    /// [`Experiment::record`] with the same inputs produces).
    pub fn handle(&self) -> &RecorderHandle {
        &self.handle
    }

    /// The append-only alert journal, in evaluation order.
    pub fn journal(&self) -> &hwprof_analysis::AlertJournal {
        self.sentinel.journal()
    }

    /// The (detector, subject) pairs still firing at seal, sorted.
    pub fn firing(&self) -> Vec<(Detector, String)> {
        self.sentinel.firing()
    }

    /// The unified [`Profile`] view over the full-run reconstruction
    /// with the alert journal attached: HTML grows an Alerts section,
    /// the Chrome trace grows alert instant markers.
    pub fn as_profile(&self) -> Profile<'_> {
        self.handle
            .as_profile()
            .alerts(self.sentinel.journal().entries())
    }

    /// A deterministic text digest of the sentinel state and journal.
    pub fn describe(&self) -> String {
        self.sentinel.describe()
    }

    /// Splits into the sentinel and the recorder handle.
    pub fn into_parts(self) -> (Sentinel, RecorderHandle) {
        (self.sentinel, self.handle)
    }
}

/// Compiles the instrumented kernel's tag file without running
/// anything: the same modified compiler pass every [`Experiment`] run
/// uses (`swtch` always tagged), on its own.
///
/// The compile is deterministic, so every machine in a fleet built
/// with the same `select` shares one tag file — which is what lets a
/// fleet aggregator build its decoder and symbol table up front and
/// merge per-machine [`Reconstruction`](hwprof_analysis::Reconstruction)s
/// through the monoid.
pub fn build_tagfile(select: &ModuleSelect) -> Result<TagFile, Error> {
    let mut compiler = Compiler::new(500);
    let image = compiler.compile_forced(&FUNCS, &INLINES, select, &[KFn::Swtch.idx()])?;
    Ok(image.tagfile)
}
