//! One capture API over every measurement technique the paper weighs.
//!
//! The paper's board is one of four ways this repo can observe the same
//! kernel: the EPROM-tap board (the paper's contribution), clock-driven
//! PC sampling (the `kgmon`/`gprof` status quo), always-on event
//! counters (the `vmstat`/`netstat` status quo), and ktrace-style
//! software tracing (log every trigger in kernel memory, no hardware).
//! Before this redesign each lived behind its own ad-hoc entry point;
//! [`CaptureBackend`] puts them behind one arm/drain/finish lifecycle
//! so a scenario written once runs unmodified under any of them:
//!
//! ```
//! use hwprof::{Experiment, SamplingBackend, scenarios};
//!
//! let cap = Experiment::new()
//!     .backend(SamplingBackend::statclock(5000))
//!     .scenario(scenarios::network_receive(16 * 1024, false))
//!     .try_capture()
//!     .expect("experiment builds and links");
//! assert_eq!(cap.backend, "sampling");
//! assert!(cap.profile.total_elapsed > 0);
//! ```
//!
//! Every backend must also *declare* its cost model up front
//! ([`BackendCost`]): what one observed event costs the kernel, how far
//! its attribution may drift from truth, and how late its timestamps
//! land.  The declarations are honest claims, not vibes — the
//! `repro_backends` gate measures each backend against the board and
//! the ground-truth oracle and fails CI if a backend exceeds its own
//! declaration.

use hwprof_analysis::{Analyzer, Reconstruction};
use hwprof_baseline::{CounterModel, SampleProfile};
use hwprof_instrument::ModuleSelect;
use hwprof_kernel386::kernel::{KernStats, Kernel, KernelConfig};
use hwprof_profiler::{Profiler, RawRecord, TIME_MASK};
use hwprof_tagfile::TagFile;

use crate::error::Error;

/// A backend's declared cost model: what observing costs, and how far
/// the answer may drift.  Declarations are checked, not decorative —
/// the cross-backend comparison ([`crate::BackendComparison`]) measures
/// each backend against ground truth and flags any row that exceeds
/// its own `bias_l1_bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCost {
    /// CPU cycles the kernel pays per observed event (the perturbation
    /// axis of the paper's Heisenberg trade-off).
    pub per_event_cycles: u64,
    /// Declared upper bound on attribution bias: the L1 distance
    /// between this backend's per-function time shares and the ground
    /// truth shares (0 = exact, 2 = disjoint).
    pub bias_l1_bound: f64,
    /// How far (µs) an attributed timestamp may land from the event it
    /// claims to describe — counter skid, sampling quantization.
    pub skid_us: u64,
    /// Whether the backend observes call *counts* (entry/exit pairs)
    /// or only time-in-function.
    pub counts_calls: bool,
}

/// What a backend pulled off the machine, before normalization: the
/// union of every backend's native output shape.
#[derive(Debug, Clone)]
pub enum NativeCapture {
    /// Tag/timestamp record banks (board and ktrace backends) — the
    /// paper's RAM images, decoded by the tag file.
    Banks(Vec<Vec<RawRecord>>),
    /// A clock-sampled program-counter histogram.
    Samples(SampleProfile),
    /// The always-on event counters.
    Counters(KernStats),
}

impl NativeCapture {
    /// Total native events in the capture (records, samples, or counted
    /// events — whatever the backend's unit is).
    pub fn events(&self) -> u64 {
        match self {
            NativeCapture::Banks(banks) => banks.iter().map(|b| b.len() as u64).sum(),
            NativeCapture::Samples(p) => p.total,
            NativeCapture::Counters(s) => {
                s.intrs
                    + s.ticks
                    + s.cswitches
                    + s.syscalls
                    + s.packets_in
                    + s.packets_out
                    + s.disk_xfers
                    + s.page_faults
            }
        }
    }
}

/// One way of observing the running kernel, behind the shared
/// arm/drain/finish lifecycle [`crate::Experiment::try_capture`]
/// drives:
///
/// 1. **plan** — before the build, the backend adjusts the module
///    selection and kernel configuration to what it needs (sampling
///    wants a production build plus a statclock; the board keeps
///    whatever the caller selected).
/// 2. **arm** — after the build, before the run: flip whatever switch
///    starts this backend observing.
/// 3. **drain** — after the run: pull the backend's native data off
///    the machine.
/// 4. **finish** — normalize the native capture into the analysis
///    pipeline's [`Reconstruction`] monoid, so every backend's output
///    flows through the same reports, exports, and comparisons.
pub trait CaptureBackend {
    /// Short stable identifier (`"board"`, `"sampling"`, ...).
    fn name(&self) -> &'static str;

    /// The backend's declared cost model.
    fn cost_model(&self) -> BackendCost;

    /// Pre-build hook: adjust module selection / kernel config.  The
    /// default keeps the caller's build untouched.
    fn plan(&self, _select: &mut ModuleSelect, _config: &mut KernelConfig) {}

    /// Post-build, pre-run hook: start observing.
    ///
    /// # Errors
    ///
    /// [`Error::BackendFailed`] when the backend cannot start on this
    /// build (e.g. nothing it could observe).
    fn arm(&mut self, board: &Profiler, kernel: &mut Kernel) -> Result<(), Error>;

    /// Post-run hook: stop observing and pull the native data.
    ///
    /// # Errors
    ///
    /// [`Error::BackendFailed`] when the run produced nothing usable
    /// (no samples taken, trace buffer overflowed, ...).
    fn drain(&mut self, board: &Profiler, kernel: &mut Kernel) -> Result<NativeCapture, Error>;

    /// Normalizes the native capture into the [`Reconstruction`]
    /// monoid.
    ///
    /// # Errors
    ///
    /// [`Error::BackendFailed`] when the native data does not decode.
    fn finish(
        &self,
        native: &NativeCapture,
        tagfile: &TagFile,
        kernel: &Kernel,
    ) -> Result<Reconstruction, Error>;
}

fn fail(backend: &'static str, reason: impl Into<String>) -> Error {
    Error::BackendFailed {
        backend,
        reason: reason.into(),
    }
}

/// The shape every record-bank backend shares in `finish`: decode the
/// banks as sessions through the strict [`Analyzer`] — bit-identical to
/// [`crate::Capture::analyze`] over the concatenated upload.
fn finish_banks(
    backend: &'static str,
    native: &NativeCapture,
    tagfile: &TagFile,
) -> Result<Reconstruction, Error> {
    let NativeCapture::Banks(banks) = native else {
        return Err(fail(backend, "native capture is not record banks"));
    };
    Analyzer::for_tagfile(tagfile)
        .record_sessions(banks.iter().map(Vec::as_slice))
        .map_err(|e| fail(backend, e.to_string()))
}

/// The reference backend: the paper's EPROM-tap board, as a zero-cost
/// adapter over the [`Profiler`] the harness already plugs into the
/// socket.  `arm` flips the front-panel switch, `drain` carries the RAM
/// image to the host, `finish` is the batch analysis — bit-identical to
/// [`crate::Experiment::try_run`] + [`crate::Capture::analyze`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BoardBackend;

impl CaptureBackend for BoardBackend {
    fn name(&self) -> &'static str {
        "board"
    }

    fn cost_model(&self) -> BackendCost {
        BackendCost {
            // One EPROM-read trigger instruction per event (the paper's
            // "two memory cycles").
            per_event_cycles: 2,
            // The board measures time directly; residual bias is the
            // trigger perturbation itself.
            bias_l1_bound: 0.10,
            // Timestamps latch in hardware at the trigger.
            skid_us: 0,
            counts_calls: true,
        }
    }

    fn arm(&mut self, board: &Profiler, _kernel: &mut Kernel) -> Result<(), Error> {
        board.set_switch(true);
        Ok(())
    }

    fn drain(&mut self, board: &Profiler, _kernel: &mut Kernel) -> Result<NativeCapture, Error> {
        board.set_switch(false);
        Ok(NativeCapture::Banks(vec![board.records()]))
    }

    fn finish(
        &self,
        native: &NativeCapture,
        tagfile: &TagFile,
        _kernel: &Kernel,
    ) -> Result<Reconstruction, Error> {
        finish_banks(self.name(), native, tagfile)
    }
}

/// The status-quo profiler the paper argues against: clock-driven PC
/// sampling.  Plans a *production* build (no triggers — samplers don't
/// need instrumentation) and optionally a dedicated statclock; each
/// sample then costs the kernel the sampler's interrupt path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingBackend {
    /// Dedicated statclock rate; `None` samples from `hardclock`.
    pub statclock_hz: Option<u64>,
    /// Pseudo-random statclock phase (defeats synchronized workloads).
    pub skewed: bool,
}

impl SamplingBackend {
    /// Sample from the existing `hardclock` tick (the classic
    /// `gatherstats` arrangement — zero extra interrupts).
    #[must_use]
    pub fn hardclock() -> Self {
        SamplingBackend::default()
    }

    /// Sample from a dedicated statclock at `hz`.
    #[must_use]
    pub fn statclock(hz: u64) -> Self {
        SamplingBackend {
            statclock_hz: Some(hz),
            skewed: false,
        }
    }

    /// Sample from a phase-skewed statclock at `hz`.
    #[must_use]
    pub fn skewed(hz: u64) -> Self {
        SamplingBackend {
            statclock_hz: Some(hz),
            skewed: true,
        }
    }

    fn rate_hz(&self, config: &KernelConfig) -> u64 {
        self.statclock_hz.unwrap_or(config.clock_hz)
    }
}

impl CaptureBackend for SamplingBackend {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn cost_model(&self) -> BackendCost {
        BackendCost {
            // The sampler's interrupt path (take_sample), per sample.
            per_event_cycles: 120,
            // A histogram of interrupted PCs: shares drift with rate,
            // and the clock path itself is invisible to it.
            bias_l1_bound: 1.0,
            // A sample attributes one whole period to wherever the
            // clock landed.
            skid_us: 10_000,
            counts_calls: false,
        }
    }

    fn plan(&self, select: &mut ModuleSelect, config: &mut KernelConfig) {
        // Samplers run against production builds: no triggers.
        *select = ModuleSelect::None;
        if let Some(hz) = self.statclock_hz {
            config.statclock_hz = Some(hz);
            config.statclock_skewed = self.skewed;
        }
    }

    fn arm(&mut self, _board: &Profiler, kernel: &mut Kernel) -> Result<(), Error> {
        kernel.sampling.enabled = true;
        Ok(())
    }

    fn drain(&mut self, _board: &Profiler, kernel: &mut Kernel) -> Result<NativeCapture, Error> {
        kernel.sampling.enabled = false;
        let profile = SampleProfile::from_kernel(kernel);
        if profile.total == 0 {
            return Err(fail(
                self.name(),
                format!(
                    "no samples taken at {} Hz (run shorter than one period?)",
                    self.rate_hz(&kernel.config)
                ),
            ));
        }
        Ok(NativeCapture::Samples(profile))
    }

    fn finish(
        &self,
        native: &NativeCapture,
        _tagfile: &TagFile,
        _kernel: &Kernel,
    ) -> Result<Reconstruction, Error> {
        let NativeCapture::Samples(p) = native else {
            return Err(fail(self.name(), "native capture is not samples"));
        };
        Ok(p.normalize())
    }
}

/// The other status quo: always-on event counters, read after the run
/// and pushed through the anchored [`CounterModel`].  Zero runtime
/// cost, production build — and the widest declared bias of any
/// backend, because a counter can only *guess* where time went.
#[derive(Debug, Clone, Default)]
pub struct CountersBackend {
    /// The anchor table; [`CounterModel::default`] unless overridden.
    pub model: CounterModel,
}

impl CaptureBackend for CountersBackend {
    fn name(&self) -> &'static str {
        "counters"
    }

    fn cost_model(&self) -> BackendCost {
        BackendCost {
            // The kernel maintains these counters anyway.
            per_event_cycles: 0,
            // Attribution is a static per-event cost guess; declared at
            // the theoretical maximum because nothing bounds it.
            bias_l1_bound: 2.0,
            // A counter dump has one timestamp: "after the run".
            skid_us: 1_000_000,
            counts_calls: true,
        }
    }

    fn plan(&self, select: &mut ModuleSelect, _config: &mut KernelConfig) {
        // Counters need no instrumentation at all.
        *select = ModuleSelect::None;
    }

    fn arm(&mut self, _board: &Profiler, _kernel: &mut Kernel) -> Result<(), Error> {
        // Always on; nothing to arm.
        Ok(())
    }

    fn drain(&mut self, _board: &Profiler, kernel: &mut Kernel) -> Result<NativeCapture, Error> {
        Ok(NativeCapture::Counters(kernel.stats.clone()))
    }

    fn finish(
        &self,
        native: &NativeCapture,
        _tagfile: &TagFile,
        _kernel: &Kernel,
    ) -> Result<Reconstruction, Error> {
        let NativeCapture::Counters(stats) = native else {
            return Err(fail(self.name(), "native capture is not counters"));
        };
        Ok(self.model.normalize(stats))
    }
}

/// Ktrace-style software tracing: the same compiled-in triggers the
/// board reads, logged to a kernel-memory ring instead of hardware —
/// what you do when you can't solder.  Every event costs a store into
/// the trace buffer (~20× the board's trigger), which is exactly the
/// perturbation the paper built hardware to avoid; the records decode
/// through the very same tag file and analyzer as the board's.
#[derive(Debug, Clone, Copy)]
pub struct KtraceBackend {
    /// Trace buffer capacity in events; the run fails on overflow
    /// (`drop-oldest` would silently bias the profile).
    pub capacity: usize,
}

impl Default for KtraceBackend {
    fn default() -> Self {
        KtraceBackend { capacity: 1 << 20 }
    }
}

impl CaptureBackend for KtraceBackend {
    fn name(&self) -> &'static str {
        "ktrace"
    }

    fn cost_model(&self) -> BackendCost {
        BackendCost {
            // One traced store per event: buffer write, index update.
            per_event_cycles: 40,
            // Sees every trigger, but its own per-event cost dilates
            // the times it reports.
            bias_l1_bound: 0.30,
            // Software timestamps land after the trace-store cost.
            skid_us: 1,
            counts_calls: true,
        }
    }

    fn arm(&mut self, _board: &Profiler, kernel: &mut Kernel) -> Result<(), Error> {
        kernel.swtrace.capacity = self.capacity;
        kernel.swtrace.enabled = true;
        Ok(())
    }

    fn drain(&mut self, _board: &Profiler, kernel: &mut Kernel) -> Result<NativeCapture, Error> {
        kernel.swtrace.enabled = false;
        if kernel.swtrace.dropped > 0 {
            return Err(fail(
                self.name(),
                format!(
                    "trace buffer overflowed: {} events dropped after {}",
                    kernel.swtrace.dropped,
                    kernel.swtrace.events.len()
                ),
            ));
        }
        // The software trace logs (tag, µs); the analyzer's record path
        // expects the board's 24-bit wrapped timestamps, and its
        // unwrapper reconstructs the full timeline.
        let records: Vec<RawRecord> = kernel
            .swtrace
            .events
            .iter()
            .map(|&(tag, t_us)| RawRecord {
                tag,
                time: (t_us & u64::from(TIME_MASK)) as u32,
            })
            .collect();
        if records.is_empty() {
            return Err(fail(self.name(), "trace buffer is empty (no triggers?)"));
        }
        Ok(NativeCapture::Banks(vec![records]))
    }

    fn finish(
        &self,
        native: &NativeCapture,
        tagfile: &TagFile,
        _kernel: &Kernel,
    ) -> Result<Reconstruction, Error> {
        finish_banks(self.name(), native, tagfile)
    }
}
