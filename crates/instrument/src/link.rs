//! The two-stage link that resolves `_ProfileBase` (Figure 2).
//!
//! After initial loading, 386BSD remaps itself to virtual `0xFE000000`;
//! "the last location of the kernel is rounded to a page boundary, and a
//! fixed number of pages are allocated for the kernel stack, a proto udot
//! area and other virtual memory requirements.  The ISA memory address
//! space is then remapped to follow this kernel address space; the virtual
//! address that this memory is mapped at may vary depending on the size of
//! the kernel."

use crate::compile::{CompileStats, TRIGGER_INSTR_BYTES};

/// Page size of the i386.
pub const PAGE_SIZE: u32 = 4096;
/// Virtual base the kernel is remapped to.
pub const KERNBASE: u32 = 0xFE00_0000;
/// First physical address of the ISA bus memory window.
pub const ISA_PHYS_BASE: u32 = 0x000A_0000;
/// One past the last physical address of the ISA window (hex 100000).
pub const ISA_PHYS_END: u32 = 0x0010_0000;
/// Pages reserved after the kernel for the stack, proto udot and other
/// VM requirements before the ISA remap begins.
pub const FIXED_PAGES: u32 = 3;

/// Rounds `addr` up to the next page boundary.
pub fn round_page(addr: u32) -> u32 {
    addr.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// Errors in the address arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The EPROM socket's physical address is outside the ISA window.
    EpromOutsideIsaWindow {
        /// The offending address.
        phys: u32,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::EpromOutsideIsaWindow { phys } => write!(
                f,
                "EPROM physical address {phys:#x} outside ISA window \
                 {ISA_PHYS_BASE:#x}..{ISA_PHYS_END:#x}"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// The kernel's runtime view of the ISA memory window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsaMap {
    /// Virtual address where physical `ISA_PHYS_BASE` appears.
    pub isa_va: u32,
}

impl IsaMap {
    /// Computes the remap for a kernel of `kernel_size` bytes.
    pub fn for_kernel_size(kernel_size: u32) -> IsaMap {
        let kernel_end = round_page(KERNBASE.wrapping_add(kernel_size));
        IsaMap {
            isa_va: kernel_end + FIXED_PAGES * PAGE_SIZE,
        }
    }

    /// Kernel virtual address of ISA physical address `phys`.
    pub fn phys_to_virt(&self, phys: u32) -> Result<u32, LinkError> {
        if !(ISA_PHYS_BASE..ISA_PHYS_END).contains(&phys) {
            return Err(LinkError::EpromOutsideIsaWindow { phys });
        }
        Ok(self.isa_va + (phys - ISA_PHYS_BASE))
    }
}

/// The link input: a kernel image whose size depends on instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelImage {
    /// Text + data size of the uninstrumented kernel, bytes.
    pub base_size: u32,
    /// Trigger instructions added by the compiler.
    pub trigger_instructions: u32,
}

impl KernelImage {
    /// An image sized from compiler statistics.
    pub fn new(base_size: u32, stats: &CompileStats) -> Self {
        KernelImage {
            base_size,
            trigger_instructions: stats.trigger_instructions as u32,
        }
    }

    /// Linked size in bytes.  The value of `_ProfileBase` does not change
    /// the size (the trigger instruction encodes a 32-bit absolute either
    /// way), which is what makes the two-stage link converge.
    pub fn size(&self) -> u32 {
        self.base_size + self.trigger_instructions * TRIGGER_INSTR_BYTES
    }
}

/// The resolved link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkResult {
    /// Final kernel size in bytes.
    pub kernel_size: u32,
    /// The runtime virtual address of the Profiler's EPROM window: the
    /// value of `_ProfileBase`.  Trigger instructions read
    /// `_ProfileBase + tag`.
    pub profile_base: u32,
    /// Link passes performed (2 in the paper's scheme).
    pub passes: u32,
}

/// Runs the paper's two-stage link: link with a dummy `_ProfileBase`,
/// extract the size, recompute the real value, relink, and verify the
/// size did not move.
pub fn two_stage_link(image: KernelImage, eprom_phys: u32) -> Result<LinkResult, LinkError> {
    // Stage 1: dummy value; we only need the size.
    let size_pass1 = image.size();
    // Stage 2: compute the real ProfileBase from the stage-1 size and
    // relink.  The size is value-independent, so one fixpoint check
    // suffices; assert it anyway — if the instruction encoding ever made
    // size depend on the value this would catch it.
    let map = IsaMap::for_kernel_size(size_pass1);
    let profile_base = map.phys_to_virt(eprom_phys)?;
    let size_pass2 = image.size();
    assert_eq!(size_pass1, size_pass2, "link did not converge");
    Ok(LinkResult {
        kernel_size: size_pass2,
        profile_base,
        passes: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_window_follows_kernel_and_fixed_pages() {
        // A 1 MiB kernel: end rounds to KERNBASE + 0x100000 exactly.
        let map = IsaMap::for_kernel_size(0x0010_0000);
        assert_eq!(map.isa_va, KERNBASE + 0x0010_0000 + 3 * PAGE_SIZE);
        // A one-byte-longer kernel slides the window a whole page.
        let map2 = IsaMap::for_kernel_size(0x0010_0001);
        assert_eq!(map2.isa_va, map.isa_va + PAGE_SIZE);
    }

    #[test]
    fn profile_base_tracks_kernel_size() {
        let img_small = KernelImage {
            base_size: 800_000,
            trigger_instructions: 0,
        };
        let img_big = KernelImage {
            base_size: 800_000,
            trigger_instructions: 2854, // the paper's 2784 + 35*2
        };
        let eprom = 0x000C_C000;
        let a = two_stage_link(img_small, eprom).unwrap();
        let b = two_stage_link(img_big, eprom).unwrap();
        assert!(b.kernel_size > a.kernel_size);
        assert!(
            b.profile_base >= a.profile_base,
            "bigger kernel pushes the window up"
        );
        assert_eq!(a.passes, 2);
    }

    #[test]
    fn eprom_must_sit_in_the_isa_window() {
        let img = KernelImage {
            base_size: 500_000,
            trigger_instructions: 100,
        };
        assert!(two_stage_link(img, 0x0009_0000).is_err());
        assert!(two_stage_link(img, 0x0010_0000).is_err());
        assert!(two_stage_link(img, 0x000A_0000).is_ok());
        assert!(two_stage_link(img, 0x000F_FFFF).is_ok());
    }

    #[test]
    fn trigger_addresses_land_inside_the_window() {
        let img = KernelImage {
            base_size: 700_000,
            trigger_instructions: 2854,
        };
        let link = two_stage_link(img, 0x000C_C000).unwrap();
        // The 16-bit tag offset keeps every trigger read within the
        // 64 KiB EPROM decode.
        let lo = link.profile_base;
        let hi = link.profile_base + u16::MAX as u32;
        assert!(hi > lo);
        let map = IsaMap::for_kernel_size(link.kernel_size);
        assert_eq!(map.phys_to_virt(0x000C_C000).unwrap(), lo);
    }

    #[test]
    fn round_page_behaviour() {
        assert_eq!(round_page(0), 0);
        assert_eq!(round_page(1), PAGE_SIZE);
        assert_eq!(round_page(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(round_page(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }
}
