//! Trigger insertion: the compiler pass over the kernel's function table.

use std::collections::BTreeSet;

use hwprof_tagfile::{TagFile, TagFileError, TagKind};

/// Static metadata for one kernel function, as the compiler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncMeta {
    /// Symbol name (what goes in the name/tag file).
    pub name: &'static str,
    /// Source module ("net", "vm", "fs", "kern", "locore", ...); the unit
    /// of selective profiling.
    pub module: &'static str,
    /// True if this function causes a context switch (`!` in the file).
    pub context_switch: bool,
}

/// Static metadata for one inline trigger point (`=` in the file),
/// inserted via the compiler `asm` macro or the assembler include file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineMeta {
    /// Trigger-point name (e.g. `MGET`).
    pub name: &'static str,
    /// Module whose compilation controls it.
    pub module: &'static str,
}

/// Which modules get compiled with profiling enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleSelect {
    /// Nothing instrumented: the unprofiled production kernel.
    None,
    /// Everything instrumented.
    All,
    /// Only the named modules (micro-profiling a subsystem).
    Only(BTreeSet<&'static str>),
    /// Everything except the named modules.
    Except(BTreeSet<&'static str>),
}

impl ModuleSelect {
    /// Convenience constructor from a slice of module names.
    pub fn only(modules: &[&'static str]) -> Self {
        ModuleSelect::Only(modules.iter().copied().collect())
    }

    /// True if `module` compiles with profiling.
    pub fn selects(&self, module: &str) -> bool {
        match self {
            ModuleSelect::None => false,
            ModuleSelect::All => true,
            ModuleSelect::Only(set) => set.contains(module),
            ModuleSelect::Except(set) => !set.contains(module),
        }
    }
}

/// Sizes the compiler reports about the instrumented build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Functions compiled with entry/exit triggers.
    pub instrumented_functions: usize,
    /// Functions compiled without.
    pub plain_functions: usize,
    /// Inline trigger points enabled.
    pub inline_points: usize,
    /// Total trigger instructions added (2 per function + 1 per inline).
    pub trigger_instructions: usize,
    /// Bytes of text added (each trigger is a 6-byte `movb abs32,%al`).
    pub text_growth: u32,
}

/// Bytes of one trigger instruction on the 386 (`movb _ProfileBase+tag,%al`).
pub const TRIGGER_INSTR_BYTES: u32 = 6;

/// The build product: which tag (if any) each function and inline point
/// received.
#[derive(Debug, Clone)]
pub struct InstrumentedImage {
    entry_tags: Vec<Option<u16>>,
    inline_tags: Vec<Option<u16>>,
    /// The (possibly extended) name/tag file used by this build.
    pub tagfile: TagFile,
    /// Compiler size report.
    pub stats: CompileStats,
}

impl InstrumentedImage {
    /// Entry tag of function index `i`, if its module was instrumented.
    #[inline]
    pub fn entry_tag(&self, i: usize) -> Option<u16> {
        self.entry_tags[i]
    }

    /// Exit tag of function index `i` (entry + 1).
    #[inline]
    pub fn exit_tag(&self, i: usize) -> Option<u16> {
        self.entry_tags[i].map(|t| t + 1)
    }

    /// Tag of inline point index `i`, if enabled.
    #[inline]
    pub fn inline_tag(&self, i: usize) -> Option<u16> {
        self.inline_tags[i]
    }

    /// Number of functions carrying triggers.
    pub fn instrumented_len(&self) -> usize {
        self.entry_tags.iter().flatten().count()
    }
}

/// The modified compiler: owns the name/tag file across builds so tags
/// stay stable over recompilation.
#[derive(Debug, Clone)]
pub struct Compiler {
    tagfile: TagFile,
}

impl Compiler {
    /// A compiler with a fresh name/tag file starting above `base`.
    pub fn new(base: u16) -> Self {
        Compiler {
            tagfile: TagFile::new(base),
        }
    }

    /// A compiler resuming from an existing name/tag file.
    pub fn with_tagfile(tagfile: TagFile) -> Self {
        Compiler { tagfile }
    }

    /// The current name/tag file contents.
    pub fn tagfile(&self) -> &TagFile {
        &self.tagfile
    }

    /// Compiles the kernel: assigns tags to every function and inline
    /// point whose module `select` chooses, extending the name/tag file.
    ///
    /// Functions in unselected modules get no triggers (and no tag unless
    /// they already had one from an earlier build — the file keeps them,
    /// matching the paper's stable-tag behaviour).
    pub fn compile(
        &mut self,
        funcs: &[FuncMeta],
        inlines: &[InlineMeta],
        select: &ModuleSelect,
    ) -> Result<InstrumentedImage, TagFileError> {
        self.compile_forced(funcs, inlines, select, &[])
    }

    /// Like [`Compiler::compile`], but the functions at the given
    /// indices are instrumented regardless of module selection.  Used to
    /// keep the context-switch function tagged under micro-profiling:
    /// without `swtch` events the analysis software cannot split per-
    /// process code paths.
    pub fn compile_forced(
        &mut self,
        funcs: &[FuncMeta],
        inlines: &[InlineMeta],
        select: &ModuleSelect,
        forced: &[usize],
    ) -> Result<InstrumentedImage, TagFileError> {
        let mut entry_tags = Vec::with_capacity(funcs.len());
        let mut stats = CompileStats::default();
        for (i, f) in funcs.iter().enumerate() {
            if select.selects(f.module) || forced.contains(&i) {
                let kind = if f.context_switch {
                    TagKind::ContextSwitch
                } else {
                    TagKind::Function
                };
                let tag = self.tagfile.assign(f.name, kind)?;
                entry_tags.push(Some(tag));
                stats.instrumented_functions += 1;
                stats.trigger_instructions += 2;
            } else {
                entry_tags.push(None);
                stats.plain_functions += 1;
            }
        }
        let mut inline_tags = Vec::with_capacity(inlines.len());
        for p in inlines {
            if select.selects(p.module) {
                let tag = self.tagfile.assign(p.name, TagKind::Inline)?;
                inline_tags.push(Some(tag));
                stats.inline_points += 1;
                stats.trigger_instructions += 1;
            } else {
                inline_tags.push(None);
            }
        }
        stats.text_growth = stats.trigger_instructions as u32 * TRIGGER_INSTR_BYTES;
        Ok(InstrumentedImage {
            entry_tags,
            inline_tags,
            tagfile: self.tagfile.clone(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FUNCS: &[FuncMeta] = &[
        FuncMeta {
            name: "bcopy",
            module: "kern",
            context_switch: false,
        },
        FuncMeta {
            name: "ipintr",
            module: "net",
            context_switch: false,
        },
        FuncMeta {
            name: "swtch",
            module: "kern",
            context_switch: true,
        },
        FuncMeta {
            name: "vm_fault",
            module: "vm",
            context_switch: false,
        },
    ];

    const INLINES: &[InlineMeta] = &[InlineMeta {
        name: "MGET",
        module: "net",
    }];

    #[test]
    fn all_instruments_everything() {
        let mut c = Compiler::new(500);
        let img = c.compile(FUNCS, INLINES, &ModuleSelect::All).unwrap();
        assert_eq!(img.stats.instrumented_functions, 4);
        assert_eq!(img.stats.inline_points, 1);
        assert_eq!(img.stats.trigger_instructions, 9);
        assert_eq!(img.stats.text_growth, 54);
        for i in 0..4 {
            assert!(img.entry_tag(i).is_some());
            assert_eq!(img.exit_tag(i), img.entry_tag(i).map(|t| t + 1));
        }
        // swtch carries the context-switch modifier into the file.
        let e = img.tagfile.entry_of("swtch").unwrap();
        assert_eq!(e.kind, hwprof_tagfile::TagKind::ContextSwitch);
    }

    #[test]
    fn selective_profiling_only_tags_chosen_modules() {
        let mut c = Compiler::new(500);
        let img = c
            .compile(FUNCS, INLINES, &ModuleSelect::only(&["net"]))
            .unwrap();
        assert_eq!(img.entry_tag(0), None, "kern/bcopy untouched");
        assert!(img.entry_tag(1).is_some(), "net/ipintr tagged");
        assert_eq!(img.entry_tag(2), None);
        assert!(img.inline_tag(0).is_some(), "net inline tagged");
        assert_eq!(img.stats.plain_functions, 3);
    }

    #[test]
    fn tags_are_stable_across_rebuilds_with_different_selection() {
        let mut c = Compiler::new(500);
        let micro = c
            .compile(FUNCS, INLINES, &ModuleSelect::only(&["net"]))
            .unwrap();
        let ip_tag = micro.entry_tag(1).unwrap();
        // A later full build must give ipintr the same tag.
        let full = c.compile(FUNCS, INLINES, &ModuleSelect::All).unwrap();
        assert_eq!(full.entry_tag(1), Some(ip_tag));
        // And new functions allocate above everything previously used.
        let bcopy = full.entry_tag(0).unwrap();
        assert!(bcopy > ip_tag);
    }

    #[test]
    fn none_produces_the_production_kernel() {
        let mut c = Compiler::new(500);
        let img = c.compile(FUNCS, INLINES, &ModuleSelect::None).unwrap();
        assert_eq!(img.instrumented_len(), 0);
        assert_eq!(img.stats.trigger_instructions, 0);
        assert_eq!(img.stats.text_growth, 0);
    }

    #[test]
    fn except_inverts_selection() {
        let sel = ModuleSelect::Except(["vm"].into_iter().collect());
        assert!(sel.selects("net"));
        assert!(!sel.selects("vm"));
    }
}
