//! The modified C compiler and the two-stage kernel link.
//!
//! In the paper, gcc 1.39 was changed to emit one trigger instruction in
//! every function prologue and epilogue:
//!
//! ```text
//! _myfunction:
//!     movb _ProfileBase+1386,%al
//!     pushl %ebp
//!     ...
//!     leave
//!     movb _ProfileBase+1387,%cl
//!     ret
//! ```
//!
//! Tags come from the name/tag file (see `hwprof-tagfile`); compiling a
//! module with profiling enabled assigns tags to its functions (extending
//! the file), and compiling it without leaves the functions untouched —
//! the *selective profiling* that the paper's macro-/micro-profiling
//! methodology relies on.
//!
//! Because 386BSD remaps ISA memory into kernel virtual space at an
//! address that depends on the kernel's own size (Figure 2), the absolute
//! address of the Profiler's EPROM window "cannot be resolved at compile
//! time [...] the kernel is first linked with a dummy of `_ProfileBase`,
//! then a shell script is automatically used to extract the size from the
//! kernel and recompile the assembler file with the real value" — the
//! [`link`] module reproduces that address arithmetic and the two-stage
//! convergence.

pub mod compile;
pub mod link;

pub use compile::{CompileStats, Compiler, FuncMeta, InlineMeta, InstrumentedImage, ModuleSelect};
pub use link::{round_page, two_stage_link, IsaMap, KernelImage, LinkError, LinkResult};
