//! Property tests for the tag file invariants.

use proptest::prelude::*;

use crate::{parse, serialize, EventMeaning, TagFile, TagKind};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,14}"
}

proptest! {
    /// Any set of auto-assigned names serializes and parses back to a map
    /// that resolves every name to the same tag.
    #[test]
    fn serialize_parse_roundtrip(names in prop::collection::hash_set(name_strategy(), 1..40)) {
        let mut tf = TagFile::new(500);
        let mut want = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let kind = match i % 3 {
                0 => TagKind::Function,
                1 => TagKind::ContextSwitch,
                _ => TagKind::Inline,
            };
            let tag = tf.assign(n, kind).unwrap();
            want.push((n.clone(), tag, kind));
        }
        let text = serialize(&tf);
        let back = parse(&text).unwrap();
        for (n, tag, kind) in want {
            prop_assert_eq!(back.tag_of(&n), Some(tag));
            prop_assert_eq!(back.entry_of(&n).unwrap().kind, kind);
        }
    }

    /// Auto-assignment never produces colliding trigger values: every
    /// claimed tag resolves to exactly one meaning.
    #[test]
    fn assigned_tags_never_collide(names in prop::collection::hash_set(name_strategy(), 1..60)) {
        let mut tf = TagFile::new(0);
        for (i, n) in names.iter().enumerate() {
            let kind = if i % 4 == 3 { TagKind::Inline } else { TagKind::Function };
            tf.assign(n, kind).unwrap();
        }
        // Each name's claimed values resolve back to that name.
        for e in tf.entries() {
            match tf.resolve(e.tag) {
                EventMeaning::Entry(got) | EventMeaning::Inline(got) => {
                    prop_assert_eq!(&got.name, &e.name);
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
            if e.kind.is_paired() {
                match tf.resolve(e.tag + 1) {
                    EventMeaning::Exit(got) => prop_assert_eq!(&got.name, &e.name),
                    other => prop_assert!(false, "unexpected {:?}", other),
                }
            }
        }
    }

    /// Re-assigning in any later session (simulated by a parse roundtrip)
    /// keeps old tags and allocates fresh ones strictly above.
    #[test]
    fn reassignment_is_stable_and_monotonic(
        first in prop::collection::hash_set(name_strategy(), 1..20),
        second in prop::collection::hash_set(name_strategy(), 1..20),
    ) {
        let mut tf = TagFile::new(100);
        let mut old = Vec::new();
        for n in &first {
            old.push((n.clone(), tf.assign(n, TagKind::Function).unwrap()));
        }
        let mut tf2 = parse(&serialize(&tf)).unwrap();
        let high = old.iter().map(|&(_, t)| t).max().unwrap();
        for (n, t) in &old {
            prop_assert_eq!(tf2.assign(n, TagKind::Function).unwrap(), *t);
        }
        for n in &second {
            let t = tf2.assign(n, TagKind::Function).unwrap();
            if !first.contains(n) {
                prop_assert!(t > high, "fresh tag {} not above {}", t, high);
            }
        }
    }
}
