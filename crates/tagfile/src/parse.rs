//! Text format: `name/tag` with optional trailing `!` or `=` modifier,
//! one entry per line, `#` comments and blank lines ignored.

use std::fmt;

use crate::tagmap::{TagEntry, TagFile, TagFileError, TagKind};

/// Errors from the textual format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line without the `name/tag` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The tag value is not a decimal within 0..=65535.
    BadTag {
        /// 1-based line number.
        line: usize,
        /// The offending value text.
        value: String,
    },
    /// The assembled file violates a map invariant.
    Invalid(TagFileError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { line, text } => {
                write!(f, "line {line}: malformed entry {text:?}")
            }
            ParseError::BadTag { line, value } => {
                write!(f, "line {line}: bad tag value {value:?}")
            }
            ParseError::Invalid(e) => write!(f, "invalid tag file: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<TagFileError> for ParseError {
    fn from(e: TagFileError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Parses the textual name/tag format into a validated [`TagFile`].
///
/// # Examples
///
/// ```
/// let text = "main/502\nswtch/600!\nMGET/1002=\n";
/// let tf = hwprof_tagfile::parse(text).unwrap();
/// assert_eq!(tf.tag_of("swtch"), Some(600));
/// ```
pub fn parse(text: &str) -> Result<TagFile, ParseError> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let s = raw.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let (name, rest) = s.rsplit_once('/').ok_or_else(|| ParseError::Malformed {
            line,
            text: s.to_string(),
        })?;
        if name.is_empty() {
            return Err(ParseError::Malformed {
                line,
                text: s.to_string(),
            });
        }
        let (value, kind) = match rest.as_bytes().last() {
            Some(b'!') => (&rest[..rest.len() - 1], TagKind::ContextSwitch),
            Some(b'=') => (&rest[..rest.len() - 1], TagKind::Inline),
            _ => (rest, TagKind::Function),
        };
        let tag: u16 = value.parse().map_err(|_| ParseError::BadTag {
            line,
            value: value.to_string(),
        })?;
        entries.push(TagEntry {
            name: name.to_string(),
            tag,
            kind,
        });
    }
    Ok(TagFile::from_entries(entries)?)
}

/// Serializes a [`TagFile`] back to the textual format, in file order.
pub fn serialize(tf: &TagFile) -> String {
    let mut out = String::new();
    for e in tf.entries() {
        out.push_str(&e.name);
        out.push('/');
        out.push_str(&e.tag.to_string());
        if let Some(m) = e.kind.modifier() {
            out.push(m);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SAMPLE: &str = "\
main/502
hardclock/510
gatherstats/512
softclock/514
timeout/516
untimeout/518
swtch/600!
MGET/1002=
";

    #[test]
    fn parses_the_papers_sample() {
        let tf = parse(PAPER_SAMPLE).unwrap();
        assert_eq!(tf.len(), 8);
        assert_eq!(tf.tag_of("main"), Some(502));
        assert_eq!(tf.entry_of("swtch").unwrap().kind, TagKind::ContextSwitch);
        assert_eq!(tf.entry_of("MGET").unwrap().kind, TagKind::Inline);
    }

    #[test]
    fn roundtrips() {
        let tf = parse(PAPER_SAMPLE).unwrap();
        assert_eq!(serialize(&tf), PAPER_SAMPLE);
    }

    #[test]
    fn comments_blanks_and_whitespace_tolerated() {
        let tf = parse("# tags\n\n  main/502  \n").unwrap();
        assert_eq!(tf.tag_of("main"), Some(502));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse("main/502\nnonsense\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
        let err = parse("f/99999\n").unwrap_err();
        assert!(matches!(err, ParseError::BadTag { line: 1, .. }));
        let err = parse("/5\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn collision_surfaces_as_invalid() {
        let err = parse("a/100\nb/101\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }
}
