//! The name/event-tag file of the Profiler.
//!
//! The modified compiler takes "a file containing the function names and
//! values", of which the paper shows a sample:
//!
//! ```text
//! main/502
//! hardclock/510
//! gatherstats/512
//! softclock/514
//! timeout/516
//! untimeout/518
//! swtch/600!
//! MGET/1002=
//! ```
//!
//! Rules reproduced from the paper:
//!
//! * Each *function* is assigned an even tag; the function's entry trigger
//!   is that value and its exit trigger is the value + 1.
//! * The file "is automatically extended by the compiler when it generates
//!   new event tags for functions that do not already exist in the file;
//!   the event tag for the added functions is taken as the next available
//!   value (i.e the next value higher than the current highest in the
//!   file)".
//! * The file "may be generated from scratch, with an initial dummy entry
//!   indicating the starting tag number to use".
//! * "Once generated, the same profile tags are used to allow
//!   recompilation without having different profile tags assigned to a
//!   function."
//! * "Multiple name/tag files may exist, and may be concatenated to
//!   provide a complete list of profiled functions."
//! * A `!` modifier marks "a function that causes a processor context
//!   switch, which the analysing software must treat specially".
//! * A `=` modifier marks "an inline tag, as opposed to a tag representing
//!   the entry or exit of a function".

mod parse;
mod tagmap;

pub use parse::{parse, serialize, ParseError};
pub use tagmap::{EventMeaning, TagEntry, TagFile, TagFileError, TagKind};

#[cfg(test)]
mod proptests;
