//! The in-memory tag map and its invariants.

use std::collections::HashMap;
use std::fmt;

/// What kind of trigger point an entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagKind {
    /// A normal function: entry at `tag`, exit at `tag + 1`.
    Function,
    /// A function that causes a processor context switch (`!`): the
    /// analysing software treats the interval between its entry and the
    /// next exit of any such function as a scheduling boundary.
    ContextSwitch,
    /// An inline trigger (`=`): a single point event inside a function,
    /// occupying only `tag` itself.
    Inline,
}

impl TagKind {
    /// The modifier character appended in the file, if any.
    pub fn modifier(self) -> Option<char> {
        match self {
            TagKind::Function => None,
            TagKind::ContextSwitch => Some('!'),
            TagKind::Inline => Some('='),
        }
    }

    /// True if the entry pairs an exit tag at `tag + 1`.
    pub fn is_paired(self) -> bool {
        !matches!(self, TagKind::Inline)
    }
}

/// One line of the name/tag file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagEntry {
    /// Function (or inline point) name.
    pub name: String,
    /// The trigger value; for paired kinds the exit is `tag + 1`.
    pub tag: u16,
    /// Kind, from the modifier character.
    pub kind: TagKind,
}

/// Errors violating the tag file invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagFileError {
    /// The same name appears with two different tags.
    DuplicateName(String),
    /// Two entries claim the same trigger value (directly or via a paired
    /// exit tag).
    TagCollision {
        /// The colliding trigger value.
        tag: u16,
        /// First claimant.
        a: String,
        /// Second claimant.
        b: String,
    },
    /// A paired (function) entry has an odd tag; the compiler always
    /// assigns even values so that `tag + 1` is the exit.
    OddFunctionTag(String, u16),
    /// A paired entry at 0xFFFF would wrap its exit tag.
    ExitOverflow(String),
    /// The tag space (65536 values) is exhausted.
    TagSpaceExhausted,
}

impl fmt::Display for TagFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagFileError::DuplicateName(n) => write!(f, "duplicate name {n}"),
            TagFileError::TagCollision { tag, a, b } => {
                write!(f, "tag {tag} claimed by both {a} and {b}")
            }
            TagFileError::OddFunctionTag(n, t) => {
                write!(f, "function {n} has odd tag {t}")
            }
            TagFileError::ExitOverflow(n) => {
                write!(f, "function {n} at 0xFFFF has no exit tag")
            }
            TagFileError::TagSpaceExhausted => write!(f, "no tags left"),
        }
    }
}

impl std::error::Error for TagFileError {}

/// What a raw 16-bit event tag from the Profiler means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventMeaning<'a> {
    /// Entry into the named function.
    Entry(&'a TagEntry),
    /// Exit from the named function.
    Exit(&'a TagEntry),
    /// An inline point inside some function.
    Inline(&'a TagEntry),
    /// No entry claims this value (uninstrumented or corrupt data).
    Unknown,
}

/// A complete, validated name/tag map.
///
/// # Examples
///
/// ```
/// use hwprof_tagfile::{TagFile, TagKind, EventMeaning};
///
/// let mut tf = TagFile::new(500);
/// let main = tf.assign("main", TagKind::Function).unwrap();
/// assert_eq!(main, 502); // first free even value above the dummy base
/// let swtch = tf.assign("swtch", TagKind::ContextSwitch).unwrap();
/// match tf.resolve(main + 1) {
///     EventMeaning::Exit(e) => assert_eq!(e.name, "main"),
///     _ => panic!("expected exit"),
/// }
/// assert!(matches!(tf.resolve(swtch), EventMeaning::Entry(_)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TagFile {
    entries: Vec<TagEntry>,
    by_name: HashMap<String, usize>,
    by_tag: HashMap<u16, usize>,
    base: u16,
}

/// Name of the dummy entry that seeds the starting tag number.
pub const DUMMY: &str = "__base";

impl TagFile {
    /// A fresh file whose "initial dummy entry" sets the starting tag.
    pub fn new(base: u16) -> Self {
        let mut tf = TagFile {
            entries: Vec::new(),
            by_name: HashMap::new(),
            by_tag: HashMap::new(),
            base,
        };
        // The dummy is a real line in the file so serialization preserves
        // the starting number; it is inline so it claims only one value.
        tf.insert(TagEntry {
            name: DUMMY.to_string(),
            tag: base,
            kind: TagKind::Inline,
        })
        .expect("empty file cannot collide");
        tf
    }

    /// Builds a map from parsed entries, validating all invariants.
    pub fn from_entries(entries: Vec<TagEntry>) -> Result<Self, TagFileError> {
        let mut tf = TagFile {
            entries: Vec::new(),
            by_name: HashMap::new(),
            by_tag: HashMap::new(),
            base: 0,
        };
        for e in entries {
            tf.insert(e)?;
        }
        Ok(tf)
    }

    /// Inserts one entry, enforcing name uniqueness, tag-space
    /// disjointness and even function tags.
    pub fn insert(&mut self, e: TagEntry) -> Result<u16, TagFileError> {
        if let Some(&i) = self.by_name.get(&e.name) {
            if self.entries[i].tag == e.tag && self.entries[i].kind == e.kind {
                // Concatenated files may repeat identical lines.
                return Ok(e.tag);
            }
            return Err(TagFileError::DuplicateName(e.name));
        }
        if e.kind.is_paired() {
            if !e.tag.is_multiple_of(2) {
                return Err(TagFileError::OddFunctionTag(e.name, e.tag));
            }
            if e.tag == u16::MAX {
                return Err(TagFileError::ExitOverflow(e.name));
            }
        }
        let claimed: &[u16] = if e.kind.is_paired() {
            &[e.tag, e.tag + 1]
        } else {
            &[e.tag]
        };
        for &t in claimed {
            if let Some(&i) = self.by_tag.get(&t) {
                return Err(TagFileError::TagCollision {
                    tag: t,
                    a: self.entries[i].name.clone(),
                    b: e.name,
                });
            }
        }
        let idx = self.entries.len();
        for &t in claimed {
            self.by_tag.insert(t, idx);
        }
        self.by_name.insert(e.name.clone(), idx);
        let tag = e.tag;
        self.entries.push(e);
        Ok(tag)
    }

    /// Looks up a name; returns the existing tag if present, otherwise
    /// assigns "the next available value (i.e the next value higher than
    /// the current highest in the file)", rounded up to even for paired
    /// kinds, and extends the file.
    pub fn assign(&mut self, name: &str, kind: TagKind) -> Result<u16, TagFileError> {
        if let Some(&i) = self.by_name.get(name) {
            return Ok(self.entries[i].tag);
        }
        let highest = self
            .entries
            .iter()
            .map(|e| if e.kind.is_paired() { e.tag + 1 } else { e.tag })
            .max()
            .unwrap_or(self.base);
        let mut next = highest
            .checked_add(1)
            .ok_or(TagFileError::TagSpaceExhausted)?;
        if kind.is_paired() && next % 2 != 0 {
            next = next.checked_add(1).ok_or(TagFileError::TagSpaceExhausted)?;
        }
        if kind.is_paired() && next == u16::MAX {
            return Err(TagFileError::TagSpaceExhausted);
        }
        self.insert(TagEntry {
            name: name.to_string(),
            tag: next,
            kind,
        })
    }

    /// Resolves a raw hardware tag value.
    pub fn resolve(&self, tag: u16) -> EventMeaning<'_> {
        match self.by_tag.get(&tag) {
            Some(&i) => {
                let e = &self.entries[i];
                match e.kind {
                    TagKind::Inline => EventMeaning::Inline(e),
                    _ if e.tag == tag => EventMeaning::Entry(e),
                    _ => EventMeaning::Exit(e),
                }
            }
            None => EventMeaning::Unknown,
        }
    }

    /// Entry tag of `name`, if present.
    pub fn tag_of(&self, name: &str) -> Option<u16> {
        self.by_name.get(name).map(|&i| self.entries[i].tag)
    }

    /// Entry metadata of `name`, if present.
    pub fn entry_of(&self, name: &str) -> Option<&TagEntry> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    /// All entries in file order.
    pub fn entries(&self) -> &[TagEntry] {
        &self.entries
    }

    /// Number of entries (including any dummy).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the file has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Concatenates another file into this one ("multiple name/tag files
    /// may exist, and may be concatenated").  Identical repeated lines are
    /// tolerated; conflicting ones error.
    pub fn concat(&mut self, other: &TagFile) -> Result<(), TagFileError> {
        for e in &other.entries {
            if e.name == DUMMY {
                continue;
            }
            self.insert(e.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_resolves() {
        let mut tf = TagFile::default();
        for (n, t, k) in [
            ("main", 502, TagKind::Function),
            ("hardclock", 510, TagKind::Function),
            ("swtch", 600, TagKind::ContextSwitch),
            ("MGET", 1002, TagKind::Inline),
        ] {
            tf.insert(TagEntry {
                name: n.into(),
                tag: t,
                kind: k,
            })
            .unwrap();
        }
        assert!(matches!(tf.resolve(502), EventMeaning::Entry(e) if e.name == "main"));
        assert!(matches!(tf.resolve(503), EventMeaning::Exit(e) if e.name == "main"));
        assert!(
            matches!(tf.resolve(600), EventMeaning::Entry(e) if e.kind == TagKind::ContextSwitch)
        );
        assert!(matches!(tf.resolve(1002), EventMeaning::Inline(_)));
        assert!(matches!(tf.resolve(1003), EventMeaning::Unknown));
        assert!(matches!(tf.resolve(9999), EventMeaning::Unknown));
    }

    #[test]
    fn assign_is_stable_across_recompiles() {
        let mut tf = TagFile::new(500);
        let a = tf.assign("foo", TagKind::Function).unwrap();
        let b = tf.assign("bar", TagKind::Function).unwrap();
        // Recompilation asks again and must get the same values.
        assert_eq!(tf.assign("foo", TagKind::Function).unwrap(), a);
        assert_eq!(tf.assign("bar", TagKind::Function).unwrap(), b);
        assert_ne!(a, b);
    }

    #[test]
    fn assign_allocates_monotonically_above_highest() {
        let mut tf = TagFile::new(500);
        let a = tf.assign("f1", TagKind::Function).unwrap();
        assert_eq!(a, 502);
        let b = tf.assign("f2", TagKind::Function).unwrap();
        assert_eq!(b, 504);
        // A manual inline entry at a high value pushes allocation past it.
        tf.insert(TagEntry {
            name: "MARK".into(),
            tag: 1002,
            kind: TagKind::Inline,
        })
        .unwrap();
        let c = tf.assign("f3", TagKind::Function).unwrap();
        assert_eq!(c, 1004);
    }

    #[test]
    fn collisions_are_rejected() {
        let mut tf = TagFile::default();
        tf.insert(TagEntry {
            name: "a".into(),
            tag: 100,
            kind: TagKind::Function,
        })
        .unwrap();
        // Inline tag landing on a's exit tag collides.
        let err = tf
            .insert(TagEntry {
                name: "mark".into(),
                tag: 101,
                kind: TagKind::Inline,
            })
            .unwrap_err();
        assert!(matches!(err, TagFileError::TagCollision { tag: 101, .. }));
        // Same name, different tag.
        let err = tf
            .insert(TagEntry {
                name: "a".into(),
                tag: 200,
                kind: TagKind::Function,
            })
            .unwrap_err();
        assert!(matches!(err, TagFileError::DuplicateName(_)));
    }

    #[test]
    fn odd_function_tags_are_rejected() {
        let mut tf = TagFile::default();
        let err = tf
            .insert(TagEntry {
                name: "f".into(),
                tag: 7,
                kind: TagKind::Function,
            })
            .unwrap_err();
        assert!(matches!(err, TagFileError::OddFunctionTag(_, 7)));
    }

    #[test]
    fn concat_merges_and_detects_conflicts() {
        let mut kernel = TagFile::new(500);
        kernel.assign("bcopy", TagKind::Function).unwrap();
        let mut netmod = TagFile::new(1000);
        netmod.assign("ipintr", TagKind::Function).unwrap();
        kernel.concat(&netmod).unwrap();
        assert!(kernel.tag_of("ipintr").is_some());
        // A conflicting second file.
        let mut bad = TagFile::default();
        bad.insert(TagEntry {
            name: "bcopy".into(),
            tag: 9000,
            kind: TagKind::Function,
        })
        .unwrap();
        assert!(kernel.concat(&bad).is_err());
    }

    #[test]
    fn identical_repeated_lines_tolerated() {
        let mut tf = TagFile::default();
        let e = TagEntry {
            name: "x".into(),
            tag: 10,
            kind: TagKind::Function,
        };
        tf.insert(e.clone()).unwrap();
        assert_eq!(tf.insert(e).unwrap(), 10);
        assert_eq!(tf.len(), 1);
    }
}
