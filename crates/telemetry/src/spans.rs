//! Span journal: a bounded, lock-free log of structured pipeline
//! events.
//!
//! The [`Registry`](crate::Registry) answers "how many" — counters and
//! gauges with no ordering.  The [`SpanLog`] answers "when, and caused
//! by what": every supervisor re-arm, mask-ladder shift, upload
//! attempt/retry/breaker trip and analyzer bank in/out is recorded as a
//! begin/end/instant event carrying the monotonic simulated time and a
//! causal id (the bank index for everything bank-shaped), at the same
//! sites that already feed the Registry and the Coverage ledger.  The
//! analysis crate's Chrome-trace exporter renders the journal as
//! pipeline lanes next to the reconstructed kernel lanes, so one
//! supervised run reads as a single unified timeline.
//!
//! The log is a fixed slot array written with `fetch_add` claim +
//! per-slot commit flag: recording is wait-free, never allocates, and
//! never blocks the capture hot path.  When the array fills, further
//! events are counted in `dropped()` and discarded — the journal
//! degrades by forgetting the tail, never by stalling the machine.
//! Like the Registry, values are exact once the run has quiesced.
//!
//! ```
//! use hwprof_telemetry::{SpanLog, SpanName, SpanPhase, SpanTrack};
//! let log = SpanLog::default();
//! log.begin(SpanTrack::Supervisor, SpanName::Bank, 100, 0, 0);
//! log.end(SpanTrack::Supervisor, SpanName::Bank, 900, 0, 42);
//! let events = log.snapshot();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].phase, SpanPhase::Begin);
//! assert_eq!(events[1].arg, 42);
//! ```

use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;

/// Default slot count of [`SpanLog::default`]: enough for every
/// supervised run in this repo with a wide margin, small enough that an
/// always-on journal costs a few MiB at most.
pub const SPAN_LOG_DEFAULT_CAPACITY: usize = 65_536;

/// What a span event marks: the start of an interval, its end, or a
/// point occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanPhase {
    /// Interval opens at `t_us`.
    Begin,
    /// Interval closes at `t_us`; pairs with the `Begin` of the same
    /// (track, name, id).
    End,
    /// Point event.
    Instant,
}

/// Which pipeline component recorded the event.  Each track renders as
/// one lane in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanTrack {
    /// Capture supervisor: bank sessions, dark windows, re-arms, mask
    /// ladder moves.
    Supervisor,
    /// Upload path: attempts, retries, breaker trips, spill shelf.
    Transport,
    /// Streaming analysis workers: per-bank decode+reconstruct spans.
    Analyzer,
    /// Raw profiler board: drains and overflows seen outside a
    /// supervisor.
    Board,
    /// Flight recorder: window rollup lifetimes and evictions.
    Recorder,
}

impl SpanTrack {
    /// Stable lane label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanTrack::Supervisor => "supervisor",
            SpanTrack::Transport => "transport",
            SpanTrack::Analyzer => "analyzer",
            SpanTrack::Board => "board",
            SpanTrack::Recorder => "recorder",
        }
    }

    /// Stable small integer for lane ordering in exports.
    pub fn idx(self) -> u8 {
        match self {
            SpanTrack::Supervisor => 0,
            SpanTrack::Transport => 1,
            SpanTrack::Analyzer => 2,
            SpanTrack::Board => 3,
            SpanTrack::Recorder => 4,
        }
    }
}

/// What happened.  The `id`/`arg` meaning per name is documented on
/// each variant; `id` is always the causal key that ties a begin to its
/// end and a bank to its upload to its analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanName {
    /// A bank capture session (`id` = bank index; `arg` on End =
    /// records captured).
    Bank,
    /// A dark window — the board is off (`id` = gap ordinal; `arg` =
    /// gap-cause discriminant).
    Dark,
    /// Board re-armed after a dark window (`id` = next bank index,
    /// `arg` = mask level in force).
    Rearm,
    /// Mask ladder stepped down (`id` = bank index, `arg` = new level).
    MaskDown,
    /// Mask ladder stepped back up (`id` = bank index, `arg` = new
    /// level).
    MaskUp,
    /// An upload of one bank (`id` = bank index; `arg` on End = 1 if
    /// delivered, 0 if abandoned).
    Upload,
    /// One failed upload attempt inside an upload span (`arg` =
    /// attempt ordinal).
    Retry,
    /// Circuit breaker tripped open (`id` = bank index).
    Breaker,
    /// Bank shelved to the spill buffer (`id` = bank index, `arg` =
    /// shelf depth after).
    Spill,
    /// Spill-shelf re-upload attempt (`id` = bank index).
    Flush,
    /// Bank abandoned for good (`id` = bank index).
    BankLost,
    /// One analysis worker decoding + reconstructing one bank (`id` =
    /// feed-order bank index; `arg` on End = events decoded).
    Analyze,
    /// Raw board drain handoff (`id` = drain ordinal, `arg` = records).
    Drain,
    /// Raw board overflow (`id` = overflow ordinal).
    Overflow,
    /// One flight-recorder rollup window (`id` = window index; `arg`
    /// on End = session fragments folded into it).
    Window,
    /// A window evicted from the recorder ring (`id` = window index,
    /// `arg` = its clipped span in µs).
    Evict,
}

impl SpanName {
    /// Stable event label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanName::Bank => "bank",
            SpanName::Dark => "dark",
            SpanName::Rearm => "re-arm",
            SpanName::MaskDown => "mask down",
            SpanName::MaskUp => "mask up",
            SpanName::Upload => "upload",
            SpanName::Retry => "retry",
            SpanName::Breaker => "breaker open",
            SpanName::Spill => "spill",
            SpanName::Flush => "spill flush",
            SpanName::BankLost => "bank lost",
            SpanName::Analyze => "analyze",
            SpanName::Drain => "drain",
            SpanName::Overflow => "overflow",
            SpanName::Window => "window",
            SpanName::Evict => "evict",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic simulated microseconds.  Supervisor/Transport/Board
    /// events carry absolute trigger time; Analyzer events carry time
    /// relative to their bank (the exporter re-bases them from the
    /// run's session table).
    pub t_us: u64,
    pub phase: SpanPhase,
    pub track: SpanTrack,
    pub name: SpanName,
    /// Causal id — the bank index for everything bank-shaped.
    pub id: u64,
    /// Per-name extra argument (see [`SpanName`]).
    pub arg: u64,
}

const PHASES: [SpanPhase; 3] = [SpanPhase::Begin, SpanPhase::End, SpanPhase::Instant];
const TRACKS: [SpanTrack; 5] = [
    SpanTrack::Supervisor,
    SpanTrack::Transport,
    SpanTrack::Analyzer,
    SpanTrack::Board,
    SpanTrack::Recorder,
];
const NAMES: [SpanName; 16] = [
    SpanName::Bank,
    SpanName::Dark,
    SpanName::Rearm,
    SpanName::MaskDown,
    SpanName::MaskUp,
    SpanName::Upload,
    SpanName::Retry,
    SpanName::Breaker,
    SpanName::Spill,
    SpanName::Flush,
    SpanName::BankLost,
    SpanName::Analyze,
    SpanName::Drain,
    SpanName::Overflow,
    SpanName::Window,
    SpanName::Evict,
];

fn encode(phase: SpanPhase, track: SpanTrack, name: SpanName) -> u64 {
    let p = PHASES.iter().position(|&x| x == phase).expect("listed") as u64;
    let k = TRACKS.iter().position(|&x| x == track).expect("listed") as u64;
    let n = NAMES.iter().position(|&x| x == name).expect("listed") as u64;
    p | (k << 8) | (n << 16)
}

fn decode(code: u64) -> Option<(SpanPhase, SpanTrack, SpanName)> {
    let p = *PHASES.get((code & 0xff) as usize)?;
    let k = *TRACKS.get(((code >> 8) & 0xff) as usize)?;
    let n = *NAMES.get(((code >> 16) & 0xff) as usize)?;
    Some((p, k, n))
}

struct Slot {
    /// 0 = unclaimed/uncommitted, 1 = committed.
    committed: AtomicU64,
    t: AtomicU64,
    code: AtomicU64,
    id: AtomicU64,
    arg: AtomicU64,
}

struct Inner {
    slots: Box<[Slot]>,
    next: AtomicU64,
    dropped: AtomicU64,
}

/// Bounded lock-free journal of [`SpanEvent`]s.  Cloning shares the
/// underlying buffer, like every other telemetry handle.
#[derive(Clone)]
pub struct SpanLog {
    inner: Arc<Inner>,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::with_capacity(SPAN_LOG_DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog")
            .field("capacity", &self.inner.slots.len())
            .field("recorded", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal holding at most `capacity` events (further events are
    /// dropped and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                committed: AtomicU64::new(0),
                t: AtomicU64::new(0),
                code: AtomicU64::new(0),
                id: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanLog {
            inner: Arc::new(Inner {
                slots,
                next: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Records one event; wait-free, drops (and counts) when full.
    pub fn record(&self, ev: SpanEvent) {
        let i = self.inner.next.fetch_add(1, Relaxed);
        let Some(slot) = self.inner.slots.get(i as usize) else {
            self.inner.dropped.fetch_add(1, Relaxed);
            return;
        };
        slot.t.store(ev.t_us, Relaxed);
        slot.code
            .store(encode(ev.phase, ev.track, ev.name), Relaxed);
        slot.id.store(ev.id, Relaxed);
        slot.arg.store(ev.arg, Relaxed);
        slot.committed.store(1, Release);
    }

    /// Records a [`SpanPhase::Begin`].
    pub fn begin(&self, track: SpanTrack, name: SpanName, t_us: u64, id: u64, arg: u64) {
        self.record(SpanEvent {
            t_us,
            phase: SpanPhase::Begin,
            track,
            name,
            id,
            arg,
        });
    }

    /// Records a [`SpanPhase::End`].
    pub fn end(&self, track: SpanTrack, name: SpanName, t_us: u64, id: u64, arg: u64) {
        self.record(SpanEvent {
            t_us,
            phase: SpanPhase::End,
            track,
            name,
            id,
            arg,
        });
    }

    /// Records a [`SpanPhase::Instant`].
    pub fn instant(&self, track: SpanTrack, name: SpanName, t_us: u64, id: u64, arg: u64) {
        self.record(SpanEvent {
            t_us,
            phase: SpanPhase::Instant,
            track,
            name,
            id,
            arg,
        });
    }

    /// Committed events in record order.  Exact once all writers have
    /// quiesced; a slot claimed but not yet committed by a live writer
    /// is skipped.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let n = (self.inner.next.load(Acquire) as usize).min(self.inner.slots.len());
        let mut out = Vec::with_capacity(n);
        for slot in &self.inner.slots[..n] {
            if slot.committed.load(Acquire) == 0 {
                continue;
            }
            let Some((phase, track, name)) = decode(slot.code.load(Relaxed)) else {
                continue;
            };
            out.push(SpanEvent {
                t_us: slot.t.load(Relaxed),
                phase,
                track,
                name,
                id: slot.id.load(Relaxed),
                arg: slot.arg.load(Relaxed),
            });
        }
        out
    }

    /// Events recorded (claimed slots, committed or not), capped at
    /// capacity.
    pub fn len(&self) -> usize {
        (self.inner.next.load(Relaxed) as usize).min(self.inner.slots.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Relaxed)
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_in_order_with_full_fidelity() {
        let log = SpanLog::with_capacity(8);
        log.begin(SpanTrack::Supervisor, SpanName::Bank, 100, 0, 7);
        log.instant(SpanTrack::Transport, SpanName::Retry, 150, 0, 1);
        log.end(SpanTrack::Supervisor, SpanName::Bank, 200, 0, 42);
        let evs = log.snapshot();
        assert_eq!(
            evs,
            vec![
                SpanEvent {
                    t_us: 100,
                    phase: SpanPhase::Begin,
                    track: SpanTrack::Supervisor,
                    name: SpanName::Bank,
                    id: 0,
                    arg: 7,
                },
                SpanEvent {
                    t_us: 150,
                    phase: SpanPhase::Instant,
                    track: SpanTrack::Transport,
                    name: SpanName::Retry,
                    id: 0,
                    arg: 1,
                },
                SpanEvent {
                    t_us: 200,
                    phase: SpanPhase::End,
                    track: SpanTrack::Supervisor,
                    name: SpanName::Bank,
                    id: 0,
                    arg: 42,
                },
            ]
        );
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let log = SpanLog::with_capacity(2);
        for i in 0..5 {
            log.instant(SpanTrack::Board, SpanName::Drain, i, i, 0);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.snapshot().len(), 2);
    }

    #[test]
    fn every_code_round_trips() {
        for &phase in &PHASES {
            for &track in &TRACKS {
                for &name in &NAMES {
                    assert_eq!(
                        decode(encode(phase, track, name)),
                        Some((phase, track, name))
                    );
                }
            }
        }
        assert_eq!(decode(u64::MAX), None);
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        let log = SpanLog::with_capacity(8 * 1_000);
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let log = log.clone();
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        log.instant(SpanTrack::Analyzer, SpanName::Analyze, i, w, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = log.snapshot();
        assert_eq!(evs.len(), 8_000);
        assert_eq!(log.dropped(), 0);
        // Every (writer, i) pair present exactly once.
        let mut seen = std::collections::HashSet::new();
        for ev in evs {
            assert!(seen.insert((ev.id, ev.t_us)));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SpanTrack::Supervisor.label(), "supervisor");
        assert_eq!(SpanTrack::Board.idx(), 3);
        assert_eq!(SpanTrack::Recorder.idx(), 4);
        assert_eq!(SpanName::MaskDown.label(), "mask down");
        assert_eq!(SpanName::Analyze.label(), "analyze");
        assert_eq!(SpanName::Window.label(), "window");
        assert_eq!(SpanName::Evict.label(), "evict");
    }
}
