//! Self-metrics for the hwprof pipeline.
//!
//! McRae's board is observable only after the fact: the RAMs come back
//! to the host and you learn the overflow LED lit hours ago.  The
//! supervised pipeline makes run-time decisions (re-arm, mask ladder,
//! retry, circuit-break) and this crate gives those decisions a live
//! health channel that is separate from the trace data itself.
//!
//! Three metric kinds, all lock-free on the hot path:
//!
//! * [`Counter`] — monotonically increasing event count.
//! * [`Gauge`] — last-write-wins level (bank fill, queue depth).
//! * [`Histo`] — log2-bucketed histogram of a u64 sample (gap widths,
//!   backoff delays), with exact `count` and `sum` alongside.
//!
//! Handles are `Arc`-backed atomics handed out by a [`Registry`]; the
//! registry's mutex is touched only at registration and snapshot time,
//! never per-event.  Re-registering a name returns the *same* handle,
//! so independent subsystems can share a metric by name.
//!
//! All atomics use `Relaxed` ordering: metrics are statistical while
//! the run is live, and exact once the run has quiesced (thread joins
//! and supervisor `finish()` provide the happens-before edge that the
//! consistency tests rely on).
//!
//! ```
//! use hwprof_telemetry::Registry;
//! let reg = Registry::new();
//! let triggers = reg.counter("board.triggers");
//! triggers.add(3);
//! reg.gauge("board.fill_pct").set(42);
//! reg.histo("gap.us").observe(130);
//! let snap = reg.snapshot();
//! assert_eq!(snap.value("board.triggers"), Some(3));
//! assert_eq!(snap.value("board.fill_pct"), Some(42));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

mod spans;

pub use spans::{SpanEvent, SpanLog, SpanName, SpanPhase, SpanTrack, SPAN_LOG_DEFAULT_CAPACITY};

/// Number of log2 buckets in a [`Histo`]: bucket `i` counts samples
/// whose bit length is `i`, i.e. `0` goes to bucket 0 and a value `v`
/// with `2^(i-1) <= v < 2^i` goes to bucket `i`.  Bucket 64 holds the
/// top half of the u64 range.
pub const HISTO_BUCKETS: usize = 65;

/// Bucket index for a sample: its bit length (0 for 0).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`None` for the unbounded top
/// bucket).
pub fn bucket_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(0),
        1..=63 => Some((1u64 << i) - 1),
        _ => None,
    }
}

/// Monotonic event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Last-write-wins level.  `inc`/`dec` support depth-style gauges
/// (spill shelf, worker queue); `dec` saturates at zero rather than
/// wrapping, so a racy underflow cannot turn into 2^64.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug)]
struct HistoInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTO_BUCKETS],
}

/// Log2-bucketed histogram with exact count and sum.
#[derive(Clone, Debug)]
pub struct Histo(Arc<HistoInner>);

impl Default for Histo {
    fn default() -> Self {
        Histo(Arc::new(HistoInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [(); HISTO_BUCKETS].map(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histo {
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
        self.0.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Relaxed)
    }
}

#[derive(Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histo(_) => "histo",
        }
    }
}

/// Handle factory and snapshot point.  Cloning shares the underlying
/// store; the mutex guards only the name table, never the atomics.
///
/// A registry may carry a *prefix* ([`Registry::prefixed`]): every
/// metric name registered through it is stored under
/// `{prefix}{name}`, while the underlying table stays shared.  That is
/// how a fleet gives each machine its own `m{i}.` namespace — N
/// machines' supervisors all write `sup.gaps`, the shared table keeps
/// `m0.sup.gaps` … `mN.sup.gaps`, and one [`Registry::snapshot`] of
/// the fleet serves them all without collisions.
#[derive(Clone, Default)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<String, Slot>>>,
    prefix: String,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry")
            .field("metrics", &slots.len())
            .field("prefix", &self.prefix)
            .finish()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A view of the same registry that stores every metric under
    /// `{prefix}{name}`.  The slot table stays shared — a snapshot
    /// taken from any view sees all views' metrics — and prefixes
    /// compose: `reg.prefixed("fleet.").prefixed("m0.")` writes under
    /// `fleet.m0.`.
    pub fn prefixed(&self, prefix: &str) -> Registry {
        Registry {
            slots: Arc::clone(&self.slots),
            prefix: format!("{}{}", self.prefix, prefix),
        }
    }

    /// This view's prefix (empty for a bare registry).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    fn key(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }

    /// Counter handle for `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(self.key(name))
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Gauge handle for `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(self.key(name))
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Histogram handle for `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histo(&self, name: &str) -> Histo {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(self.key(name))
            .or_insert_with(|| Slot::Histo(Histo::default()))
        {
            Slot::Histo(h) => h.clone(),
            other => panic!("metric {name:?} is a {}, not a histo", other.kind()),
        }
    }

    /// Point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().unwrap();
        let metrics = slots
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histo(h) => MetricValue::Histo(HistoValue {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.0.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                    }),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { metrics }
    }
}

/// One captured metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histo(HistoValue),
}

impl MetricValue {
    /// Scalar view: the counter or gauge value; a histogram's count.
    pub fn scalar(&self) -> u64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histo(h) => h.count,
        }
    }
}

/// Captured histogram: exact count and sum plus the log2 buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoValue {
    pub count: u64,
    pub sum: u64,
    /// `HISTO_BUCKETS` entries; `buckets[i]` counts samples of bit
    /// length `i`.
    pub buckets: Vec<u64>,
}

/// Point-in-time registry capture, sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// Scalar value of `name` (counter/gauge value, histo count).
    pub fn value(&self, name: &str) -> Option<u64> {
        self.get(name).map(MetricValue::scalar)
    }

    /// Exact sum of all samples observed by histogram `name`.
    pub fn histo_sum(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Histo(h) => Some(h.sum),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The metrics under `prefix`, with the prefix stripped: the
    /// inverse of writing through [`Registry::prefixed`].  A fleet
    /// snapshot's `m3.` slice comes back looking exactly like a
    /// single-machine snapshot, so per-machine consumers
    /// (`HealthReport`) run unchanged.  Relative order — and therefore
    /// sortedness — is preserved.
    pub fn strip_prefix(&self, prefix: &str) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .filter_map(|(name, value)| {
                name.strip_prefix(prefix)
                    .map(|rest| (rest.to_string(), value.clone()))
            })
            .collect();
        Snapshot { metrics }
    }

    /// Element-wise union of several snapshots: counters and gauges
    /// sum, histograms add count/sum/buckets element-wise.  Feeding it
    /// the per-machine [`Snapshot::strip_prefix`] slices of a fleet
    /// snapshot yields the fleet-aggregate view of the same metric
    /// names a single machine would report.
    ///
    /// # Panics
    /// If the same name appears with different metric kinds.
    pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a Snapshot>) -> Snapshot {
        let mut merged: BTreeMap<String, MetricValue> = BTreeMap::new();
        for part in parts {
            for (name, value) in &part.metrics {
                match merged.entry(name.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        match (e.get_mut(), value) {
                            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                            (MetricValue::Histo(a), MetricValue::Histo(b)) => {
                                a.count += b.count;
                                a.sum += b.sum;
                                for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                                    *x += y;
                                }
                            }
                            (have, _) => {
                                panic!("metric {name:?} aggregated across kinds (have {have:?})")
                            }
                        }
                    }
                }
            }
        }
        Snapshot {
            metrics: merged.into_iter().collect(),
        }
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => writeln!(f, "{name} = {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "{name} = {v} (gauge)")?,
                MetricValue::Histo(h) => {
                    writeln!(f, "{name} = {{count {}, sum {}}}", h.count, h.sum)?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().value("x"), Some(5));
    }

    #[test]
    fn gauge_dec_saturates() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.dec();
        assert_eq!(g.get(), 0);
        g.inc();
        g.inc();
        g.dec();
        g.set(7);
        assert_eq!(reg.snapshot().value("depth"), Some(7));
    }

    #[test]
    fn histo_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), Some(0));
        assert_eq!(bucket_bound(3), Some(7));
        assert_eq!(bucket_bound(64), None);

        let reg = Registry::new();
        let h = reg.histo("gap.us");
        for v in [0, 1, 2, 3, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1021);
        match reg.snapshot().get("gap.us").unwrap() {
            MetricValue::Histo(hv) => {
                assert_eq!(hv.buckets.len(), HISTO_BUCKETS);
                assert_eq!(hv.buckets[0], 1); // 0
                assert_eq!(hv.buckets[1], 1); // 1
                assert_eq!(hv.buckets[2], 2); // 2, 3
                assert_eq!(hv.buckets[3], 1); // 7
                assert_eq!(hv.buckets[4], 1); // 8
                assert_eq!(hv.buckets[10], 1); // 1000
                assert_eq!(hv.buckets.iter().sum::<u64>(), hv.count);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_indexable() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("c").set(9);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(snap.value("a"), Some(2));
        assert_eq!(snap.value("missing"), None);
    }

    #[test]
    fn prefixed_views_share_one_table_without_collisions() {
        let reg = Registry::new();
        let m0 = reg.prefixed("m0.");
        let m1 = reg.prefixed("m1.");
        m0.counter("sup.gaps").add(3);
        m1.counter("sup.gaps").add(8);
        m1.histo("gap.us").observe(100);
        // One snapshot from any view sees every machine's metrics.
        let snap = reg.snapshot();
        assert_eq!(snap.value("m0.sup.gaps"), Some(3));
        assert_eq!(snap.value("m1.sup.gaps"), Some(8));
        assert_eq!(snap.histo_sum("m1.gap.us"), Some(100));
        // Prefixes compose.
        let deep = reg.prefixed("fleet.").prefixed("m0.");
        assert_eq!(deep.prefix(), "fleet.m0.");
        deep.counter("x").inc();
        assert_eq!(reg.snapshot().value("fleet.m0.x"), Some(1));
    }

    #[test]
    fn strip_prefix_recovers_single_machine_view() {
        let reg = Registry::new();
        reg.prefixed("m0.").counter("a").add(1);
        reg.prefixed("m1.").counter("a").add(2);
        reg.prefixed("m1.").gauge("b").set(9);
        let snap = reg.snapshot();
        let m1 = snap.strip_prefix("m1.");
        assert_eq!(m1.len(), 2);
        assert_eq!(m1.value("a"), Some(2));
        assert_eq!(m1.value("b"), Some(9));
        // Still sorted, so binary-search lookups keep working.
        assert!(m1.metrics.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn aggregate_sums_scalars_and_histos_element_wise() {
        let reg = Registry::new();
        for (m, n) in [("m0.", 3u64), ("m1.", 5)] {
            let view = reg.prefixed(m);
            view.counter("c").add(n);
            view.gauge("g").set(n);
            view.histo("h").observe(n);
        }
        let snap = reg.snapshot();
        let parts = [snap.strip_prefix("m0."), snap.strip_prefix("m1.")];
        let agg = Snapshot::aggregate(parts.iter());
        assert_eq!(agg.value("c"), Some(8));
        assert_eq!(agg.value("g"), Some(8));
        match agg.get("h").unwrap() {
            MetricValue::Histo(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 8);
                assert_eq!(h.buckets[bucket_of(3)] + h.buckets[bucket_of(5)], 2);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn concurrent_increments_are_exact_after_join() {
        let reg = Registry::new();
        let c = reg.counter("n");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().value("n"), Some(80_000));
    }
}
