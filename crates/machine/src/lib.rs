//! A virtual 40 MHz i386-class PC, the hardware substrate for the
//! reproduction of *Hardware Profiling of Kernels* (Andrew McRae, 1993).
//!
//! The paper profiled a real 40 MHz 386 running 386BSD 0.1 with 8 MB of main
//! memory and ISA-bus peripherals (a WD8003E 8-bit shared-memory Ethernet
//! card and an IDE controller driving a Seagate ST3144).  None of that
//! hardware is available, so this crate models it:
//!
//! * [`Machine`] — a cycle-counting virtual CPU clocked at
//!   [`CPU_HZ`] = 40 MHz, with a deterministic event queue for device
//!   activity and an 8259-style programmable interrupt controller
//!   ([`Pic`]).
//! * [`CostModel`] — every timing constant used by the simulated kernel,
//!   each calibrated against a number the paper states (see the field
//!   documentation for the provenance of each constant).
//! * [`WdCard`] — the WD8003E: an 8 KiB on-board receive ring accessed over
//!   the 8-bit ISA bus, which is why `bcopy` of a full frame costs ~1045 µs.
//! * [`IdeController`] — IDE + ST3144 drive model with seek and rotational
//!   latency, programmed-I/O sector transfers, and a small write buffer.
//! * [`Wire`] — a 10 Mbit/s Ethernet with a pluggable [`RemoteHost`]
//!   (the paper used a SparcStation 2 to saturate the wire).
//! * [`EpromTap`] — the EPROM-socket side channel the Profiler board
//!   piggy-backs on: any 8-bit read of the EPROM window is presented to the
//!   tap together with the 16 low address lines (the event tag).
//!
//! The crate knows nothing about the kernel or the profiler board itself;
//! it only provides hardware with honest timing.

pub mod cost;
pub mod eprom;
pub mod event;
pub mod ide;
pub mod machine;
pub mod pic;
pub mod time;
pub mod wd;
pub mod wire;

pub use cost::CostModel;
pub use eprom::EpromTap;
pub use event::{EventKind, PendingEvent};
pub use ide::{DiskGeometry, IdeController};
pub use machine::Machine;
pub use pic::{Irq, Pic};
pub use time::{cycles_to_us, ms_to_cycles, us_to_cycles, Cycles, CPU_HZ, CYCLES_PER_US};
pub use wd::WdCard;
pub use wire::{HostAction, RemoteHost, Wire};
