//! The IDE controller and the Seagate ST3144 drive.
//!
//! The paper's filesystem study ran on "an IDE controller on a Seagate
//! ST3144 disc" and found: reads vary from 18 to 26 ms; each write
//! interrupt takes ~200 µs of which ~149 µs is programmed-I/O transfer;
//! write-completion interrupts arrive close together (< 100 µs) most of
//! the time because the drive buffers sectors; and the CPU is only ~28 %
//! busy under heavy writes because seeks dominate.
//!
//! The model reproduces those shapes mechanically: a head-position seek
//! model, true rotational position derived from the cycle clock, and a
//! small on-drive write buffer that accepts sectors quickly until it must
//! drain to the platters.

use crate::time::{Cycles, CYCLES_PER_US};

/// Bytes per sector.
pub const SECTOR: usize = 512;

/// Drive geometry and mechanics.
#[derive(Debug, Clone, Copy)]
pub struct DiskGeometry {
    /// Number of cylinders.
    pub cylinders: u32,
    /// Heads (surfaces).
    pub heads: u32,
    /// Sectors per track.
    pub spt: u32,
    /// Rotation time for one revolution, in cycles.
    pub rotation: Cycles,
    /// Fixed seek settle overhead, in cycles.
    pub seek_base: Cycles,
    /// Per-cylinder seek cost, in cycles.
    pub seek_per_cyl: Cycles,
}

impl DiskGeometry {
    /// The Seagate ST3144: ~130 MB, 3600 RPM class mechanics with an
    /// average seek around 15 ms (base 2.5 ms + 25 µs/cylinder, so a
    /// typical half-stroke lands near the paper's 18-26 ms read band once
    /// rotational latency is added).
    pub fn st3144() -> Self {
        DiskGeometry {
            cylinders: 1001,
            heads: 15,
            spt: 17,
            rotation: 16_667 * CYCLES_PER_US, // 3600 RPM
            seek_base: 2_500 * CYCLES_PER_US,
            seek_per_cyl: 25 * CYCLES_PER_US,
        }
    }

    /// Total addressable sectors.
    pub fn sectors(&self) -> u64 {
        self.cylinders as u64 * self.heads as u64 * self.spt as u64
    }

    /// Cylinder containing logical block `lba`.
    pub fn cylinder_of(&self, lba: u64) -> u32 {
        (lba / (self.heads as u64 * self.spt as u64)) as u32
    }

    /// Sector index within its track.
    pub fn sector_in_track(&self, lba: u64) -> u32 {
        (lba % self.spt as u64) as u32
    }

    /// Seek time from cylinder `from` to `to`.
    pub fn seek_time(&self, from: u32, to: u32) -> Cycles {
        let d = from.abs_diff(to) as u64;
        if d == 0 {
            0
        } else {
            self.seek_base + d * self.seek_per_cyl
        }
    }

    /// Rotational delay at absolute time `now` until sector `lba` passes
    /// under the head, plus the time to read/write the sector itself.
    pub fn rotational_delay(&self, now: Cycles, lba: u64) -> Cycles {
        let sector_time = self.rotation / self.spt as u64;
        let target_angle = self.sector_in_track(lba) as u64 * sector_time;
        let current_angle = now % self.rotation;
        let wait = if target_angle >= current_angle {
            target_angle - current_angle
        } else {
            self.rotation - current_angle + target_angle
        };
        wait + sector_time
    }
}

/// Commands the driver can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdeCommand {
    /// Read one sector at the given LBA into the controller buffer.
    ReadSector(u64),
    /// Write the controller buffer to the given LBA.
    WriteSector(u64),
}

/// Why the controller raised its interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdeStatus {
    /// Controller idle, no data pending.
    Idle,
    /// Read data ready in the sector buffer (DRQ).
    ReadReady(u64),
    /// Write accepted; controller ready for the next command.
    WriteDone(u64),
}

/// One buffered write scheduled onto the platter.
#[derive(Debug, Clone, Copy)]
struct PlatterWrite {
    finish: Cycles,
}

/// The controller plus drive mechanics.
#[derive(Debug)]
pub struct IdeController {
    /// Geometry and mechanics of the attached drive.
    pub geom: DiskGeometry,
    /// Current head (cylinder) position.
    pub head_cyl: u32,
    /// Sector buffer the driver PIOs against.
    pub buffer: Vec<u8>,
    /// Status to report at the next interrupt.
    pub status: IdeStatus,
    /// On-drive write buffer: platter finish times of accepted writes.
    write_buf: std::collections::VecDeque<PlatterWrite>,
    /// Write-buffer capacity in sectors.
    pub write_buf_cap: usize,
    /// Absolute cycle at which the mechanism finishes draining the write
    /// buffer (the drive is busy until then).
    pub mech_busy_until: Cycles,
    /// Backing store: the actual sector contents, indexed by LBA.
    store: std::collections::HashMap<u64, Vec<u8>>,
    /// Track (lba / spt) whose sectors sit in the drive's read buffer;
    /// sequential reads within it skip the mechanics (1:1 interleave
    /// with a track buffer, as the ST3144 generation shipped).
    track_cache: Option<u64>,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Command in flight, if any.
    pub inflight: Option<IdeCommand>,
}

impl IdeController {
    /// A controller with an ST3144 attached, heads at cylinder 0.
    pub fn new(geom: DiskGeometry) -> Self {
        IdeController {
            geom,
            head_cyl: 0,
            buffer: vec![0; SECTOR],
            status: IdeStatus::Idle,
            write_buf: std::collections::VecDeque::new(),
            write_buf_cap: 8,
            mech_busy_until: 0,
            store: std::collections::HashMap::new(),
            track_cache: None,
            reads: 0,
            writes: 0,
            inflight: None,
        }
    }

    /// Issues `cmd` at time `now`; returns the absolute cycle at which the
    /// controller will raise its completion interrupt.
    ///
    /// For reads the delay is a real seek + rotational positioning.  For
    /// writes the drive accepts the sector into its write buffer and
    /// completes quickly if there is room (the paper's "< 100 µs between
    /// interrupts most of the time"); when the buffer is full the
    /// completion waits for the mechanism to drain a slot.
    ///
    /// # Panics
    ///
    /// Panics if a command is already in flight or the LBA is out of
    /// range.
    pub fn issue(&mut self, cmd: IdeCommand, now: Cycles) -> Cycles {
        assert!(self.inflight.is_none(), "IDE command overlap");
        let done_at = match cmd {
            IdeCommand::ReadSector(lba) => {
                assert!(lba < self.geom.sectors(), "LBA out of range");
                if self.track_cache == Some(lba / u64::from(self.geom.spt)) {
                    // Track-buffer hit: no mechanics.
                    now + 150 * CYCLES_PER_US
                } else {
                    // A read forces the buffered writes out first.
                    let start = now.max(self.mech_busy_until);
                    let drain = self.drain_writes(start);
                    let cyl = self.geom.cylinder_of(lba);
                    let seek = self.geom.seek_time(self.head_cyl, cyl);
                    let rot = self.geom.rotational_delay(drain + seek, lba);
                    self.head_cyl = cyl;
                    // Reading the sector fills the track buffer with the
                    // rest of the track as the platter spins on.
                    drain + seek + rot
                }
            }
            IdeCommand::WriteSector(lba) => {
                assert!(lba < self.geom.sectors(), "LBA out of range");
                self.prune_platter(now);
                if self.write_buf.len() < self.write_buf_cap {
                    // Controller overhead only: ~60 us to accept.
                    now + 60 * CYCLES_PER_US
                } else {
                    // Wait for the oldest buffered write's slot to free.
                    let freed = self.write_buf.front().expect("full buffer").finish;
                    freed + 60 * CYCLES_PER_US
                }
            }
        };
        self.inflight = Some(cmd);
        done_at
    }

    /// Forgets buffered writes whose platter operation has finished.
    fn prune_platter(&mut self, now: Cycles) {
        while self.write_buf.front().is_some_and(|w| w.finish <= now) {
            self.write_buf.pop_front();
        }
    }

    /// Time the mechanism finishes everything currently buffered.
    fn drain_writes(&mut self, start: Cycles) -> Cycles {
        self.write_buf.clear();
        self.mech_busy_until.max(start)
    }

    /// Buffered writes not yet on the platter at `now` (tests).
    pub fn buffered(&mut self, now: Cycles) -> usize {
        self.prune_platter(now);
        self.write_buf.len()
    }

    /// Called by the machine when the scheduled completion time arrives;
    /// finishes the in-flight command and sets the interrupt status.
    pub fn complete(&mut self, now: Cycles) {
        match self
            .inflight
            .take()
            .expect("IDE completion with no command")
        {
            IdeCommand::ReadSector(lba) => {
                let data = self
                    .store
                    .get(&lba)
                    .cloned()
                    .unwrap_or_else(|| vec![0; SECTOR]);
                self.buffer.copy_from_slice(&data);
                self.track_cache = Some(lba / u64::from(self.geom.spt));
                self.status = IdeStatus::ReadReady(lba);
                self.reads += 1;
            }
            IdeCommand::WriteSector(lba) => {
                self.store.insert(lba, self.buffer.clone());
                // The drive schedules the platter write immediately and
                // drains autonomously: consecutive sectors chain at
                // rotation speed instead of missing revolutions.
                let start = now.max(self.mech_busy_until);
                let cyl = self.geom.cylinder_of(lba);
                let seek = self.geom.seek_time(self.head_cyl, cyl);
                let rot = self.geom.rotational_delay(start + seek, lba);
                self.head_cyl = cyl;
                self.mech_busy_until = start + seek + rot;
                self.write_buf.push_back(PlatterWrite {
                    finish: self.mech_busy_until,
                });
                // Writes through a track invalidate the read buffer.
                self.track_cache = None;
                self.status = IdeStatus::WriteDone(lba);
                self.writes += 1;
            }
        }
    }

    /// Reads a sector's stored contents directly (test/oracle use; no
    /// timing).
    pub fn peek(&self, lba: u64) -> Option<&[u8]> {
        self.store.get(&lba).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::cycles_to_us;

    fn ctl() -> IdeController {
        IdeController::new(DiskGeometry::st3144())
    }

    #[test]
    fn scattered_reads_take_18_to_26ms() {
        let mut c = ctl();
        let mut now = 0;
        // Random-ish scattered blocks, like file system reads with seeks.
        let lbas = [120_000u64, 4_000, 200_000, 90_000, 180_000, 30_000];
        for &lba in &lbas {
            let done = c.issue(IdeCommand::ReadSector(lba), now);
            let ms = cycles_to_us(done - now) / 1000;
            assert!(
                (4..=45).contains(&ms),
                "read latency {ms} ms plausible bounds"
            );
            c.complete(done);
            now = done + 1000;
        }
        // Average should land in the paper's 18-26 ms band.
        let mut total = 0;
        let mut n = 0;
        let mut now = 0;
        for &lba in lbas.iter().cycle().take(30) {
            let done = c.issue(IdeCommand::ReadSector(lba), now);
            total += done - now;
            n += 1;
            c.complete(done);
            now = done + 1000;
        }
        let avg_ms = cycles_to_us(total / n) / 1000;
        assert!((14..=28).contains(&avg_ms), "avg read {avg_ms} ms");
    }

    #[test]
    fn buffered_writes_complete_fast_until_buffer_fills() {
        let mut c = ctl();
        let mut now = 0;
        let mut fast = 0;
        let mut slow = 0;
        for i in 0..64u64 {
            let done = c.issue(IdeCommand::WriteSector(10_000 + i), now);
            let us = cycles_to_us(done - now);
            if us <= 100 {
                fast += 1;
            } else {
                slow += 1;
            }
            c.complete(done);
            now = done + 2000; // driver turnaround
        }
        assert!(fast > 0, "some writes must be buffer-fast");
        assert!(slow > 0, "some writes must wait on the mechanism");
    }

    #[test]
    fn read_returns_written_data() {
        let mut c = ctl();
        c.buffer = (0..SECTOR).map(|i| (i % 256) as u8).collect();
        let done = c.issue(IdeCommand::WriteSector(42), 0);
        c.complete(done);
        // Force drain then read back.
        let done2 = c.issue(IdeCommand::ReadSector(42), done + 1);
        c.complete(done2);
        assert_eq!(c.status, IdeStatus::ReadReady(42));
        assert_eq!(c.buffer[5], 5);
    }

    #[test]
    fn sequential_same_track_reads_are_rotation_bound() {
        let mut c = ctl();
        // Two sectors on the same track: second read needs no seek.
        let d1 = c.issue(IdeCommand::ReadSector(100), 0);
        c.complete(d1);
        let d2 = c.issue(IdeCommand::ReadSector(101), d1);
        c.complete(d2);
        let us = cycles_to_us(d2 - d1);
        assert!(us < 20_000, "same-track read {us} us");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_commands_panic() {
        let mut c = ctl();
        c.issue(IdeCommand::ReadSector(1), 0);
        c.issue(IdeCommand::ReadSector(2), 0);
    }
}
