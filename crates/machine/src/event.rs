//! The deterministic device event queue.
//!
//! Devices act asynchronously from the CPU: the Ethernet card finishes
//! storing a frame, the disk completes a seek, the 8254 timer ticks.  Each
//! such action is a [`PendingEvent`] ordered by (cycle time, sequence
//! number); the sequence number makes simultaneous events deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycles;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// 8254 channel-0 tick: raise the clock IRQ and re-arm.
    PitTick,
    /// Statistics-clock tick (RTC-style second timer, optionally with a
    /// pseudo-random period): raise the stat IRQ and re-arm.
    StatTick,
    /// A frame finishes arriving on the Ethernet wire and is offered to
    /// the WD8003E receive logic.
    WireFrame(Vec<u8>),
    /// A pacing timer belonging to the remote host model.
    HostTimer(u64),
    /// The WD8003E finishes serializing a transmitted frame.
    WdTxDone,
    /// The IDE drive completes the mechanical part of a command.
    IdeOpDone,
}

/// An event scheduled at an absolute cycle time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEvent {
    /// Absolute cycle at which the event fires.
    pub at: Cycles,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl Ord for PendingEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PendingEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of device events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<PendingEvent>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at absolute cycle `at`.
    pub fn schedule(&mut self, at: Cycles, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(PendingEvent { at, seq, kind });
    }

    /// Time of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<PendingEvent> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(100, EventKind::PitTick);
        q.schedule(50, EventKind::WdTxDone);
        q.schedule(100, EventKind::IdeOpDone);
        assert_eq!(q.next_at(), Some(50));
        assert_eq!(q.pop_due(49), None);
        assert_eq!(q.pop_due(50).unwrap().kind, EventKind::WdTxDone);
        // Same timestamp: insertion order decides.
        assert_eq!(q.pop_due(100).unwrap().kind, EventKind::PitTick);
        assert_eq!(q.pop_due(100).unwrap().kind, EventKind::IdeOpDone);
        assert!(q.is_empty());
    }
}
