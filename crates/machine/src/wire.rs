//! The 10 Mbit/s Ethernet wire and the remote host on the far end.
//!
//! The paper's network experiments used a SparcStation 2 "as I was sure it
//! could fill the available network bandwidth to the PC over an ethernet".
//! [`RemoteHost`] is the pluggable model of that far-end machine: it can
//! send frames (paced by the wire rate) and react to frames the simulated
//! PC transmits.  Concrete hosts (a TCP blaster, an NFS server, a quiet
//! host) live with the scenarios; the wire only does timing.

use crate::time::Cycles;

/// Ethernet wire bit rate: 10 Mbit/s.
pub const WIRE_BITS_PER_SEC: u64 = 10_000_000;

/// Minimum Ethernet frame, including header and CRC.
pub const MIN_FRAME: usize = 64;
/// Interframe gap plus preamble, modelled as a flat 20 byte times.
pub const FRAME_OVERHEAD_BYTES: usize = 20;

/// Cycles for `len` bytes to serialize onto the wire at 10 Mbit/s.
pub fn frame_time(len: usize) -> Cycles {
    let bytes = len.max(MIN_FRAME) + FRAME_OVERHEAD_BYTES;
    // bits / 10Mbit in 40MHz cycles: 1 bit = 4 cycles.
    (bytes as u64) * 8 * 4
}

/// An action the remote host asks the wire to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostAction {
    /// Deliver `bytes` to the PC's Ethernet card, the last bit arriving at
    /// absolute cycle `at`.
    SendFrame {
        /// Arrival completion time.
        at: Cycles,
        /// Raw frame contents.
        bytes: Vec<u8>,
    },
    /// Wake the host model again at `at` with `token`.
    Timer {
        /// Callback time.
        at: Cycles,
        /// Opaque value handed back to the host.
        token: u64,
    },
}

/// The machine on the far end of the Ethernet.
pub trait RemoteHost: Send {
    /// Called once when the simulation starts.
    fn start(&mut self, now: Cycles) -> Vec<HostAction>;

    /// Called when the PC transmits `frame`; `now` is the time the last
    /// bit left the PC's card.
    fn on_tx(&mut self, frame: &[u8], now: Cycles) -> Vec<HostAction>;

    /// Called when a previously requested [`HostAction::Timer`] fires.
    fn on_timer(&mut self, token: u64, now: Cycles) -> Vec<HostAction>;
}

/// A host that never transmits; the default quiet network.
#[derive(Debug, Default)]
pub struct QuietHost;

impl RemoteHost for QuietHost {
    fn start(&mut self, _now: Cycles) -> Vec<HostAction> {
        Vec::new()
    }

    fn on_tx(&mut self, _frame: &[u8], _now: Cycles) -> Vec<HostAction> {
        Vec::new()
    }

    fn on_timer(&mut self, _token: u64, _now: Cycles) -> Vec<HostAction> {
        Vec::new()
    }
}

/// The wire: a remote host plus frame accounting.
pub struct Wire {
    /// The far-end host model.
    pub host: Box<dyn RemoteHost>,
    /// Frames delivered toward the PC.
    pub frames_to_pc: u64,
    /// Frames transmitted by the PC.
    pub frames_from_pc: u64,
    /// Bytes delivered toward the PC.
    pub bytes_to_pc: u64,
    /// Bytes transmitted by the PC.
    pub bytes_from_pc: u64,
}

impl Wire {
    /// Creates a wire with the given far-end host.
    pub fn new(host: Box<dyn RemoteHost>) -> Self {
        Wire {
            host,
            frames_to_pc: 0,
            frames_from_pc: 0,
            bytes_to_pc: 0,
            bytes_from_pc: 0,
        }
    }
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wire")
            .field("frames_to_pc", &self.frames_to_pc)
            .field("frames_from_pc", &self.frames_from_pc)
            .field("bytes_to_pc", &self.bytes_to_pc)
            .field("bytes_from_pc", &self.bytes_from_pc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_frame_takes_about_1_2ms() {
        // 1514 bytes + overhead at 10 Mbit/s is ~1.2 ms: the wire can
        // carry at most ~810 full frames per second.
        let cycles = frame_time(1514);
        let us = cycles / 40;
        assert!((1180..=1280).contains(&us), "{us} us");
    }

    #[test]
    fn runt_frames_are_padded_to_minimum() {
        assert_eq!(frame_time(10), frame_time(MIN_FRAME));
    }
}
