//! The Western Digital WD8003E Ethernet card.
//!
//! This is the 8-bit shared-memory ISA card the paper profiled: received
//! frames land in an 8 KiB on-board RAM organized as a ring of 256-byte
//! pages (8390-style, each frame prefixed by a 4-byte receive header), and
//! the driver must `bcopy` every byte out over the 8-bit ISA bus — the
//! single largest cost in the paper's network experiments (~1045 µs per
//! full frame).
//!
//! The card model is hardware only: it stores frames, keeps ring pointers
//! and counters, and raises its interrupt line.  The `we` *driver* (werint,
//! weget, weread, westart) lives in the kernel crate and charges the ISA
//! bus costs when it touches [`WdCard::shmem`].

/// Size of one ring page.
pub const PAGE: usize = 256;
/// Total on-board shared memory: 8 KiB.
pub const SHMEM: usize = 8192;
/// Pages reserved at the bottom for the transmit buffer (1536 bytes).
pub const TX_PAGES: u8 = 6;
/// Total number of pages.
pub const NPAGES: u8 = (SHMEM / PAGE) as u8;

/// Interrupt status bits (8390-style).
pub mod isr {
    /// Packet received.
    pub const PRX: u8 = 0x01;
    /// Packet transmitted.
    pub const PTX: u8 = 0x02;
    /// Receive ring overwrite warning (frames dropped).
    pub const OVW: u8 = 0x10;
}

/// The 4-byte receive header preceding each frame in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvHeader {
    /// Receive status (bit 0 = intact).
    pub status: u8,
    /// Ring page of the next frame.
    pub next_page: u8,
    /// Frame length including this header, little-endian.
    pub len: u16,
}

/// The card: shared RAM, ring pointers, interrupt status.
#[derive(Debug, Clone)]
pub struct WdCard {
    shmem: Vec<u8>,
    /// Next page the receive hardware will fill (NIC "current" register).
    pub curr: u8,
    /// Last page the driver has freed (the boundary register); the
    /// hardware may fill up to but not including this page.
    pub boundary: u8,
    /// Interrupt status register.
    pub isr: u8,
    /// Frames dropped because the ring was full.
    pub missed: u64,
    /// Frames accepted into the ring.
    pub accepted: u64,
    /// Length of the frame currently in the transmit buffer.
    pub tx_len: usize,
    /// True while a transmit is serializing onto the wire.
    pub tx_busy: bool,
}

impl Default for WdCard {
    fn default() -> Self {
        Self::new()
    }
}

impl WdCard {
    /// A freshly initialized card with an empty ring.
    pub fn new() -> Self {
        WdCard {
            shmem: vec![0; SHMEM],
            curr: TX_PAGES,
            boundary: TX_PAGES,
            isr: 0,
            missed: 0,
            accepted: 0,
            tx_len: 0,
            tx_busy: false,
        }
    }

    /// The shared memory window, as the driver sees it over the ISA bus.
    pub fn shmem(&self) -> &[u8] {
        &self.shmem
    }

    /// Mutable shared memory (driver writes to the transmit buffer).
    pub fn shmem_mut(&mut self) -> &mut [u8] {
        &mut self.shmem
    }

    fn ring_next(page: u8) -> u8 {
        if page + 1 >= NPAGES {
            TX_PAGES
        } else {
            page + 1
        }
    }

    /// Pages currently free for the receive hardware.
    pub fn free_pages(&self) -> u8 {
        let ring = NPAGES - TX_PAGES;
        let used = if self.curr >= self.boundary {
            self.curr - self.boundary
        } else {
            ring - (self.boundary - self.curr)
        };
        // One page is always kept unused so curr == boundary means empty.
        ring - used - 1
    }

    /// True if the driver has unread frames.
    pub fn has_frame(&self) -> bool {
        self.curr != self.boundary
    }

    /// The receive hardware stores `frame`; returns true if the card
    /// raises its interrupt line (false when merged into an already
    /// pending status is up to the PIC; the card always sets ISR bits).
    ///
    /// Frames that do not fit are dropped and counted in `missed`, and the
    /// overwrite-warning bit is set, matching the saturated-receiver
    /// behaviour the paper observed (the PC could not keep up with the
    /// wire).
    pub fn receive(&mut self, frame: &[u8]) -> bool {
        let total = frame.len() + 4;
        let pages_needed = total.div_ceil(PAGE) as u8;
        if pages_needed > self.free_pages() {
            self.missed += 1;
            self.isr |= isr::OVW;
            return false;
        }
        // Compute the page after this frame.
        let mut next = self.curr;
        for _ in 0..pages_needed {
            next = Self::ring_next(next);
        }
        // Write the receive header.
        let base = self.curr as usize * PAGE;
        self.shmem[base] = 0x01; // intact
        self.shmem[base + 1] = next;
        let len = total as u16;
        self.shmem[base + 2] = (len & 0xff) as u8;
        self.shmem[base + 3] = (len >> 8) as u8;
        // Write the frame data, wrapping within the ring region.
        let mut page = self.curr;
        let mut off = 4usize;
        for &b in frame {
            if off == PAGE {
                page = Self::ring_next(page);
                off = 0;
            }
            self.shmem[page as usize * PAGE + off] = b;
            off += 1;
        }
        self.curr = next;
        self.accepted += 1;
        self.isr |= isr::PRX;
        true
    }

    /// Reads the receive header at ring page `page`.
    pub fn recv_header(&self, page: u8) -> RecvHeader {
        let base = page as usize * PAGE;
        RecvHeader {
            status: self.shmem[base],
            next_page: self.shmem[base + 1],
            len: u16::from_le_bytes([self.shmem[base + 2], self.shmem[base + 3]]),
        }
    }

    /// Copies the frame starting at `page` (skipping the 4-byte header)
    /// into `out`; `len` is the header length field (includes the header).
    ///
    /// This is the *data path the driver pays for*: the caller must charge
    /// `len - 4` bytes of 8-bit ISA reads.
    pub fn copy_frame(&self, page: u8, len: u16, out: &mut Vec<u8>) {
        let datalen = len as usize - 4;
        out.clear();
        out.reserve(datalen);
        let mut p = page;
        let mut off = 4usize;
        for _ in 0..datalen {
            if off == PAGE {
                p = Self::ring_next(p);
                off = 0;
            }
            out.push(self.shmem[p as usize * PAGE + off]);
            off += 1;
        }
    }

    /// Driver advances the boundary to `page`, freeing ring space.
    pub fn set_boundary(&mut self, page: u8) {
        self.boundary = page;
    }

    /// Driver loads `frame` into the transmit buffer.
    ///
    /// The caller must charge `frame.len()` bytes of 8-bit ISA writes.
    pub fn load_tx(&mut self, frame: &[u8]) {
        assert!(frame.len() <= TX_PAGES as usize * PAGE, "tx frame too big");
        self.shmem[..frame.len()].copy_from_slice(frame);
        self.tx_len = frame.len();
    }

    /// Returns the frame currently in the transmit buffer.
    pub fn tx_frame(&self) -> Vec<u8> {
        self.shmem[..self.tx_len].to_vec()
    }

    /// Reads and clears the interrupt status register.
    pub fn ack_isr(&mut self) -> u8 {
        std::mem::take(&mut self.isr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receive_and_read_back_roundtrip() {
        let mut card = WdCard::new();
        let frame: Vec<u8> = (0..1500u16).map(|i| (i % 251) as u8).collect();
        assert!(card.receive(&frame));
        assert!(card.has_frame());
        let hdr = card.recv_header(card.boundary);
        assert_eq!(hdr.status & 1, 1);
        assert_eq!(hdr.len as usize, frame.len() + 4);
        let mut out = Vec::new();
        card.copy_frame(card.boundary, hdr.len, &mut out);
        assert_eq!(out, frame);
        card.set_boundary(hdr.next_page);
        assert!(!card.has_frame());
    }

    #[test]
    fn ring_wraps_and_stays_consistent() {
        let mut card = WdCard::new();
        let frame = vec![0xabu8; 700];
        let mut buf = Vec::new();
        // Many more frames than the ring holds at once, drained as we go.
        for _ in 0..100 {
            assert!(card.receive(&frame));
            let hdr = card.recv_header(card.boundary);
            card.copy_frame(card.boundary, hdr.len, &mut buf);
            assert_eq!(buf, frame);
            card.set_boundary(hdr.next_page);
        }
        assert_eq!(card.accepted, 100);
        assert_eq!(card.missed, 0);
    }

    #[test]
    fn full_ring_drops_and_warns() {
        let mut card = WdCard::new();
        let frame = vec![1u8; 1500];
        let mut stored = 0;
        while card.receive(&frame) {
            stored += 1;
            assert!(stored < 100, "ring never filled");
        }
        // 26 ring pages, 6 pages per 1504-byte frame, one page slack.
        assert_eq!(stored, 4);
        assert_eq!(card.missed, 1);
        assert!(card.isr & isr::OVW != 0);
        // Draining one frame makes room again.
        let hdr = card.recv_header(card.boundary);
        card.set_boundary(hdr.next_page);
        assert!(card.receive(&frame));
    }

    #[test]
    fn tx_buffer_roundtrip() {
        let mut card = WdCard::new();
        let frame = vec![7u8; 64];
        card.load_tx(&frame);
        assert_eq!(card.tx_frame(), frame);
    }

    #[test]
    fn isr_ack_clears() {
        let mut card = WdCard::new();
        card.receive(&[0u8; 64]);
        assert_eq!(card.ack_isr() & isr::PRX, isr::PRX);
        assert_eq!(card.ack_isr(), 0);
    }
}
