//! The machine: clock, event queue, PIC and devices wired together.

use crate::cost::CostModel;
use crate::eprom::EpromTap;
use crate::event::{EventKind, EventQueue};
use crate::ide::{IdeCommand, IdeController};
use crate::pic::{Pic, IRQ_CLOCK, IRQ_STAT, IRQ_WD, IRQ_WE};
use crate::time::{cycles_to_us, Cycles};
use crate::wd::WdCard;
use crate::wire::{frame_time, HostAction, Wire};

/// Physical ISA-bus address of the spare EPROM socket on the WD8003E card
/// where the paper plugged the Profiler (somewhere in hex A0000..100000).
pub const DEFAULT_EPROM_PHYS: u32 = 0x000C_C000;

/// The virtual PC.
///
/// Owns the cycle clock, device models, interrupt controller and the
/// (optional) Profiler tap on the EPROM socket.  The kernel crate drives
/// it: `advance` to burn cycles, `poll` to let device time pass, `take_irq`
/// to receive interrupts subject to the current spl mask.
pub struct Machine {
    /// Current time in cycles since power-on.
    pub now: Cycles,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// Interrupt controller.
    pub pic: Pic,
    /// Device event queue.
    pub events: EventQueue,
    /// Ethernet card, if installed.
    pub wd: Option<WdCard>,
    /// IDE controller, if installed.
    pub ide: Option<IdeController>,
    /// Ethernet wire and remote host, if connected.
    pub wire: Option<Wire>,
    /// Profiler board on the EPROM socket, if plugged in.
    pub eprom_tap: Option<Box<dyn EpromTap>>,
    /// Physical ISA address where the EPROM window is decoded.
    pub eprom_phys_base: u32,
    clock_period: Option<Cycles>,
    /// (base period, skewed) of the statistics clock, if started.
    stat_clock: Option<(Cycles, bool)>,
    stat_lcg: u64,
    /// Frames handed to the wire host by the card.
    pub tx_frames: u64,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new(CostModel::pc386())
    }
}

impl Machine {
    /// A machine with no devices installed.
    pub fn new(cost: CostModel) -> Self {
        Machine {
            now: 0,
            cost,
            pic: Pic::new(),
            events: EventQueue::new(),
            wd: None,
            ide: None,
            wire: None,
            eprom_tap: None,
            eprom_phys_base: DEFAULT_EPROM_PHYS,
            clock_period: None,
            stat_clock: None,
            stat_lcg: 0x1993_0717,
            tx_frames: 0,
        }
    }

    /// Starts the 8254 timer at `hz` interrupts per second.
    pub fn start_clock(&mut self, hz: u64) {
        let period = crate::time::CPU_HZ / hz;
        self.clock_period = Some(period);
        self.events.schedule(self.now + period, EventKind::PitTick);
    }

    /// Starts the statistics clock at `hz` average interrupts per
    /// second.  With `skewed = true` each period is pseudo-random in
    /// [0.5p, 1.5p) — the paper's "psuedo-random or skewed clock" that
    /// keeps profiling samples from aliasing with clock-synchronised
    /// activity.
    pub fn start_statclock(&mut self, hz: u64, skewed: bool) {
        let period = crate::time::CPU_HZ / hz;
        self.stat_clock = Some((period, skewed));
        let first = self.next_stat_period();
        self.events.schedule(self.now + first, EventKind::StatTick);
    }

    fn next_stat_period(&mut self) -> Cycles {
        let (period, skewed) = self.stat_clock.expect("statclock started");
        if !skewed {
            return period;
        }
        self.stat_lcg = self
            .stat_lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        period / 2 + (self.stat_lcg >> 33) % period.max(1)
    }

    /// Connects `wire` and lets the remote host seed its traffic.
    pub fn attach_wire(&mut self, mut wire: Wire) {
        let actions = wire.host.start(self.now);
        self.wire = Some(wire);
        self.apply_host_actions(actions);
    }

    fn apply_host_actions(&mut self, actions: Vec<HostAction>) {
        for a in actions {
            match a {
                HostAction::SendFrame { at, bytes } => {
                    let at = at.max(self.now);
                    self.events.schedule(at, EventKind::WireFrame(bytes));
                }
                HostAction::Timer { at, token } => {
                    let at = at.max(self.now);
                    self.events.schedule(at, EventKind::HostTimer(token));
                }
            }
        }
    }

    /// Burns `c` CPU cycles and processes any device activity that
    /// completes in that window.
    pub fn advance(&mut self, c: Cycles) {
        self.now += c;
        self.poll();
    }

    /// Processes all device events due at or before `now`.
    pub fn poll(&mut self) {
        while let Some(ev) = self.events.pop_due(self.now) {
            match ev.kind {
                EventKind::PitTick => {
                    self.pic.raise(IRQ_CLOCK);
                    if let Some(p) = self.clock_period {
                        self.events.schedule(ev.at + p, EventKind::PitTick);
                    }
                }
                EventKind::StatTick => {
                    self.pic.raise(IRQ_STAT);
                    if self.stat_clock.is_some() {
                        let p = self.next_stat_period();
                        self.events.schedule(ev.at + p, EventKind::StatTick);
                    }
                }
                EventKind::WireFrame(bytes) => {
                    if let Some(wire) = &mut self.wire {
                        wire.frames_to_pc += 1;
                        wire.bytes_to_pc += bytes.len() as u64;
                    }
                    if let Some(wd) = &mut self.wd {
                        wd.receive(&bytes);
                        // The card interrupts for both accepted frames
                        // (PRX) and overwrites (OVW).
                        self.pic.raise(IRQ_WE);
                    }
                }
                EventKind::HostTimer(token) => {
                    if let Some(wire) = &mut self.wire {
                        let actions = wire.host.on_timer(token, ev.at);
                        self.apply_host_actions(actions);
                    }
                }
                EventKind::WdTxDone => {
                    let frame = match &mut self.wd {
                        Some(wd) => {
                            wd.tx_busy = false;
                            wd.isr |= crate::wd::isr::PTX;
                            wd.tx_frame()
                        }
                        None => Vec::new(),
                    };
                    self.pic.raise(IRQ_WE);
                    self.tx_frames += 1;
                    if let Some(wire) = &mut self.wire {
                        wire.frames_from_pc += 1;
                        wire.bytes_from_pc += frame.len() as u64;
                        let actions = wire.host.on_tx(&frame, ev.at);
                        self.apply_host_actions(actions);
                    }
                }
                EventKind::IdeOpDone => {
                    if let Some(ide) = &mut self.ide {
                        ide.complete(ev.at);
                    }
                    self.pic.raise(IRQ_WD);
                }
            }
        }
    }

    /// Takes the highest-priority deliverable interrupt under `mask`.
    pub fn take_irq(&mut self, mask: u16) -> Option<u8> {
        self.pic.take(mask)
    }

    /// True if an interrupt could be delivered under `mask`.
    pub fn irq_ready(&self, mask: u16) -> bool {
        self.pic.has_unmasked(mask)
    }

    /// Idles the CPU forward to the next device event and processes it.
    ///
    /// Returns `false` if nothing is scheduled (the system would sleep
    /// forever).
    pub fn idle_to_next_event(&mut self) -> bool {
        match self.events.next_at() {
            Some(t) => {
                if t > self.now {
                    self.now = t;
                }
                self.poll();
                true
            }
            None => false,
        }
    }

    /// The Profiler trigger: an 8-bit read of the EPROM window at
    /// `offset`.  The board latches the offset (event tag) together with
    /// its 1 MHz counter.  The *caller* charges the trigger instruction
    /// cost; hardware latching is free.
    pub fn eprom_read(&mut self, offset: u16) {
        let us = cycles_to_us(self.now);
        if let Some(tap) = &mut self.eprom_tap {
            tap.on_read(offset, us);
        }
    }

    /// The card begins serializing the loaded transmit buffer onto the
    /// wire; completion raises the Ethernet IRQ.  The driver claims the
    /// transmitter (`tx_busy`) before loading; this call tolerates
    /// either order.
    ///
    /// # Panics
    ///
    /// Panics if no card is installed.
    pub fn wd_start_tx(&mut self) {
        let wd = self.wd.as_mut().expect("no Ethernet card");
        wd.tx_busy = true;
        let t = frame_time(wd.tx_len);
        self.events.schedule(self.now + t, EventKind::WdTxDone);
    }

    /// Issues an IDE command; completion raises the disk IRQ.
    ///
    /// # Panics
    ///
    /// Panics if no controller is installed.
    pub fn ide_issue(&mut self, cmd: IdeCommand) {
        let now = self.now;
        let ide = self.ide.as_mut().expect("no IDE controller");
        let done = ide.issue(cmd, now);
        self.events
            .schedule(done.max(now + 1), EventKind::IdeOpDone);
    }

    /// Microseconds since power-on (truncating, as the Profiler's 1 MHz
    /// counter sees time).
    pub fn now_us(&self) -> u64 {
        cycles_to_us(self.now)
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("pending_events", &self.events.len())
            .field("tx_frames", &self.tx_frames)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // device installation reads naturally
mod tests {
    use super::*;
    use crate::eprom::CountingTap;
    use crate::ide::DiskGeometry;
    use crate::time::us_to_cycles;
    use crate::wire::RemoteHost;

    #[test]
    fn clock_ticks_at_100hz() {
        let mut m = Machine::default();
        m.start_clock(100);
        let mut ticks = 0;
        for _ in 0..100 {
            // Idle 10 ms at a time.
            m.advance(us_to_cycles(10_000));
            while m.take_irq(0) == Some(IRQ_CLOCK) {
                ticks += 1;
            }
        }
        assert_eq!(ticks, 100);
    }

    #[test]
    fn eprom_reads_reach_the_tap() {
        let mut m = Machine::default();
        m.eprom_tap = Some(Box::new(CountingTap::default()));
        m.advance(us_to_cycles(123));
        m.eprom_read(502);
        m.advance(us_to_cycles(7));
        m.eprom_read(503);
        let tap = m.eprom_tap.as_ref().unwrap();
        assert_eq!(tap.stored(), 2);
    }

    struct OneShot;
    impl RemoteHost for OneShot {
        fn start(&mut self, now: Cycles) -> Vec<HostAction> {
            vec![HostAction::SendFrame {
                at: now + us_to_cycles(100),
                bytes: vec![0xee; 100],
            }]
        }
        fn on_tx(&mut self, frame: &[u8], now: Cycles) -> Vec<HostAction> {
            // Echo the frame back.
            vec![HostAction::SendFrame {
                at: now + us_to_cycles(50),
                bytes: frame.to_vec(),
            }]
        }
        fn on_timer(&mut self, _t: u64, _n: Cycles) -> Vec<HostAction> {
            Vec::new()
        }
    }

    #[test]
    fn wire_frame_lands_in_card_and_interrupts() {
        let mut m = Machine::default();
        m.wd = Some(WdCard::new());
        m.attach_wire(Wire::new(Box::new(OneShot)));
        m.advance(us_to_cycles(200));
        assert_eq!(m.take_irq(0), Some(IRQ_WE));
        let wd = m.wd.as_ref().unwrap();
        assert!(wd.has_frame());
        assert_eq!(wd.accepted, 1);
    }

    #[test]
    fn tx_reaches_host_and_gets_echoed() {
        let mut m = Machine::default();
        m.wd = Some(WdCard::new());
        m.attach_wire(Wire::new(Box::new(OneShot)));
        m.advance(us_to_cycles(200));
        m.take_irq(0);
        // Transmit a frame.
        m.wd.as_mut().unwrap().load_tx(&[0x11; 80]);
        m.wd_start_tx();
        // Wait for serialization + echo.
        m.advance(us_to_cycles(1000));
        let wd = m.wd.as_ref().unwrap();
        assert_eq!(m.tx_frames, 1);
        assert_eq!(wd.accepted, 2, "echo frame arrived");
        let wire = m.wire.as_ref().unwrap();
        assert_eq!(wire.frames_from_pc, 1);
        assert_eq!(wire.frames_to_pc, 2);
    }

    #[test]
    fn ide_completion_interrupts() {
        let mut m = Machine::default();
        m.ide = Some(IdeController::new(DiskGeometry::st3144()));
        m.ide_issue(IdeCommand::ReadSector(1234));
        assert_eq!(m.take_irq(0), None, "not done yet");
        // A read takes at most ~60 ms.
        m.advance(us_to_cycles(80_000));
        assert_eq!(m.take_irq(0), Some(IRQ_WD));
        assert_eq!(m.ide.as_ref().unwrap().reads, 1);
    }

    #[test]
    fn idle_skips_to_next_event() {
        let mut m = Machine::default();
        m.start_clock(100);
        assert!(m.idle_to_next_event());
        assert_eq!(m.now_us(), 10_000);
        assert!(m.pic.is_pending(IRQ_CLOCK));
        let mut n = Machine::default();
        assert!(!n.idle_to_next_event(), "no events scheduled");
    }
}
