//! The calibrated cost model.
//!
//! Every constant here is anchored to a timing the paper reports for the
//! 40 MHz 386 target; the anchor is quoted in each field's documentation.
//! The *shape* of every reproduced result (which function dominates, by what
//! ratio, where a trade-off crosses over) follows from the relationships
//! between these constants, which is what the paper's conclusions rest on.

use crate::time::Cycles;

/// Per-operation cycle costs for the simulated machine.
///
/// All costs are in CPU cycles at 40 MHz (1 µs = 40 cycles).
///
/// # Examples
///
/// ```
/// use hwprof_machine::CostModel;
///
/// let cost = CostModel::pc386();
/// // An 8-bit ISA read is roughly 20x a main-memory word move per byte,
/// // the paper's "up to 20 times slower" observation.
/// let isa_per_byte = cost.isa8_byte as f64;
/// let main_per_byte = cost.mem_word_copy as f64 / 4.0;
/// let ratio = isa_per_byte / main_per_byte;
/// assert!(ratio > 15.0 && ratio < 25.0, "ratio {ratio}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Copying one aligned 32-bit word main-memory to main-memory
    /// (read + write).  Anchor: `copyout` of a 1 KiB mbuf cluster takes
    /// about 40 µs, i.e. 1600 cycles / 256 words ≈ 6 cycles per word.
    pub mem_word_copy: Cycles,
    /// Zero-filling one aligned 32-bit word (`rep stosl`; write-only, so
    /// cheaper than a copy).  Anchor: Figure 5 shows `bzero` calls peaking
    /// at 132 µs, consistent with ~100 µs to clear a 4 KiB page.
    pub mem_word_zero: Cycles,
    /// Reading or writing one byte of 8-bit ISA bus memory (the WD8003E
    /// shared RAM).  Anchor: `bcopy` of a 1500-byte frame out of the card
    /// takes about 1045 µs ≈ 0.70 µs/byte ≈ 28 cycles.
    pub isa8_byte: Cycles,
    /// One 16-bit ISA I/O transfer (IDE PIO data port).  Anchor: moving a
    /// 512-byte sector to the controller takes ~149 µs ≈ 0.58 µs per
    /// 16-bit word ≈ 23 cycles.
    pub isa16_word: Cycles,
    /// One I/O-port access to a device register (e.g. the 8259 PIC).
    /// Anchor: `splnet` averages 11 µs and performs a handful of PIC mask
    /// writes plus bookkeeping; ~2.8 µs = 112 cycles per port access makes
    /// the spl* family land on the paper's numbers.
    pub io_port: Cycles,
    /// Call + return overhead of a C function (prologue, epilogue,
    /// argument push).  The paper remarks that "function call and return
    /// was speedy" on the 386; ~0.45 µs = 18 cycles.
    pub call_overhead: Cycles,
    /// One Profiler trigger instruction (a `movb _ProfileBase+tag` load
    /// from ISA memory decoded by the board).  Anchor: the paper measured
    /// "about 400 nanoseconds per function" for the entry+exit pair, i.e.
    /// ~200 ns = 8 cycles per trigger.
    pub trigger: Cycles,
    /// Summing one 16-bit word in the stock (poorly coded C) `in_cksum`.
    /// Anchor: checksumming a 1 KiB packet takes 843 µs ≈ 1.65 µs per
    /// 16-bit word ≈ 66 cycles.
    pub cksum_c_word16: Cycles,
    /// Summing one 16-bit word in the recoded assembler `in_cksum` the
    /// paper proposes.  Anchor: the recode should cut per-packet time from
    /// ~2000 µs to ~1200 µs, i.e. the checksum drops by roughly 5.5x;
    /// 12 cycles per word gives that.
    pub cksum_asm_word16: Cycles,
    /// Fixed overhead of taking a hardware interrupt through the ISA/8259
    /// path into an `ISAINTR` vector stub (save, EOI, dispatch).
    /// Anchor: Figure 4 shows `ISAINTR` with 31 µs net around a driver
    /// interrupt.
    pub intr_entry: Cycles,
    /// Extra work `ISAINTR` does per interrupt to emulate Asynchronous
    /// System Traps (software interrupts), which the 386/ISA architecture
    /// lacks.  Anchor: "around 24 microseconds per interrupt".
    pub ast_emulation: Cycles,
    /// Charged per simulated "basic block" of straight-line kernel C that
    /// has no dominating memory traffic.  This is the small-change that
    /// makes short functions (`min`, `splx`) cost a few microseconds.
    pub tick: Cycles,
}

impl CostModel {
    /// The calibrated model for the paper's 40 MHz 386 PC.
    pub fn pc386() -> Self {
        CostModel {
            mem_word_copy: 6,
            mem_word_zero: 4,
            isa8_byte: 28,
            isa16_word: 23,
            io_port: 112,
            call_overhead: 18,
            trigger: 8,
            cksum_c_word16: 66,
            cksum_asm_word16: 12,
            intr_entry: 500,    // 12.5 us of save/vector/EOI work
            ast_emulation: 960, // 24 us, as measured in the paper
            tick: 40,           // 1 us per charged block
        }
    }

    /// The model for the 68020 embedded board of the first case study.
    ///
    /// Only the constants the 68020 case study exercises differ in ways
    /// that matter: the board has no ISA bus (its Ethernet controller
    /// memory is 16-bit and ~3x faster than the PC's 8-bit card) and a
    /// multi-priority interrupt architecture that makes spl* a single
    /// status-register move instead of PIC port pokes.
    pub fn m68020() -> Self {
        CostModel {
            mem_word_copy: 8,
            mem_word_zero: 6,
            isa8_byte: 10,
            isa16_word: 10,
            io_port: 8,
            call_overhead: 24,
            trigger: 10,
            cksum_c_word16: 30,
            cksum_asm_word16: 10,
            intr_entry: 300,
            ast_emulation: 0,
            tick: 50,
        }
    }

    /// Cycles to copy `bytes` main-memory to main-memory with `bcopy`.
    ///
    /// Whole words move at [`CostModel::mem_word_copy`]; a trailing
    /// partial word costs one extra word move.
    pub fn bcopy_main(&self, bytes: usize) -> Cycles {
        let words = (bytes / 4) as Cycles;
        let tail = if !bytes.is_multiple_of(4) { 1 } else { 0 };
        (words + tail) * self.mem_word_copy + self.tick
    }

    /// Cycles to copy `bytes` between main memory and 8-bit ISA memory.
    pub fn bcopy_isa8(&self, bytes: usize) -> Cycles {
        bytes as Cycles * self.isa8_byte + self.tick
    }

    /// Cycles to checksum `bytes` with the stock C `in_cksum`.
    pub fn cksum_c(&self, bytes: usize) -> Cycles {
        (bytes as Cycles).div_ceil(2) * self.cksum_c_word16 + self.tick
    }

    /// Cycles to checksum `bytes` with the recoded assembler `in_cksum`.
    pub fn cksum_asm(&self, bytes: usize) -> Cycles {
        (bytes as Cycles).div_ceil(2) * self.cksum_asm_word16 + self.tick
    }

    /// Cycles to checksum `bytes` while they still sit in 8-bit ISA
    /// controller memory (each 16-bit word needs two ISA byte reads).
    ///
    /// This is the quantity behind the paper's what-if analysis: keeping
    /// packets in controller memory as external mbufs would add "at least
    /// an extra 980 microseconds" to checksum a full packet.
    pub fn cksum_isa8(&self, bytes: usize) -> Cycles {
        bytes as Cycles * self.isa8_byte
            + (bytes as Cycles).div_ceil(2) * self.cksum_asm_word16
            + self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::cycles_to_us;

    #[test]
    fn copyout_1k_near_40us() {
        let c = CostModel::pc386();
        let us = cycles_to_us(c.bcopy_main(1024));
        assert!((35..=45).contains(&us), "copyout 1K = {us} us");
    }

    #[test]
    fn isa_frame_copy_near_1045us() {
        let c = CostModel::pc386();
        let us = cycles_to_us(c.bcopy_isa8(1500));
        assert!((1000..=1100).contains(&us), "frame copy = {us} us");
    }

    #[test]
    fn cksum_1k_near_843us() {
        let c = CostModel::pc386();
        let us = cycles_to_us(c.cksum_c(1024));
        assert!((800..=880).contains(&us), "cksum 1K = {us} us");
    }

    #[test]
    fn asm_cksum_is_about_5x_faster() {
        let c = CostModel::pc386();
        let slow = c.cksum_c(1460);
        let fast = c.cksum_asm(1460);
        let ratio = slow as f64 / fast as f64;
        assert!(ratio > 4.0 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn checksumming_in_controller_memory_is_a_loss() {
        // The paper: doing the checksum over the ISA bus would add at
        // least ~980 us for a full frame versus main memory.
        let c = CostModel::pc386();
        let extra =
            cycles_to_us(c.cksum_isa8(1460)) as i64 - cycles_to_us(c.cksum_asm(1460)) as i64;
        assert!(extra > 900, "extra = {extra} us");
    }

    #[test]
    fn ide_sector_near_149us() {
        let c = CostModel::pc386();
        let us = cycles_to_us(c.isa16_word * 256);
        assert!((140..=160).contains(&us), "sector PIO = {us} us");
    }
}
