//! The EPROM-socket side channel.
//!
//! The Profiler board piggy-backs on a standard JEDEC EPROM socket: only the
//! 16 address lines and the ChipEnable/OutputEnable strobes are brought out,
//! so from the board's point of view an event is "the socket was read at
//! offset N at time T".  This trait is that 18-wire interface.  The machine
//! owns at most one tap (the paper's board has a single socket cable) and
//! presents every 8-bit read of the configured EPROM window to it.

/// A device listening on the EPROM socket (the Profiler board).
///
/// `now_us` is the tap's view of time: the machine's cycle clock divided
/// down to the board's 1 MHz oscillator.  The board itself truncates this
/// to its 24-bit counter width.
pub trait EpromTap: Send {
    /// An 8-bit read of the EPROM window at `offset` (the low 16 address
    /// lines) occurring at absolute microsecond `now_us`.
    fn on_read(&mut self, offset: u16, now_us: u64);

    /// Number of events currently stored in the board's RAM.
    fn stored(&self) -> usize;

    /// True if the address counter has overflowed and the board has
    /// stopped storing (the second LED).
    fn overflowed(&self) -> bool;
}

/// A trivial tap that counts reads; useful in tests.
#[derive(Debug, Default)]
pub struct CountingTap {
    /// Total reads observed.
    pub reads: usize,
    /// Last (offset, time) pair observed.
    pub last: Option<(u16, u64)>,
}

impl EpromTap for CountingTap {
    fn on_read(&mut self, offset: u16, now_us: u64) {
        self.reads += 1;
        self.last = Some((offset, now_us));
    }

    fn stored(&self) -> usize {
        self.reads
    }

    fn overflowed(&self) -> bool {
        false
    }
}
