//! An 8259-style programmable interrupt controller.
//!
//! The paper's spl* analysis hinges on the 386/ISA interrupt architecture:
//! there is no processor priority level, so every `splnet`/`splbio`/... must
//! reprogram PIC mask registers with slow I/O port writes, and software
//! interrupts must be emulated.  The [`Pic`] here keeps a pending set and a
//! software mask; the kernel maps its spl levels onto mask bits.

/// An interrupt request line, 0..16 (two cascaded 8259s).
pub type Irq = u8;

/// IRQ line of the 8254 timer (hardclock).
pub const IRQ_CLOCK: Irq = 0;
/// IRQ line of the RTC-style statistics clock (statclock).
pub const IRQ_STAT: Irq = 8;
/// IRQ line of the WD8003E Ethernet card.
pub const IRQ_WE: Irq = 9;
/// IRQ line of the IDE disk controller.
pub const IRQ_WD: Irq = 14;

/// Pending/mask state of the cascaded interrupt controllers.
#[derive(Debug, Default, Clone)]
pub struct Pic {
    pending: u16,
    /// Counts of interrupts raised per line, for event statistics.
    pub raised: [u64; 16],
    /// Counts of interrupts lost because the line was already pending
    /// (edge-triggered ISA lines merge).
    pub merged: [u64; 16],
}

impl Pic {
    /// Creates a controller with nothing pending.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts an interrupt line.
    ///
    /// ISA lines are edge-triggered: raising an already-pending line is
    /// recorded as a merge and otherwise lost, exactly the behaviour that
    /// forces drivers to drain their devices fully per interrupt.
    pub fn raise(&mut self, irq: Irq) {
        let bit = 1u16 << irq;
        self.raised[irq as usize] += 1;
        if self.pending & bit != 0 {
            self.merged[irq as usize] += 1;
        }
        self.pending |= bit;
    }

    /// Returns true if `irq` is pending.
    pub fn is_pending(&self, irq: Irq) -> bool {
        self.pending & (1 << irq) != 0
    }

    /// Returns the raw pending bit mask.
    pub fn pending_mask(&self) -> u16 {
        self.pending
    }

    /// Takes the highest-priority pending line not blocked by `mask`
    /// (bit i set in `mask` blocks IRQ i), clearing its pending bit.
    ///
    /// 8259 priority is lowest line number first.
    pub fn take(&mut self, mask: u16) -> Option<Irq> {
        let ready = self.pending & !mask;
        if ready == 0 {
            return None;
        }
        let irq = ready.trailing_zeros() as Irq;
        self.pending &= !(1 << irq);
        Some(irq)
    }

    /// True if any unmasked interrupt is deliverable.
    pub fn has_unmasked(&self, mask: u16) -> bool {
        self.pending & !mask != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_honours_priority_and_mask() {
        let mut pic = Pic::new();
        pic.raise(IRQ_WD);
        pic.raise(IRQ_CLOCK);
        pic.raise(IRQ_WE);
        // Clock (IRQ0) wins.
        assert_eq!(pic.take(0), Some(IRQ_CLOCK));
        // Mask the Ethernet line; disk is delivered instead.
        assert_eq!(pic.take(1 << IRQ_WE), Some(IRQ_WD));
        // Only the masked line remains.
        assert_eq!(pic.take(1 << IRQ_WE), None);
        assert_eq!(pic.take(0), Some(IRQ_WE));
        assert_eq!(pic.take(0), None);
    }

    #[test]
    fn edge_triggered_lines_merge() {
        let mut pic = Pic::new();
        pic.raise(IRQ_WE);
        pic.raise(IRQ_WE);
        assert_eq!(pic.merged[IRQ_WE as usize], 1);
        assert_eq!(pic.take(0), Some(IRQ_WE));
        assert_eq!(pic.take(0), None, "two raises deliver once");
    }

    #[test]
    fn has_unmasked_tracks_mask() {
        let mut pic = Pic::new();
        assert!(!pic.has_unmasked(0));
        pic.raise(IRQ_WE);
        assert!(pic.has_unmasked(0));
        assert!(!pic.has_unmasked(1 << IRQ_WE));
    }
}
