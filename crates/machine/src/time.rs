//! Virtual time.
//!
//! All simulated time is kept in CPU cycles of the 40 MHz processor the
//! paper used.  One microsecond is exactly 40 cycles, so conversions are
//! lossless for whole microseconds; the Profiler's own 1 MHz counter is
//! derived by truncating division (the board latches whatever count its
//! free-running counter shows, losing sub-microsecond detail exactly as the
//! real hardware did).

/// A count of CPU cycles at [`CPU_HZ`].
pub type Cycles = u64;

/// Clock rate of the simulated processor: the paper's 40 MHz 386.
pub const CPU_HZ: u64 = 40_000_000;

/// Cycles per microsecond (40 at 40 MHz).
pub const CYCLES_PER_US: u64 = CPU_HZ / 1_000_000;

/// Converts cycles to whole microseconds, truncating (as a 1 MHz latch
/// would).
#[inline]
pub fn cycles_to_us(c: Cycles) -> u64 {
    c / CYCLES_PER_US
}

/// Converts microseconds to cycles.
#[inline]
pub fn us_to_cycles(us: u64) -> Cycles {
    us * CYCLES_PER_US
}

/// Converts milliseconds to cycles.
#[inline]
pub fn ms_to_cycles(ms: u64) -> Cycles {
    us_to_cycles(ms * 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_us_roundtrip_is_exact_for_whole_us() {
        for us in [0u64, 1, 94, 1045, 16_777_215] {
            assert_eq!(cycles_to_us(us_to_cycles(us)), us);
        }
    }

    #[test]
    fn sub_us_cycles_truncate() {
        assert_eq!(cycles_to_us(39), 0);
        assert_eq!(cycles_to_us(41), 1);
        assert_eq!(cycles_to_us(79), 1);
    }

    #[test]
    fn ms_conversion() {
        assert_eq!(ms_to_cycles(1), 40_000);
        assert_eq!(cycles_to_us(ms_to_cycles(300)), 300_000);
    }
}
