//! The board proper: counters, capture RAM, control logic, LEDs.

use std::sync::Arc;

use hwprof_machine::EpromTap;
use parking_lot::Mutex;

use crate::record::{serialize_raw, RawRecord};

/// Hardware build options.
///
/// The stock board stores 16384 events of (16-bit tag, 24-bit time at
/// 1 MHz).  The paper's future-work section considers more RAM and "a
/// wider RAM module for accepting more clock data bits"; both are plain
/// parameters here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardConfig {
    /// Capture RAM depth in events.
    pub capacity: usize,
    /// Time field width in bits (24 on the stock board).
    pub time_bits: u32,
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig {
            capacity: 16384,
            time_bits: 24,
        }
    }
}

impl BoardConfig {
    /// The future-work variant: 64 K events with a 32-bit timestamp.
    pub fn wide() -> Self {
        BoardConfig {
            capacity: 65536,
            time_bits: 32,
        }
    }

    fn time_mask(&self) -> u64 {
        if self.time_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.time_bits) - 1
        }
    }
}

/// The two indicator LEDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leds {
    /// "the Profiler is active and storing data".
    pub active: bool,
    /// "the address counter has overflowed and the Profiler has
    /// automatically ceased storing data".
    pub overflow: bool,
}

#[derive(Debug)]
struct BoardState {
    config: BoardConfig,
    ram: Vec<RawRecord>,
    armed: bool,
    overflowed: bool,
    /// Total trigger reads seen while not storing (armed off or
    /// overflowed); useful to quantify what a capture missed.
    missed: u64,
}

/// A handle to the Profiler board.
///
/// Clones share the same hardware: the machine holds one clone as its
/// EPROM-socket tap; the operator holds another to flip the switch and
/// carry the RAMs to the analysis host.
///
/// # Examples
///
/// ```
/// use hwprof_profiler::Profiler;
/// use hwprof_machine::EpromTap;
///
/// let mut board = Profiler::stock();
/// board.set_switch(true);
/// board.on_read(502, 1000);
/// board.on_read(503, 1042);
/// let records = board.records();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[1].time - records[0].time, 42);
/// ```
#[derive(Clone)]
pub struct Profiler {
    state: Arc<Mutex<BoardState>>,
}

impl Profiler {
    /// Builds a board with the given configuration, switch off.
    pub fn new(config: BoardConfig) -> Self {
        Profiler {
            state: Arc::new(Mutex::new(BoardState {
                config,
                ram: Vec::with_capacity(config.capacity),
                armed: false,
                overflowed: false,
                missed: 0,
            })),
        }
    }

    /// The stock 16384-event, 24-bit board.
    pub fn stock() -> Self {
        Self::new(BoardConfig::default())
    }

    /// Flips the recording switch.
    ///
    /// Switching on clears overflow and begins storing at the current RAM
    /// address (the RAMs are *not* erased — the operator clears them
    /// explicitly with [`Profiler::clear`], since they are battery
    /// backed).
    pub fn set_switch(&self, on: bool) {
        let mut s = self.state.lock();
        s.armed = on;
        if on {
            s.overflowed = false;
        }
    }

    /// Erases the capture RAM and resets the address counter.
    pub fn clear(&self) {
        let mut s = self.state.lock();
        s.ram.clear();
        s.overflowed = false;
        s.missed = 0;
    }

    /// The LED pair.
    pub fn leds(&self) -> Leds {
        let s = self.state.lock();
        Leds {
            active: s.armed && !s.overflowed,
            overflow: s.overflowed,
        }
    }

    /// Copies the stored records out (the SmartSocket transfer).
    pub fn records(&self) -> Vec<RawRecord> {
        self.state.lock().ram.clone()
    }

    /// The raw 5-byte-per-event RAM image for upload to the UNIX host.
    pub fn dump_raw(&self) -> Vec<u8> {
        serialize_raw(&self.state.lock().ram)
    }

    /// Trigger reads that arrived while the board was not storing.
    pub fn missed(&self) -> u64 {
        self.state.lock().missed
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().config.capacity
    }
}

impl EpromTap for Profiler {
    fn on_read(&mut self, offset: u16, now_us: u64) {
        let mut s = self.state.lock();
        if !s.armed || s.overflowed {
            s.missed += 1;
            return;
        }
        if s.ram.len() >= s.config.capacity {
            // Address counter overflow: stop storing, light the LED.
            s.overflowed = true;
            s.armed = false;
            s.missed += 1;
            return;
        }
        let mask = s.config.time_mask();
        s.ram.push(RawRecord {
            tag: offset,
            time: (now_us & mask) as u32,
        });
    }

    fn stored(&self) -> usize {
        self.state.lock().ram.len()
    }

    fn overflowed(&self) -> bool {
        self.state.lock().overflowed
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("Profiler")
            .field("stored", &s.ram.len())
            .field("capacity", &s.config.capacity)
            .field("armed", &s.armed)
            .field("overflowed", &s.overflowed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_machine::EpromTap;

    #[test]
    fn switch_gates_recording() {
        let mut b = Profiler::stock();
        b.on_read(10, 5);
        assert_eq!(b.stored(), 0);
        assert_eq!(b.missed(), 1);
        b.set_switch(true);
        b.on_read(10, 6);
        assert_eq!(b.stored(), 1);
        b.set_switch(false);
        b.on_read(10, 7);
        assert_eq!(b.stored(), 1);
    }

    #[test]
    fn overflow_stops_storage_and_lights_led() {
        let mut b = Profiler::new(BoardConfig {
            capacity: 4,
            time_bits: 24,
        });
        b.set_switch(true);
        for i in 0..10u64 {
            b.on_read(i as u16, i);
        }
        assert_eq!(b.stored(), 4);
        assert!(b.overflowed());
        let leds = b.leds();
        assert!(!leds.active);
        assert!(leds.overflow);
        assert_eq!(b.missed(), 6);
        // Re-arming resumes (operator emptied it first in practice).
        b.clear();
        b.set_switch(true);
        b.on_read(1, 100);
        assert_eq!(b.stored(), 1);
        assert!(b.leds().active);
    }

    #[test]
    fn time_wraps_at_24_bits() {
        let mut b = Profiler::stock();
        b.set_switch(true);
        b.on_read(1, (1 << 24) - 1);
        b.on_read(2, 1 << 24);
        b.on_read(3, (1 << 24) + 10);
        let r = b.records();
        assert_eq!(r[0].time, 0xFF_FFFF);
        assert_eq!(r[1].time, 0);
        assert_eq!(r[2].time, 10);
    }

    #[test]
    fn clones_share_hardware() {
        let board = Profiler::stock();
        let mut machine_side = board.clone();
        board.set_switch(true);
        machine_side.on_read(502, 9);
        assert_eq!(board.stored(), 1);
    }

    #[test]
    fn wide_board_keeps_32_bits() {
        let mut b = Profiler::new(BoardConfig::wide());
        b.set_switch(true);
        b.on_read(1, 0xFFFF_FFFF);
        assert_eq!(b.records()[0].time, 0xFFFF_FFFF);
    }

    #[test]
    fn dump_is_five_bytes_per_event() {
        let mut b = Profiler::stock();
        b.set_switch(true);
        b.on_read(502, 100);
        b.on_read(503, 150);
        let raw = b.dump_raw();
        assert_eq!(raw.len(), 10);
        let parsed = crate::record::parse_raw(&raw).unwrap();
        assert_eq!(parsed, b.records());
    }
}
