//! The board proper: counters, capture RAM, control logic, LEDs.

use std::sync::Arc;

use hwprof_machine::EpromTap;
use hwprof_telemetry::{Counter, Gauge, Registry, SpanLog, SpanName, SpanTrack};
use parking_lot::Mutex;

use crate::record::{serialize_raw, RawRecord};

/// Hardware build options.
///
/// The stock board stores 16384 events of (16-bit tag, 24-bit time at
/// 1 MHz).  The paper's future-work section considers more RAM and "a
/// wider RAM module for accepting more clock data bits"; both are plain
/// parameters here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardConfig {
    /// Capture RAM depth in events.
    pub capacity: usize,
    /// Time field width in bits (24 on the stock board).
    pub time_bits: u32,
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig {
            capacity: 16384,
            time_bits: 24,
        }
    }
}

impl BoardConfig {
    /// The future-work variant: 64 K events with a 32-bit timestamp.
    pub fn wide() -> Self {
        BoardConfig {
            capacity: 65536,
            time_bits: 32,
        }
    }

    fn time_mask(&self) -> u64 {
        if self.time_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.time_bits) - 1
        }
    }
}

/// Where drained capture-RAM banks go while the board stays armed.
///
/// Drain-while-armed mode models the paper's repeated re-arm runs
/// ("the operator swapped battery-backed RAMs between runs") as a
/// double-buffered capture RAM: when one bank fills, it is handed to
/// the sink whole while the other bank keeps recording.  Each bank is
/// one capture session to the analysis software.
pub trait BankSink: Send {
    /// Accepts a full bank.  Returning `false` means the sink could not
    /// take it (the operator was not ready with an empty RAM); the
    /// board then overflows exactly like a full single-bank capture.
    fn bank(&mut self, records: Vec<RawRecord>) -> bool;
}

impl BankSink for std::sync::mpsc::Sender<Vec<RawRecord>> {
    fn bank(&mut self, records: Vec<RawRecord>) -> bool {
        self.send(records).is_ok()
    }
}

impl BankSink for std::sync::mpsc::SyncSender<Vec<RawRecord>> {
    fn bank(&mut self, records: Vec<RawRecord>) -> bool {
        // A full channel is the hardware analogue of no empty RAM on
        // hand: refuse rather than stall the machine being profiled.
        self.try_send(records).is_ok()
    }
}

/// A cheap point-in-time snapshot of the board: fill level, missed
/// triggers, and control state, read under one lock acquisition.
///
/// This is what a supervising operator can observe without disturbing
/// the capture — the LEDs plus the counters the SmartSocket exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardHealth {
    /// Events currently in the capture RAM.
    pub stored: usize,
    /// Configured RAM depth in events.
    pub capacity: usize,
    /// Trigger reads that arrived while the board was not storing
    /// (switch off or overflowed).
    pub missed_while_off: u64,
    /// The arm switch position.
    pub armed: bool,
    /// The overflow LED.
    pub overflowed: bool,
    /// Banks handed to a drain sink so far.
    pub banks_drained: u64,
}

impl BoardHealth {
    /// Fill level as a fraction of capacity.
    pub fn fill(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.stored as f64 / self.capacity as f64
        }
    }
}

/// The two indicator LEDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leds {
    /// "the Profiler is active and storing data".
    pub active: bool,
    /// "the address counter has overflowed and the Profiler has
    /// automatically ceased storing data".
    pub overflow: bool,
}

/// Telemetry handles for the board's hot path — a handful of relaxed
/// atomics, registered once and touched per trigger only when
/// telemetry is enabled.
struct BoardMetrics {
    triggers: Counter,
    missed: Counter,
    overflows: Counter,
    banks_drained: Counter,
    fill_pct: Gauge,
}

impl BoardMetrics {
    fn new(reg: &Registry) -> Self {
        BoardMetrics {
            triggers: reg.counter("board.triggers"),
            missed: reg.counter("board.missed"),
            overflows: reg.counter("board.overflows"),
            banks_drained: reg.counter("board.banks_drained"),
            fill_pct: reg.gauge("board.fill_pct"),
        }
    }
}

struct BoardState {
    config: BoardConfig,
    ram: Vec<RawRecord>,
    armed: bool,
    overflowed: bool,
    /// Total trigger reads seen while not storing (armed off or
    /// overflowed); useful to quantify what a capture missed.
    missed: u64,
    /// Drain-while-armed sink; `None` is the stock single-bank board.
    drain: Option<Box<dyn BankSink>>,
    /// Banks handed to the sink so far (including the final flush).
    banks_drained: u64,
    /// Live self-metrics; `None` keeps the hot path untouched.
    metrics: Option<BoardMetrics>,
    /// Span journal; bank swaps and overflows drop instants here.
    /// `None` keeps the hot path untouched, like `metrics`.
    journal: Option<SpanLog>,
}

impl BoardState {
    /// Events one bank holds: half the RAM in drain mode (double
    /// buffer), all of it on the stock board.
    fn bank_capacity(&self) -> usize {
        if self.drain.is_some() {
            (self.config.capacity / 2).max(1)
        } else {
            self.config.capacity
        }
    }
}

/// A handle to the Profiler board.
///
/// Clones share the same hardware: the machine holds one clone as its
/// EPROM-socket tap; the operator holds another to flip the switch and
/// carry the RAMs to the analysis host.
///
/// # Examples
///
/// ```
/// use hwprof_profiler::Profiler;
/// use hwprof_machine::EpromTap;
///
/// let mut board = Profiler::stock();
/// board.set_switch(true);
/// board.on_read(502, 1000);
/// board.on_read(503, 1042);
/// let records = board.records();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[1].time - records[0].time, 42);
/// ```
#[derive(Clone)]
pub struct Profiler {
    state: Arc<Mutex<BoardState>>,
}

impl Profiler {
    /// Builds a board with the given configuration, switch off.
    pub fn new(config: BoardConfig) -> Self {
        Profiler {
            state: Arc::new(Mutex::new(BoardState {
                config,
                ram: Vec::with_capacity(config.capacity),
                armed: false,
                overflowed: false,
                missed: 0,
                drain: None,
                banks_drained: 0,
                metrics: None,
                journal: None,
            })),
        }
    }

    /// The stock 16384-event, 24-bit board.
    pub fn stock() -> Self {
        Self::new(BoardConfig::default())
    }

    /// Flips the recording switch.
    ///
    /// Switching on clears overflow and begins storing at the current RAM
    /// address (the RAMs are *not* erased — the operator clears them
    /// explicitly with [`Profiler::clear`], since they are battery
    /// backed).
    pub fn set_switch(&self, on: bool) {
        let mut s = self.state.lock();
        s.armed = on;
        if on {
            s.overflowed = false;
        }
    }

    /// Erases the capture RAM and resets the address counter.
    pub fn clear(&self) {
        let mut s = self.state.lock();
        s.ram.clear();
        s.overflowed = false;
        s.missed = 0;
    }

    /// The LED pair.
    pub fn leds(&self) -> Leds {
        let s = self.state.lock();
        Leds {
            active: s.armed && !s.overflowed,
            overflow: s.overflowed,
        }
    }

    /// Copies the stored records out (the SmartSocket transfer).
    pub fn records(&self) -> Vec<RawRecord> {
        self.state.lock().ram.clone()
    }

    /// The raw 5-byte-per-event RAM image for upload to the UNIX host.
    pub fn dump_raw(&self) -> Vec<u8> {
        serialize_raw(&self.state.lock().ram)
    }

    /// Trigger reads that arrived while the board was not storing.
    pub fn missed(&self) -> u64 {
        self.state.lock().missed
    }

    /// Snapshots fill level, missed count and control state in one lock
    /// acquisition — the supervisor's per-trigger observation.
    pub fn health(&self) -> BoardHealth {
        let s = self.state.lock();
        BoardHealth {
            stored: s.ram.len(),
            capacity: s.config.capacity,
            missed_while_off: s.missed,
            armed: s.armed,
            overflowed: s.overflowed,
            banks_drained: s.banks_drained,
        }
    }

    /// Switches on drain-while-armed mode: the capture RAM becomes a
    /// double buffer and every full half-RAM bank is handed to `sink`
    /// while the other half keeps recording, so captures are no longer
    /// bounded by the 16384-event RAM.
    pub fn set_drain(&self, sink: Box<dyn BankSink>) {
        let mut s = self.state.lock();
        s.drain = Some(sink);
    }

    /// Banks handed to the drain sink so far.
    pub fn banks_drained(&self) -> u64 {
        self.state.lock().banks_drained
    }

    /// Hands the current partial bank to the drain sink (the operator
    /// pulling the last RAM after the run).  Returns `false` if no
    /// drain is configured or the sink refused the bank.
    pub fn flush_drain(&self) -> bool {
        let mut s = self.state.lock();
        let st = &mut *s;
        match st.drain.as_mut() {
            Some(sink) => {
                if st.ram.is_empty() {
                    return true;
                }
                st.banks_drained += 1;
                if let Some(m) = &st.metrics {
                    m.banks_drained.inc();
                    m.fill_pct.set(0);
                }
                sink.bank(std::mem::take(&mut st.ram))
            }
            None => false,
        }
    }

    /// Removes the drain sink and returns the board to stock
    /// single-bank behaviour.  Dropping the returned sink is what closes
    /// a streaming pipeline's feed, letting its workers finish.
    pub fn clear_drain(&self) -> Option<Box<dyn BankSink>> {
        self.state.lock().drain.take()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().config.capacity
    }

    /// Enables live self-metrics: per-trigger counts, fill level,
    /// overflow and drained-bank counters under the `board.` prefix in
    /// `reg`.  Without this call the hot path touches no atomics.
    pub fn set_telemetry(&self, reg: &Registry) {
        self.state.lock().metrics = Some(BoardMetrics::new(reg));
    }

    /// Attaches a span journal: bank swaps record a `drain` instant
    /// (`id` = bank ordinal, `arg` = events in the bank) and overflow
    /// an `overflow` instant, both on the board track at trigger time.
    /// Purely observational — the capture stream is bit-identical with
    /// or without it.
    pub fn set_span_log(&self, log: &SpanLog) {
        self.state.lock().journal = Some(log.clone());
    }
}

impl EpromTap for Profiler {
    fn on_read(&mut self, offset: u16, now_us: u64) {
        let mut s = self.state.lock();
        let st = &mut *s;
        if !st.armed || st.overflowed {
            st.missed += 1;
            if let Some(m) = &st.metrics {
                m.missed.inc();
            }
            return;
        }
        if st.ram.len() >= st.bank_capacity() {
            match st.drain.as_mut() {
                Some(sink) => {
                    // Bank swap: the full bank goes to the sink, the
                    // other bank keeps recording the same time stream.
                    let cap = (st.config.capacity / 2).max(1);
                    let full = std::mem::replace(&mut st.ram, Vec::with_capacity(cap));
                    st.banks_drained += 1;
                    if let Some(m) = &st.metrics {
                        m.banks_drained.inc();
                    }
                    if let Some(j) = &st.journal {
                        j.instant(
                            SpanTrack::Board,
                            SpanName::Drain,
                            now_us,
                            st.banks_drained - 1,
                            full.len() as u64,
                        );
                    }
                    if !sink.bank(full) {
                        // No empty RAM ready: overflow, stop storing.
                        st.overflowed = true;
                        st.armed = false;
                        st.missed += 1;
                        if let Some(m) = &st.metrics {
                            m.overflows.inc();
                            m.missed.inc();
                        }
                        if let Some(j) = &st.journal {
                            j.instant(SpanTrack::Board, SpanName::Overflow, now_us, 0, 0);
                        }
                        return;
                    }
                }
                None => {
                    // Address counter overflow: stop storing, light the
                    // LED.
                    st.overflowed = true;
                    st.armed = false;
                    st.missed += 1;
                    if let Some(m) = &st.metrics {
                        m.overflows.inc();
                        m.missed.inc();
                    }
                    if let Some(j) = &st.journal {
                        j.instant(SpanTrack::Board, SpanName::Overflow, now_us, 0, 0);
                    }
                    return;
                }
            }
        }
        let mask = st.config.time_mask();
        st.ram.push(RawRecord {
            tag: offset,
            time: (now_us & mask) as u32,
        });
        if let Some(m) = &st.metrics {
            m.triggers.inc();
            let cap = st.bank_capacity();
            m.fill_pct.set((st.ram.len() * 100 / cap.max(1)) as u64);
        }
    }

    fn stored(&self) -> usize {
        self.state.lock().ram.len()
    }

    fn overflowed(&self) -> bool {
        self.state.lock().overflowed
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("Profiler")
            .field("stored", &s.ram.len())
            .field("capacity", &s.config.capacity)
            .field("armed", &s.armed)
            .field("overflowed", &s.overflowed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwprof_machine::EpromTap;

    #[test]
    fn switch_gates_recording() {
        let mut b = Profiler::stock();
        b.on_read(10, 5);
        assert_eq!(b.stored(), 0);
        assert_eq!(b.missed(), 1);
        b.set_switch(true);
        b.on_read(10, 6);
        assert_eq!(b.stored(), 1);
        b.set_switch(false);
        b.on_read(10, 7);
        assert_eq!(b.stored(), 1);
    }

    #[test]
    fn overflow_stops_storage_and_lights_led() {
        let mut b = Profiler::new(BoardConfig {
            capacity: 4,
            time_bits: 24,
        });
        b.set_switch(true);
        for i in 0..10u64 {
            b.on_read(i as u16, i);
        }
        assert_eq!(b.stored(), 4);
        assert!(b.overflowed());
        let leds = b.leds();
        assert!(!leds.active);
        assert!(leds.overflow);
        assert_eq!(b.missed(), 6);
        // Re-arming resumes (operator emptied it first in practice).
        b.clear();
        b.set_switch(true);
        b.on_read(1, 100);
        assert_eq!(b.stored(), 1);
        assert!(b.leds().active);
    }

    #[test]
    fn time_wraps_at_24_bits() {
        let mut b = Profiler::stock();
        b.set_switch(true);
        b.on_read(1, (1 << 24) - 1);
        b.on_read(2, 1 << 24);
        b.on_read(3, (1 << 24) + 10);
        let r = b.records();
        assert_eq!(r[0].time, 0xFF_FFFF);
        assert_eq!(r[1].time, 0);
        assert_eq!(r[2].time, 10);
    }

    #[test]
    fn clones_share_hardware() {
        let board = Profiler::stock();
        let mut machine_side = board.clone();
        board.set_switch(true);
        machine_side.on_read(502, 9);
        assert_eq!(board.stored(), 1);
    }

    #[test]
    fn wide_board_keeps_32_bits() {
        let mut b = Profiler::new(BoardConfig::wide());
        b.set_switch(true);
        b.on_read(1, 0xFFFF_FFFF);
        assert_eq!(b.records()[0].time, 0xFFFF_FFFF);
    }

    #[test]
    fn drain_mode_swaps_banks_without_overflow() {
        let b = Profiler::new(BoardConfig {
            capacity: 8,
            time_bits: 24,
        });
        let (tx, rx) = std::sync::mpsc::channel();
        b.set_drain(Box::new(tx));
        b.set_switch(true);
        let mut tap = b.clone();
        // 23 events through a 2x4-event double buffer.
        for i in 0..23u64 {
            tap.on_read(i as u16, i * 10);
        }
        assert!(!b.overflowed(), "drain mode never fills");
        assert_eq!(b.missed(), 0);
        // 5 full banks drained, 3 events still in the recording bank.
        assert_eq!(b.banks_drained(), 5);
        assert_eq!(b.stored(), 3);
        assert!(b.flush_drain());
        assert_eq!(b.banks_drained(), 6);
        assert_eq!(b.stored(), 0);
        let banks: Vec<Vec<RawRecord>> = rx.try_iter().collect();
        assert_eq!(banks.len(), 6);
        let all: Vec<RawRecord> = banks.concat();
        assert_eq!(all.len(), 23);
        // The concatenated banks are the uninterrupted event stream.
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.tag, i as u16);
            assert_eq!(r.time, (i as u32) * 10);
        }
    }

    #[test]
    fn refused_bank_overflows_the_board() {
        let b = Profiler::new(BoardConfig {
            capacity: 4,
            time_bits: 24,
        });
        // Bound 1: the second full bank finds the channel occupied.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        b.set_drain(Box::new(tx));
        b.set_switch(true);
        let mut tap = b.clone();
        for i in 0..10u64 {
            tap.on_read(i as u16, i);
        }
        assert!(b.overflowed(), "sink full means no empty RAM ready");
        assert!(b.leds().overflow);
        assert!(b.missed() > 0);
        drop(rx);
    }

    #[test]
    fn flush_without_drain_reports_false() {
        let mut b = Profiler::stock();
        b.set_switch(true);
        b.on_read(1, 5);
        assert!(!b.flush_drain());
        assert_eq!(b.stored(), 1, "stock board keeps its RAM");
    }

    #[test]
    fn dump_is_five_bytes_per_event() {
        let mut b = Profiler::stock();
        b.set_switch(true);
        b.on_read(502, 100);
        b.on_read(503, 150);
        let raw = b.dump_raw();
        assert_eq!(raw.len(), 10);
        let (parsed, trailing) = crate::record::parse_raw_lossy(&raw);
        assert_eq!(trailing, 0, "a board dump is always record-aligned");
        assert_eq!(parsed, b.records());
    }

    #[test]
    fn health_snapshot_tracks_fill_and_misses() {
        let mut b = Profiler::new(BoardConfig {
            capacity: 4,
            time_bits: 24,
        });
        let h = b.health();
        assert_eq!(h.stored, 0);
        assert_eq!(h.capacity, 4);
        assert!(!h.armed);
        assert!((h.fill() - 0.0).abs() < f64::EPSILON);
        b.on_read(1, 5); // switch off: missed
        b.set_switch(true);
        b.on_read(1, 6);
        b.on_read(2, 7);
        let h = b.health();
        assert_eq!(h.stored, 2);
        assert_eq!(h.missed_while_off, 1);
        assert!(h.armed);
        assert!(!h.overflowed);
        assert!((h.fill() - 0.5).abs() < f64::EPSILON);
        for i in 0..5u64 {
            b.on_read(3, 10 + i);
        }
        let h = b.health();
        assert!(h.overflowed);
        assert_eq!(h.stored, 4);
        assert!(h.missed_while_off > 1);
    }
}
