//! Capture-side half of the always-on flight recorder.
//!
//! The supervisor stays the single source of truth for what was
//! captured and when; continuous consumers subscribe to it through the
//! [`SessionSink`] observer installed with
//! [`CaptureSupervisor::set_session_sink`](crate::CaptureSupervisor::set_session_sink).
//! The sink sees every delivered session and every dark-window gap at
//! the same two single sites that feed the Coverage ledger, the
//! telemetry Registry and the SpanLog, so a live consumer can never
//! observe a capture history that disagrees with the post-run
//! [`SupervisedRun`](crate::SupervisedRun).
//!
//! The analysis crate's `FlightRecorder` implements [`SessionSink`];
//! this module only defines the subscription contract plus the
//! [`RecorderConfig`] the recorder is built from, so the profiler crate
//! stays free of any dependency on reconstruction machinery.

use crate::supervisor::{Gap, SupervisedSession};

/// A live subscriber to the supervised capture stream.
///
/// Callbacks run under the supervisor lock on the capture path: they
/// must not block and must not call back into the supervisor.  Sessions
/// arrive in *delivery* order, which the spill shelf can permute from
/// index order; consumers that need index order must sort or key by
/// [`SupervisedSession::index`].
pub trait SessionSink: Send {
    /// One bank session was delivered (upload succeeded or the run
    /// finished with the bank still local).
    fn session(&mut self, session: &SupervisedSession);

    /// One dark window was recorded.
    fn gap(&mut self, gap: &Gap);
}

/// Configuration for the analysis-side `FlightRecorder`: the fixed
/// window width, the retention budget of the window ring, and the
/// regression threshold its differential reports use.
///
/// Built with [`RecorderConfig::builder`]; the builder validates on
/// [`build`](RecorderConfigBuilder::build) and returns a
/// [`RecorderConfigError`] instead of clamping silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Fixed rollup window width in µs.  Windows tile absolute machine
    /// time from 0: window `w` covers `[w·window_us, (w+1)·window_us)`.
    pub window_us: u64,
    /// Memory budget of the ring, in retained windows.  When a new
    /// window would exceed it, the oldest retained window is evicted
    /// and its clipped span charged to the eviction ledger.
    pub retain: usize,
    /// Movers threshold for differential reports, in parts-per-million
    /// of relative growth of a function's coverage-scaled net rate
    /// (50_000 = 5%).
    pub diff_threshold_ppm: u32,
}

impl RecorderConfig {
    /// Starts a builder with the defaults: 1 ms windows, 64 retained,
    /// 5% movers threshold.
    pub fn builder() -> RecorderConfigBuilder {
        RecorderConfigBuilder {
            window_us: 1_000,
            retain: 64,
            diff_threshold_ppm: 50_000,
        }
    }
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig::builder().build().expect("defaults valid")
    }
}

/// Builder for [`RecorderConfig`].
#[must_use = "builders do nothing until .build() is called"]
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfigBuilder {
    window_us: u64,
    retain: usize,
    diff_threshold_ppm: u32,
}

impl RecorderConfigBuilder {
    /// Sets the rollup window width in µs.
    pub fn window_us(mut self, us: u64) -> Self {
        self.window_us = us;
        self
    }

    /// Sets the ring's retention budget in windows.
    pub fn retain(mut self, windows: usize) -> Self {
        self.retain = windows;
        self
    }

    /// Sets the movers threshold in ppm of relative rate growth.
    pub fn diff_threshold_ppm(mut self, ppm: u32) -> Self {
        self.diff_threshold_ppm = ppm;
        self
    }

    /// Validates and builds the config.
    pub fn build(self) -> Result<RecorderConfig, RecorderConfigError> {
        if self.window_us == 0 {
            return Err(RecorderConfigError::ZeroWindow);
        }
        if self.retain == 0 {
            return Err(RecorderConfigError::NoRetention);
        }
        Ok(RecorderConfig {
            window_us: self.window_us,
            retain: self.retain,
            diff_threshold_ppm: self.diff_threshold_ppm,
        })
    }
}

/// Why a [`RecorderConfigBuilder`] refused to build.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderConfigError {
    /// `window_us` was 0 — windows must have positive width.
    ZeroWindow,
    /// `retain` was 0 — the ring must hold at least one window.
    NoRetention,
}

impl std::fmt::Display for RecorderConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecorderConfigError::ZeroWindow => write!(f, "recorder window width must be > 0 us"),
            RecorderConfigError::NoRetention => {
                write!(f, "recorder must retain at least one window")
            }
        }
    }
}

impl std::error::Error for RecorderConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_build() {
        let cfg = RecorderConfig::default();
        assert_eq!(cfg.window_us, 1_000);
        assert_eq!(cfg.retain, 64);
        assert_eq!(cfg.diff_threshold_ppm, 50_000);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            RecorderConfig::builder().window_us(0).build(),
            Err(RecorderConfigError::ZeroWindow)
        );
        assert_eq!(
            RecorderConfig::builder().retain(0).build(),
            Err(RecorderConfigError::NoRetention)
        );
        let cfg = RecorderConfig::builder()
            .window_us(250)
            .retain(8)
            .diff_threshold_ppm(10_000)
            .build()
            .expect("valid");
        assert_eq!(cfg.window_us, 250);
        assert_eq!(cfg.retain, 8);
    }
}
