//! The raw capture record and its RAM image.
//!
//! One stored event is 40 bits: a 16-bit tag and a 24-bit microsecond
//! count.  The upload path (physically carrying the battery-backed RAMs to
//! another host in the paper) is modelled as a byte stream of 5-byte
//! little-endian records: tag low, tag high, time low, time mid, time
//! high.

/// Mask of the 24-bit microsecond counter.
pub const TIME_MASK: u32 = 0x00FF_FFFF;

/// One 40-bit capture RAM word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord {
    /// The 16-bit event tag (the EPROM address lines).
    pub tag: u16,
    /// The latched 24-bit 1 MHz counter value.
    pub time: u32,
}

impl RawRecord {
    /// Builds a record, truncating `time_us` to the counter width exactly
    /// as the hardware latch does.
    pub fn latch(tag: u16, time_us: u64) -> Self {
        RawRecord {
            tag,
            time: (time_us as u32) & TIME_MASK,
        }
    }
}

/// Errors decoding an uploaded RAM image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The byte stream length is not a multiple of 5.
    TruncatedStream {
        /// Total length seen.
        len: usize,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::TruncatedStream { len } => {
                write!(f, "raw stream length {len} is not a multiple of 5")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Serializes records to the 5-byte-per-event upload format.
pub fn serialize_raw(records: &[RawRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 5);
    for r in records {
        out.extend_from_slice(&r.tag.to_le_bytes());
        let t = r.time & TIME_MASK;
        out.push((t & 0xff) as u8);
        out.push(((t >> 8) & 0xff) as u8);
        out.push(((t >> 16) & 0xff) as u8);
    }
    out
}

/// Parses an uploaded RAM image back into records.
pub fn parse_raw(bytes: &[u8]) -> Result<Vec<RawRecord>, RecordError> {
    if !bytes.len().is_multiple_of(5) {
        return Err(RecordError::TruncatedStream { len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(5)
        .map(|c| RawRecord {
            tag: u16::from_le_bytes([c[0], c[1]]),
            time: u32::from_le_bytes([c[2], c[3], c[4], 0]),
        })
        .collect())
}

/// Parses an uploaded RAM image, tolerating a truncated tail: every
/// complete 5-byte record decodes, and the count of trailing bytes that
/// never completed a record is returned alongside (0 for a clean
/// upload, 1-4 for one cut mid-record).
pub fn parse_raw_lossy(bytes: &[u8]) -> (Vec<RawRecord>, usize) {
    let records = bytes
        .chunks_exact(5)
        .map(|c| RawRecord {
            tag: u16::from_le_bytes([c[0], c[1]]),
            time: u32::from_le_bytes([c[2], c[3], c[4], 0]),
        })
        .collect();
    (records, bytes.len() % 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_truncates_to_24_bits() {
        let r = RawRecord::latch(502, 0x12_3456_789A);
        assert_eq!(r.time, 0x0056_789A & TIME_MASK);
        // Exactly at the wrap boundary.
        assert_eq!(RawRecord::latch(0, 1 << 24).time, 0);
        assert_eq!(RawRecord::latch(0, (1 << 24) - 1).time, TIME_MASK);
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let recs = vec![
            RawRecord::latch(502, 0),
            RawRecord::latch(503, 16_777_215),
            RawRecord::latch(65535, 123_456),
        ];
        let bytes = serialize_raw(&recs);
        assert_eq!(bytes.len(), 15);
        assert_eq!(parse_raw(&bytes).unwrap(), recs);
    }

    #[test]
    fn lossy_parse_recovers_complete_records() {
        let recs = vec![RawRecord::latch(502, 10), RawRecord::latch(503, 20)];
        let mut bytes = serialize_raw(&recs);
        assert_eq!(parse_raw_lossy(&bytes), (recs.clone(), 0));
        bytes.truncate(bytes.len() - 2); // cut the last record short
        assert_eq!(parse_raw_lossy(&bytes), (recs[..1].to_vec(), 3));
        assert_eq!(parse_raw_lossy(&[]), (vec![], 0));
    }

    #[test]
    fn truncated_stream_rejected() {
        assert!(matches!(
            parse_raw(&[1, 2, 3]),
            Err(RecordError::TruncatedStream { len: 3 })
        ));
        assert!(parse_raw(&[]).unwrap().is_empty());
    }
}
