//! Deterministic fault injection for the capture/upload path.
//!
//! The paper's capture path is full of physical failure modes: the
//! battery-backed RAMs are hand-carried to the upload host, a stray
//! EPROM read logs a garbage tag, a stuck address counter rewrites the
//! same cell, and an upload can lose its tail.  Hybrid hardware/software
//! tracers (HMTT) treat lost and corrupted records as a first-class
//! design problem; this module makes every one of those faults a
//! seeded, reproducible event so the analysis software's tolerance can
//! be tested and measured.
//!
//! Fault classes, matching the hardware failure they model:
//!
//! * **drop** — a trigger read the board missed (marginal timing on the
//!   EPROM socket): the record never lands in RAM.
//! * **flip** — a RAM bit-flip while the battery-backed RAM is carried
//!   to the host: one of the 40 stored bits inverts.  This also models
//!   a garbled upload byte (the flip happens in transit either way).
//! * **stuck** — the address counter fails to advance for one store, so
//!   the same record appears twice in the image.
//! * **spurious** — a stray EPROM read (e.g. a bus glitch) latches a
//!   garbage tag with the current counter value.
//! * **truncate** — the upload byte stream loses its tail mid-record.
//! * **refusal** — the operator has no empty RAM ready: the drain sink
//!   refuses a bank and the board overflows.
//!
//! All randomness is a seeded [`rand::rngs::StdRng`]; the same spec and
//! seed over the same input always injects the same faults, and every
//! injection is counted in [`InjectedFaults`] so tests can demand that
//! the analysis side accounts for each one.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::board::BankSink;
use crate::record::{RawRecord, TIME_MASK};

/// Tags at or above this value are outside any build's tag assignment
/// (assignment starts at 500 and the kernel has a few hundred
/// functions), so spurious reads drawn from here always decode as
/// unknown tags.
pub const SPURIOUS_TAG_BASE: u16 = 0x8000;

/// Fault rates for the capture/upload path, in events per million
/// opportunities (per record for the record-level classes, per upload
/// for truncation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Per-record chance the trigger is dropped (never stored).
    pub drop_ppm: u32,
    /// Per-record chance the address counter sticks (record repeated).
    pub stuck_ppm: u32,
    /// Per-record chance one stored bit flips in transport.
    pub flip_ppm: u32,
    /// Which of the 40 bits a flip inverts (0-15 tag, 16-39 time);
    /// `None` picks a random bit per flip.
    pub flip_bit: Option<u8>,
    /// Per-record chance a spurious garbage-tag read precedes it.
    pub spurious_ppm: u32,
    /// Per-upload chance the byte stream loses 1-4 trailing bytes.
    pub truncate_ppm: u32,
    /// Accept this many banks, then refuse every later one (the
    /// operator ran out of empty RAMs).  `None` never refuses.
    pub refuse_after: Option<u64>,
}

impl FaultSpec {
    /// No faults at all: the injector becomes the identity.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Every record-level class plus truncation at the same rate.
    pub fn uniform(ppm: u32) -> Self {
        FaultSpec {
            drop_ppm: ppm,
            stuck_ppm: ppm,
            flip_ppm: ppm,
            flip_bit: None,
            spurious_ppm: ppm,
            truncate_ppm: ppm,
            refuse_after: None,
        }
    }

    /// True if this spec can never alter anything.
    pub fn is_none(&self) -> bool {
        self.drop_ppm == 0
            && self.stuck_ppm == 0
            && self.flip_ppm == 0
            && self.spurious_ppm == 0
            && self.truncate_ppm == 0
            && self.refuse_after.is_none()
    }
}

/// Running totals of every fault actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectedFaults {
    /// Records dropped (missed triggers).
    pub dropped: u64,
    /// Records repeated by a stuck address counter.
    pub duplicated: u64,
    /// Records with one bit flipped in transport.
    pub flipped: u64,
    /// Spurious garbage-tag records inserted.
    pub spurious: u64,
    /// Uploads whose byte stream lost its tail.
    pub truncations: u64,
    /// Banks refused by the drain sink.
    pub refused_banks: u64,
}

impl InjectedFaults {
    /// Total individual faults injected (refusals excluded: a refused
    /// bank is an overflow, not a corrupted record).
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.flipped + self.spurious + self.truncations
    }
}

struct InjectorState {
    spec: FaultSpec,
    rng: StdRng,
    counts: InjectedFaults,
    banks_seen: u64,
}

impl InjectorState {
    fn hit(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.gen_range(0u32..1_000_000) < ppm
    }
}

/// A seeded fault injector for the board/upload path.
///
/// Clones share the same state (like [`crate::Profiler`] clones share
/// the board), so an experiment can hand one clone to a drain sink and
/// keep another to read [`FaultInjector::counts`] afterwards.
#[derive(Clone)]
pub struct FaultInjector {
    state: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    /// Builds an injector; the same `spec` and `seed` always produce
    /// the same fault schedule over the same inputs.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultInjector {
            state: Arc::new(Mutex::new(InjectorState {
                spec,
                rng: StdRng::seed_from_u64(seed),
                counts: InjectedFaults::default(),
                banks_seen: 0,
            })),
        }
    }

    /// Totals of every fault injected so far.
    pub fn counts(&self) -> InjectedFaults {
        self.state.lock().counts
    }

    /// Applies the record-level fault classes (spurious, drop, flip,
    /// stuck) to a RAM image in transit.
    pub fn corrupt_records(&self, records: &[RawRecord]) -> Vec<RawRecord> {
        let mut s = self.state.lock();
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            let ppm = s.spec.spurious_ppm;
            if s.hit(ppm) {
                let tag = SPURIOUS_TAG_BASE | (s.rng.gen_range(0u16..SPURIOUS_TAG_BASE));
                out.push(RawRecord { tag, time: r.time });
                s.counts.spurious += 1;
            }
            let ppm = s.spec.drop_ppm;
            if s.hit(ppm) {
                s.counts.dropped += 1;
                continue;
            }
            let mut rec = *r;
            let ppm = s.spec.flip_ppm;
            if s.hit(ppm) {
                let bit = match s.spec.flip_bit {
                    Some(b) => u32::from(b.min(39)),
                    None => s.rng.gen_range(0u32..40),
                };
                if bit < 16 {
                    rec.tag ^= 1 << bit;
                } else {
                    rec.time = (rec.time ^ (1 << (bit - 16))) & TIME_MASK;
                }
                s.counts.flipped += 1;
            }
            out.push(rec);
            let ppm = s.spec.stuck_ppm;
            if s.hit(ppm) {
                out.push(rec);
                s.counts.duplicated += 1;
            }
        }
        out
    }

    /// Applies the upload-level fault class: the byte stream may lose
    /// 1-4 trailing bytes, always cutting mid-record.
    pub fn corrupt_upload(&self, mut bytes: Vec<u8>) -> Vec<u8> {
        let mut s = self.state.lock();
        let ppm = s.spec.truncate_ppm;
        if bytes.len() >= 5 && s.hit(ppm) {
            let cut = 1 + s.rng.gen_range(0usize..4);
            bytes.truncate(bytes.len() - cut);
            s.counts.truncations += 1;
        }
        bytes
    }

    /// Wraps a drain sink so every bank passes through the injector on
    /// its way out of the board (the transport leg of the streaming
    /// path), and refusal faults fire per the spec.
    pub fn sink(&self, inner: Box<dyn BankSink>) -> FaultySink {
        FaultySink {
            injector: self.clone(),
            inner,
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("FaultInjector")
            .field("spec", &s.spec)
            .field("counts", &s.counts)
            .finish()
    }
}

/// A [`BankSink`] decorator that corrupts banks in transit and models
/// the operator running out of empty RAMs.
pub struct FaultySink {
    injector: FaultInjector,
    inner: Box<dyn BankSink>,
}

impl BankSink for FaultySink {
    fn bank(&mut self, records: Vec<RawRecord>) -> bool {
        let corrupted = {
            let refused = {
                let mut s = self.injector.state.lock();
                s.banks_seen += 1;
                match s.spec.refuse_after {
                    Some(n) if s.banks_seen > n => {
                        s.counts.refused_banks += 1;
                        true
                    }
                    _ => false,
                }
            };
            if refused {
                return false;
            }
            self.injector.corrupt_records(&records)
        };
        self.inner.bank(corrupted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::serialize_raw;

    fn recs(n: u16) -> Vec<RawRecord> {
        (0..n)
            .map(|i| RawRecord {
                tag: 500 + i,
                time: u32::from(i) * 7,
            })
            .collect()
    }

    #[test]
    fn zero_spec_is_identity() {
        let inj = FaultInjector::new(FaultSpec::none(), 42);
        let input = recs(100);
        assert_eq!(inj.corrupt_records(&input), input);
        let bytes = serialize_raw(&input);
        assert_eq!(inj.corrupt_upload(bytes.clone()), bytes);
        assert_eq!(inj.counts(), InjectedFaults::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let input = recs(500);
        let a = FaultInjector::new(FaultSpec::uniform(50_000), 7);
        let b = FaultInjector::new(FaultSpec::uniform(50_000), 7);
        assert_eq!(a.corrupt_records(&input), b.corrupt_records(&input));
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "50000 ppm over 500 records hits");
    }

    #[test]
    fn drops_shrink_and_counts_match() {
        let input = recs(1000);
        let inj = FaultInjector::new(
            FaultSpec {
                drop_ppm: 100_000,
                ..FaultSpec::none()
            },
            1,
        );
        let out = inj.corrupt_records(&input);
        let c = inj.counts();
        assert_eq!(out.len() as u64, input.len() as u64 - c.dropped);
        assert!(c.dropped > 0);
        assert_eq!(c.total(), c.dropped, "only drops enabled");
    }

    #[test]
    fn stuck_counter_duplicates_adjacent() {
        let input = recs(1000);
        let inj = FaultInjector::new(
            FaultSpec {
                stuck_ppm: 100_000,
                ..FaultSpec::none()
            },
            2,
        );
        let out = inj.corrupt_records(&input);
        let c = inj.counts();
        assert_eq!(out.len() as u64, input.len() as u64 + c.duplicated);
        let adjacent_dups = out.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        assert_eq!(adjacent_dups, c.duplicated);
    }

    #[test]
    fn spurious_tags_land_in_garbage_space() {
        let input = recs(1000);
        let inj = FaultInjector::new(
            FaultSpec {
                spurious_ppm: 100_000,
                ..FaultSpec::none()
            },
            3,
        );
        let out = inj.corrupt_records(&input);
        let c = inj.counts();
        let garbage = out.iter().filter(|r| r.tag >= SPURIOUS_TAG_BASE).count() as u64;
        assert_eq!(garbage, c.spurious);
        assert!(c.spurious > 0);
    }

    #[test]
    fn pinned_flip_bit_touches_only_that_bit() {
        let input = recs(1000);
        let inj = FaultInjector::new(
            FaultSpec {
                flip_ppm: 100_000,
                flip_bit: Some(39), // time bit 23
                ..FaultSpec::none()
            },
            4,
        );
        let out = inj.corrupt_records(&input);
        let c = inj.counts();
        let mut flips = 0u64;
        for (a, b) in input.iter().zip(&out) {
            if a != b {
                assert_eq!(a.tag, b.tag);
                assert_eq!(a.time ^ b.time, 1 << 23);
                flips += 1;
            }
        }
        assert_eq!(flips, c.flipped);
        assert!(c.flipped > 0);
    }

    #[test]
    fn truncation_cuts_mid_record() {
        let inj = FaultInjector::new(
            FaultSpec {
                truncate_ppm: 1_000_000,
                ..FaultSpec::none()
            },
            5,
        );
        let bytes = serialize_raw(&recs(20));
        let cut = inj.corrupt_upload(bytes.clone());
        assert!(cut.len() < bytes.len());
        assert!(!cut.len().is_multiple_of(5), "always a mid-record cut");
        assert_eq!(inj.counts().truncations, 1);
    }

    #[test]
    fn refusal_fires_after_n_banks() {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<RawRecord>>();
        let inj = FaultInjector::new(
            FaultSpec {
                refuse_after: Some(2),
                ..FaultSpec::none()
            },
            6,
        );
        let mut sink = inj.sink(Box::new(tx));
        assert!(sink.bank(recs(4)));
        assert!(sink.bank(recs(4)));
        assert!(!sink.bank(recs(4)), "third bank refused");
        assert!(!sink.bank(recs(4)), "and every one after");
        assert_eq!(inj.counts().refused_banks, 2);
        assert_eq!(rx.try_iter().count(), 2);
    }
}
