//! The future-work ZIF readback path.
//!
//! "The next step is to bring in the EPROM data lines as well [...] Then
//! once the Profiler has been used to collect the data, each of the
//! storage RAMs in turn can be multiplexed into the EPROM address space,
//! and the data can be read as if it were an EPROM."
//!
//! The stock board has five 8-bit storage RAMs covering the 40-bit record:
//! chips 0-1 hold the tag (low, high) and chips 2-4 hold the time (low,
//! mid, high).  [`ram_chip_view`] renders the byte image of one chip, so
//! an upload can be reassembled by reading the five images back through
//! the socket instead of physically moving the RAMs.

use crate::record::RawRecord;

/// One of the five 8-bit storage RAM chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RamChip {
    /// Tag bits 0..8.
    TagLow,
    /// Tag bits 8..16.
    TagHigh,
    /// Time bits 0..8.
    TimeLow,
    /// Time bits 8..16.
    TimeMid,
    /// Time bits 16..24.
    TimeHigh,
}

impl RamChip {
    /// All chips in board order.
    pub const ALL: [RamChip; 5] = [
        RamChip::TagLow,
        RamChip::TagHigh,
        RamChip::TimeLow,
        RamChip::TimeMid,
        RamChip::TimeHigh,
    ];

    fn extract(self, r: &RawRecord) -> u8 {
        match self {
            RamChip::TagLow => (r.tag & 0xff) as u8,
            RamChip::TagHigh => (r.tag >> 8) as u8,
            RamChip::TimeLow => (r.time & 0xff) as u8,
            RamChip::TimeMid => ((r.time >> 8) & 0xff) as u8,
            RamChip::TimeHigh => ((r.time >> 16) & 0xff) as u8,
        }
    }
}

/// The byte image of `chip`, one byte per stored event, as it would be
/// read back through the EPROM window.
pub fn ram_chip_view(records: &[RawRecord], chip: RamChip) -> Vec<u8> {
    records.iter().map(|r| chip.extract(r)).collect()
}

/// Reassembles records from the five chip images (the host side of the
/// ZIF readback).  Images must be equal length.
///
/// # Panics
///
/// Panics if the images have different lengths.
pub fn reassemble(images: &[Vec<u8>; 5]) -> Vec<RawRecord> {
    let n = images[0].len();
    for img in images.iter() {
        assert_eq!(img.len(), n, "chip images must be equal length");
    }
    (0..n)
        .map(|i| RawRecord {
            tag: u16::from_le_bytes([images[0][i], images[1][i]]),
            time: u32::from_le_bytes([images[2][i], images[3][i], images[4][i], 0]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_views_reassemble_exactly() {
        let records = vec![
            RawRecord::latch(502, 123_456),
            RawRecord::latch(65535, 16_777_215),
            RawRecord::latch(0, 0),
        ];
        let images: [Vec<u8>; 5] = [
            ram_chip_view(&records, RamChip::TagLow),
            ram_chip_view(&records, RamChip::TagHigh),
            ram_chip_view(&records, RamChip::TimeLow),
            ram_chip_view(&records, RamChip::TimeMid),
            ram_chip_view(&records, RamChip::TimeHigh),
        ];
        assert_eq!(reassemble(&images), records);
    }
}
