//! Supervised capture: overflow-resilient re-arm, adaptive tag-mask
//! degradation, and retrying uploads.
//!
//! The paper's board simply *stops* on overflow ("the address counter
//! has overflowed and the Profiler has automatically ceased storing
//! data") and relies on an operator to swap battery-backed RAMs and
//! carry them to the host.  [`CaptureSupervisor`] models a tireless
//! operator sitting on the EPROM socket: it watches the fill level
//! through [`Profiler::health`], swaps and re-arms the RAM whenever a
//! bank fills, and records each swap's dark window as an explicit
//! coverage [`Gap`] instead of silently losing time.
//!
//! Three failure axes are handled:
//!
//! * **Overflow** — a full bank is pulled, the board re-armed after a
//!   configurable drain budget; the dark window becomes a [`Gap`].
//! * **Overload** — when the sustained trigger rate would fill a bank
//!   faster than the drain budget can keep up with, the supervisor
//!   steps down an EE-PAL tag-mask ladder ([`TagMaskLevel`]): all tags
//!   → hot entry/exit pairs masked → context-switch-`!` tags only.
//!   This is the paper's PAL address decode reprogrammed on the fly;
//!   masking happens *before* the board, exactly like narrowing the
//!   decoded tag range in the EE-PAL.  Pressure subsiding steps the
//!   mask back up.
//! * **Transport loss** — the RAM-carry/upload hop is a fallible
//!   [`Transport`] wrapped in bounded retry with exponential backoff +
//!   seeded jitter and a circuit breaker; while the breaker is open,
//!   full banks go to a bounded spill shelf instead of blocking the
//!   armed board, and are re-uploaded when the transport recovers.
//!
//! Everything is driven from trigger reads with simulated timestamps —
//! no wall-clock threads — so a supervised run at a fixed seed is
//! bit-reproducible.  [`Coverage`] is a field-wise monoid, mirroring
//! the analysis side's `Anomalies`, so stitched batch/parallel/
//! streaming reconstructions carry identical coverage accounting.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use hwprof_machine::EpromTap;
use hwprof_telemetry::{Counter, Gauge, Histo, Registry, SpanLog, SpanName, SpanTrack};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::board::Profiler;
use crate::record::RawRecord;
use crate::recorder::SessionSink;

/// The EE-PAL degradation ladder, most to least permissive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TagMaskLevel {
    /// The PAL decodes every assigned tag.
    #[default]
    All,
    /// Entry/exit pairs of the hottest functions are masked out.
    HotMasked,
    /// Only context-switch (`!`) tags pass — enough to keep the
    /// process timeline while shedding almost all trigger load.
    SwitchOnly,
}

impl TagMaskLevel {
    /// Index into per-level accounting arrays.
    pub fn idx(self) -> usize {
        match self {
            TagMaskLevel::All => 0,
            TagMaskLevel::HotMasked => 1,
            TagMaskLevel::SwitchOnly => 2,
        }
    }

    /// One step less permissive (saturating).
    pub fn down(self) -> Self {
        match self {
            TagMaskLevel::All => TagMaskLevel::HotMasked,
            _ => TagMaskLevel::SwitchOnly,
        }
    }

    /// One step more permissive (saturating).
    pub fn up(self) -> Self {
        match self {
            TagMaskLevel::SwitchOnly => TagMaskLevel::HotMasked,
            _ => TagMaskLevel::All,
        }
    }
}

/// The reprogrammable EE-PAL address decode: which trigger tags reach
/// the board at each [`TagMaskLevel`].
///
/// Tag sets hold raw tag values (entry *and* exit; exit = entry + 1 per
/// the paper's two-tags-per-function scheme).
#[derive(Debug, Clone, Default)]
pub struct TagMask {
    cswitch: HashSet<u16>,
    hot: HashSet<u16>,
}

impl TagMask {
    /// Builds a mask from the context-switch entry tags (`!` lines in
    /// the tag file); exit tags are derived as entry + 1.
    pub fn new(cswitch_entry_tags: impl IntoIterator<Item = u16>) -> Self {
        let mut cswitch = HashSet::new();
        for t in cswitch_entry_tags {
            cswitch.insert(t);
            cswitch.insert(t | 1);
        }
        TagMask {
            cswitch,
            hot: HashSet::new(),
        }
    }

    /// Pins the hot set to these entry tags (exit derived as entry + 1),
    /// overriding automatic hot detection.
    pub fn set_hot(&mut self, hot_entry_tags: impl IntoIterator<Item = u16>) {
        self.hot.clear();
        for t in hot_entry_tags {
            self.hot.insert(t);
            self.hot.insert(t | 1);
        }
    }

    /// True if the hot set has been populated (pinned or derived).
    pub fn has_hot(&self) -> bool {
        !self.hot.is_empty()
    }

    /// Does the PAL pass this tag through to the board at `level`?
    pub fn admits(&self, level: TagMaskLevel, tag: u16) -> bool {
        match level {
            TagMaskLevel::All => true,
            TagMaskLevel::HotMasked => !self.hot.contains(&tag),
            TagMaskLevel::SwitchOnly => self.cswitch.contains(&tag),
        }
    }

    /// Applies the mask to a record stream as a pure filter — the exact
    /// effect of running the same stream through the PAL at `level`.
    pub fn filter(&self, level: TagMaskLevel, records: &[RawRecord]) -> Vec<RawRecord> {
        records
            .iter()
            .filter(|r| self.admits(level, r.tag))
            .copied()
            .collect()
    }

    /// Derives the hot set from a drained bank: the `top` most frequent
    /// entry/exit tag pairs that are not context-switch tags.
    pub fn derive_hot(&mut self, records: &[RawRecord], top: usize) {
        let mut counts: HashMap<u16, u64> = HashMap::new();
        for r in records {
            let base = r.tag & !1;
            if self.cswitch.contains(&base) {
                continue;
            }
            *counts.entry(base).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u16, u64)> = counts.into_iter().collect();
        // Count first, then tag, so ties break deterministically.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.hot.clear();
        for (base, _) in ranked.into_iter().take(top) {
            self.hot.insert(base);
            self.hot.insert(base | 1);
        }
    }
}

/// The upload hop failed for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportError;

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport unavailable")
    }
}

impl std::error::Error for TransportError {}

/// The RAM-carry/upload hop from the board to the analysis host.
///
/// One call is one attempt to deliver one full bank; the supervisor
/// wraps it in retry, backoff and a circuit breaker.
pub trait Transport: Send {
    /// Attempts to deliver bank `index`'s records to the host.
    fn upload(&mut self, index: u64, records: &[RawRecord]) -> Result<(), TransportError>;
}

/// A transport that always succeeds (the host is on the desk next to
/// the board).  Delivery bookkeeping lives in [`Coverage`].
#[derive(Debug, Default)]
pub struct MemoryTransport;

impl MemoryTransport {
    /// An always-available transport.
    pub fn new() -> Self {
        MemoryTransport
    }
}

impl Transport for MemoryTransport {
    fn upload(&mut self, _index: u64, _records: &[RawRecord]) -> Result<(), TransportError> {
        Ok(())
    }
}

impl Transport for std::sync::mpsc::Sender<(u64, Vec<RawRecord>)> {
    fn upload(&mut self, index: u64, records: &[RawRecord]) -> Result<(), TransportError> {
        self.send((index, records.to_vec()))
            .map_err(|_| TransportError)
    }
}

/// A [`Transport`] decorator with deterministic, seeded failures —
/// per-attempt failure probability plus an optional hard outage over an
/// attempt-index range (for exercising the breaker).
pub struct FlakyTransport<T> {
    inner: T,
    fail_ppm: u32,
    /// Attempt indices in `[start, end)` always fail.
    outage: Option<(u64, u64)>,
    attempts: u64,
    rng: StdRng,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner`; each attempt fails with probability
    /// `fail_ppm` / 1e6 under the seeded RNG.
    pub fn new(inner: T, fail_ppm: u32, seed: u64) -> Self {
        FlakyTransport {
            inner,
            fail_ppm,
            outage: None,
            attempts: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Additionally fails every attempt whose index falls in
    /// `[start, end)` — a deterministic hard outage.
    pub fn with_outage(mut self, start: u64, end: u64) -> Self {
        self.outage = Some((start, end));
        self
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn upload(&mut self, index: u64, records: &[RawRecord]) -> Result<(), TransportError> {
        let attempt = self.attempts;
        self.attempts += 1;
        if let Some((start, end)) = self.outage {
            if attempt >= start && attempt < end {
                return Err(TransportError);
            }
        }
        if self.fail_ppm > 0 && self.rng.gen_range(0u32..1_000_000) < self.fail_ppm {
            return Err(TransportError);
        }
        self.inner.upload(index, records)
    }
}

/// Bounded retry with exponential backoff and seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per bank (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling.
    pub max_backoff_us: u64,
    /// Up to this fraction (in ppm) of the backoff is added as jitter.
    pub jitter_ppm: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 5_000,
            max_backoff_us: 80_000,
            jitter_ppm: 250_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based), jittered.
    fn backoff_us(&self, retry: u32, rng: &mut StdRng) -> u64 {
        let exp = retry.saturating_sub(1).min(32);
        let base = self
            .base_backoff_us
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_us);
        let jitter = if self.jitter_ppm > 0 {
            base * u64::from(rng.gen_range(0u32..self.jitter_ppm)) / 1_000_000
        } else {
            0
        };
        base + jitter
    }
}

/// Every knob of the supervisor, with production-shaped defaults.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Simulated time one bank swap keeps the board dark (pulling the
    /// RAM, seating an empty one, re-arming).
    pub drain_budget_us: u64,
    /// Drain proactively at this fill level; `None` drains only when
    /// the RAM is completely full (where the stock board overflows).
    pub drain_fill: Option<usize>,
    /// Force a drain once a session spans this long, so the ladder is
    /// re-evaluated even when the masked trigger rate is tiny.
    pub max_session_us: u64,
    /// Upload retry schedule.
    pub retry: RetryPolicy,
    /// After a bank exhausts its retries, skip upload attempts for this
    /// long (simulated) and shelve banks instead.
    pub breaker_cooldown_us: u64,
    /// How many undelivered banks the spill shelf holds before the
    /// newest bank is lost outright.
    pub spill_banks: usize,
    /// Enables the tag-mask degradation ladder.
    pub ladder: bool,
    /// Step the mask down when the unmasked trigger stream would fill a
    /// bank in less than this.
    pub downgrade_fill_us: u64,
    /// Step the mask back up when it would take longer than this.
    pub upgrade_fill_us: u64,
    /// Hot pairs the automatic detector masks at `HotMasked`.
    pub auto_hot_top: usize,
    /// Function names to pin as the hot set (resolved by the harness);
    /// empty means derive automatically from the overflowing bank.
    pub hot_functions: Vec<String>,
    /// Failure probability the default seeded transport injects.
    pub transport_fail_ppm: u32,
    /// Minimum acceptable coverage (ppm of the timeline); 0 disables
    /// the check.  Enforced by the harness, not the supervisor.
    pub min_coverage_ppm: u32,
    /// Seed for backoff jitter (and the default flaky transport).
    pub seed: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            drain_budget_us: 20_000,
            drain_fill: None,
            max_session_us: 2_000_000,
            retry: RetryPolicy::default(),
            breaker_cooldown_us: 250_000,
            spill_banks: 4,
            ladder: true,
            downgrade_fill_us: 200_000,
            upgrade_fill_us: 800_000,
            auto_hot_top: 4,
            hot_functions: Vec::new(),
            transport_fail_ppm: 0,
            min_coverage_ppm: 900_000,
            seed: 0x1993_0617,
        }
    }
}

/// Why a stretch of the timeline went dark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapCause {
    /// The RAM filled completely — where the stock board overflows.
    Overflow,
    /// A proactive swap (fill threshold or session-length cap).
    Drain,
    /// A captured bank was lost: the spill shelf was full and the
    /// transport down, so its span is retroactively dark.
    BankLost,
}

/// A dark window: the board stored nothing in `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gap {
    /// First dark microsecond.
    pub start_us: u64,
    /// First covered microsecond after the gap.
    pub end_us: u64,
    /// What caused it.
    pub cause: GapCause,
}

impl Gap {
    /// Dark time in microseconds.
    pub fn span_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One delivered bank: a capture session with its timeline span and the
/// mask level the PAL ran at while it recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedSession {
    /// Drain order (spilled banks deliver late but keep their index).
    pub index: u64,
    /// First covered microsecond.
    pub start_us: u64,
    /// End of the span (exclusive).
    pub end_us: u64,
    /// Mask level while this bank recorded.
    pub level: TagMaskLevel,
    /// The bank's records.
    pub records: Vec<RawRecord>,
}

impl SupervisedSession {
    /// Covered time in microseconds.
    pub fn span_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Field-wise coverage accounting for a supervised run — a monoid like
/// the analysis side's anomaly counters: `merge` is commutative and
/// associative field-by-field, so batch/parallel/streaming stitches
/// agree bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Full supervised timeline (first to last trigger), microseconds.
    pub timeline_us: u64,
    /// Time the board was armed and storing.
    pub covered_us: u64,
    /// Time inside dark windows (including lost banks).
    pub gap_us: u64,
    /// Dark-window count.
    pub gaps: u64,
    /// Gaps whose bank filled completely (stock-board overflow points).
    pub overflow_gaps: u64,
    /// Covered time per mask level (`All`, `HotMasked`, `SwitchOnly`).
    pub level_us: [u64; 3],
    /// Trigger reads the EE-PAL masked out.
    pub masked_events: u64,
    /// Ladder steps down.
    pub mask_downgrades: u64,
    /// Ladder steps back up.
    pub mask_upgrades: u64,
    /// Upload retries performed.
    pub retries: u64,
    /// Upload attempts that failed.
    pub transport_failures: u64,
    /// Times the circuit breaker opened.
    pub breaker_trips: u64,
    /// Captured banks lost outright (spill full, transport down).
    pub banks_lost: u64,
    /// Trigger reads that fired inside dark windows.
    pub missed_in_gaps: u64,
}

impl Coverage {
    /// The identity element.
    pub fn empty() -> Self {
        Coverage::default()
    }

    /// Field-wise merge (sums).
    pub fn merge(&mut self, other: &Coverage) {
        self.timeline_us += other.timeline_us;
        self.covered_us += other.covered_us;
        self.gap_us += other.gap_us;
        self.gaps += other.gaps;
        self.overflow_gaps += other.overflow_gaps;
        for (a, b) in self.level_us.iter_mut().zip(other.level_us.iter()) {
            *a += b;
        }
        self.masked_events += other.masked_events;
        self.mask_downgrades += other.mask_downgrades;
        self.mask_upgrades += other.mask_upgrades;
        self.retries += other.retries;
        self.transport_failures += other.transport_failures;
        self.breaker_trips += other.breaker_trips;
        self.banks_lost += other.banks_lost;
        self.missed_in_gaps += other.missed_in_gaps;
    }

    /// Covered fraction of the timeline; an empty timeline counts as
    /// fully covered.
    pub fn fraction(&self) -> f64 {
        if self.timeline_us == 0 {
            1.0
        } else {
            self.covered_us as f64 / self.timeline_us as f64
        }
    }

    /// True when the run never went dark and nothing was masked, lost
    /// or retried.
    pub fn is_full(&self) -> bool {
        self.gap_us == 0
            && self.gaps == 0
            && self.masked_events == 0
            && self.mask_downgrades == 0
            && self.retries == 0
            && self.transport_failures == 0
            && self.banks_lost == 0
            && self.missed_in_gaps == 0
    }

    /// Report lines for the "Coverage" block.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "timeline {} us, covered {:.2}% ({} gap{}, {} us dark)",
            self.timeline_us,
            self.fraction() * 100.0,
            self.gaps,
            if self.gaps == 1 { "" } else { "s" },
            self.gap_us,
        ));
        if self.overflow_gaps > 0 || self.missed_in_gaps > 0 {
            out.push(format!(
                "{} overflow point{}, {} trigger{} fired while dark",
                self.overflow_gaps,
                if self.overflow_gaps == 1 { "" } else { "s" },
                self.missed_in_gaps,
                if self.missed_in_gaps == 1 { "" } else { "s" },
            ));
        }
        if self.mask_downgrades > 0 || self.mask_upgrades > 0 || self.masked_events > 0 {
            out.push(format!(
                "mask ladder: {} down, {} up, {} event{} masked; level time {} / {} / {} us",
                self.mask_downgrades,
                self.mask_upgrades,
                self.masked_events,
                if self.masked_events == 1 { "" } else { "s" },
                self.level_us[0],
                self.level_us[1],
                self.level_us[2],
            ));
        }
        if self.retries > 0
            || self.transport_failures > 0
            || self.breaker_trips > 0
            || self.banks_lost > 0
        {
            out.push(format!(
                "transport: {} retr{}, {} failure{}, {} breaker trip{}, {} bank{} lost",
                self.retries,
                if self.retries == 1 { "y" } else { "ies" },
                self.transport_failures,
                if self.transport_failures == 1 {
                    ""
                } else {
                    "s"
                },
                self.breaker_trips,
                if self.breaker_trips == 1 { "" } else { "s" },
                self.banks_lost,
                if self.banks_lost == 1 { "" } else { "s" },
            ));
        }
        out
    }
}

impl std::fmt::Display for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe().join("; "))
    }
}

/// The completed output of one supervised capture.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// Delivered sessions in drain order.
    pub sessions: Vec<SupervisedSession>,
    /// Dark windows in timeline order.
    pub gaps: Vec<Gap>,
    /// Full coverage accounting; `covered_us + gap_us == timeline_us`
    /// exactly, by construction.
    pub coverage: Coverage,
    /// Mask level when the run ended.
    pub final_level: TagMaskLevel,
    /// The hot set the mask ended with (raw tags, sorted) — what
    /// `HotMasked` sessions filtered out, for per-function visibility
    /// classification during stitching.
    pub hot_tags: Vec<u16>,
}

impl SupervisedRun {
    /// Total events across all delivered sessions.
    pub fn events(&self) -> usize {
        self.sessions.iter().map(|s| s.records.len()).sum()
    }
}

/// Telemetry handles for the supervisor and its transport stack.
///
/// Counters are incremented at the *same* code sites as the
/// corresponding [`Coverage`] ledger fields (gap pushes go through one
/// helper), so after [`CaptureSupervisor::finish`] the snapshot and
/// the ledger agree exactly — the invariant `HealthReport` checks.
struct SupMetrics {
    rearms: Counter,
    sessions: Counter,
    masked_events: Counter,
    missed_in_gaps: Counter,
    mask_level: Gauge,
    mask_downgrades: Counter,
    mask_upgrades: Counter,
    gaps: Counter,
    overflow_gaps: Counter,
    gap_us_overflow: Counter,
    gap_us_drain: Counter,
    gap_us_bank_lost: Counter,
    gap_width_us: Histo,
    spill_depth: Gauge,
    covered_us: Gauge,
    timeline_us: Gauge,
    level_us: [Gauge; 3],
    attempts: Counter,
    failures: Counter,
    retries: Counter,
    backoff_us: Histo,
    breaker_trips: Counter,
    breaker_open: Gauge,
    banks_lost: Counter,
}

impl SupMetrics {
    fn new(reg: &Registry) -> Self {
        SupMetrics {
            rearms: reg.counter("sup.rearms"),
            sessions: reg.counter("sup.sessions"),
            masked_events: reg.counter("sup.masked_events"),
            missed_in_gaps: reg.counter("sup.missed_in_gaps"),
            mask_level: reg.gauge("sup.mask.level"),
            mask_downgrades: reg.counter("sup.mask.downgrades"),
            mask_upgrades: reg.counter("sup.mask.upgrades"),
            gaps: reg.counter("sup.gaps"),
            overflow_gaps: reg.counter("sup.overflow_gaps"),
            gap_us_overflow: reg.counter("sup.gap_us.overflow"),
            gap_us_drain: reg.counter("sup.gap_us.drain"),
            gap_us_bank_lost: reg.counter("sup.gap_us.bank_lost"),
            gap_width_us: reg.histo("sup.gap_width_us"),
            spill_depth: reg.gauge("sup.spill.depth"),
            covered_us: reg.gauge("sup.covered_us"),
            timeline_us: reg.gauge("sup.timeline_us"),
            level_us: [
                reg.gauge("sup.level_us.all"),
                reg.gauge("sup.level_us.hot_masked"),
                reg.gauge("sup.level_us.switch_only"),
            ],
            attempts: reg.counter("transport.attempts"),
            failures: reg.counter("transport.failures"),
            retries: reg.counter("transport.retries"),
            backoff_us: reg.histo("transport.backoff_us"),
            breaker_trips: reg.counter("transport.breaker.trips"),
            breaker_open: reg.gauge("transport.breaker.open"),
            banks_lost: reg.counter("transport.banks_lost"),
        }
    }
}

/// An armed-but-idle covered span with no session of its own.
struct IdleSpan {
    start_us: u64,
    end_us: u64,
    level: TagMaskLevel,
}

struct SupervisorState {
    board: Profiler,
    policy: SupervisorPolicy,
    mask: TagMask,
    level: TagMaskLevel,
    transport: Box<dyn Transport>,
    rng: StdRng,
    // Timeline.
    started: Option<u64>,
    last_seen: u64,
    session_start: u64,
    /// Raw trigger reads (masked included) since the session started —
    /// the unmasked fill-rate signal the ladder decisions use.
    session_triggers: u64,
    dark_until: Option<u64>,
    gap_start: u64,
    gap_cause: GapCause,
    // Breaker.
    breaker_open_until: Option<u64>,
    spill: VecDeque<SupervisedSession>,
    next_bank: u64,
    // Output.
    sessions: Vec<SupervisedSession>,
    gaps: Vec<Gap>,
    idle: Vec<IdleSpan>,
    cov: Coverage,
    finished: bool,
    /// Live self-metrics; `None` keeps the trigger path atom-free.
    metrics: Option<SupMetrics>,
    /// Span journal for the unified timeline export; purely
    /// observational, so the supervised machine is bit-identical with
    /// or without it.
    journal: Option<SpanLog>,
    /// Live subscriber (the flight recorder); like the journal it is
    /// purely observational — it sees each session/gap at the single
    /// sites below and never influences the capture machine.
    sink: Option<Box<dyn SessionSink>>,
}

/// Stable `arg` encoding for dark-window spans in the journal.
fn cause_arg(c: GapCause) -> u64 {
    match c {
        GapCause::Overflow => 0,
        GapCause::Drain => 1,
        GapCause::BankLost => 2,
    }
}

impl SupervisorState {
    fn bank_full_at(&self) -> usize {
        let cap = self.board.capacity();
        match self.policy.drain_fill {
            Some(n) => n.clamp(1, cap),
            None => cap,
        }
    }

    /// The single gap-recording site: every dark window — swap close,
    /// lost bank, end-of-run clip — lands here, so the ledger's cause
    /// counts and the telemetry counters can never drift apart.
    fn push_gap(&mut self, gap: Gap) {
        if gap.cause == GapCause::Overflow {
            self.cov.overflow_gaps += 1;
        }
        if let Some(m) = &self.metrics {
            m.gaps.inc();
            m.gap_width_us.observe(gap.span_us());
            match gap.cause {
                GapCause::Overflow => {
                    m.overflow_gaps.inc();
                    m.gap_us_overflow.add(gap.span_us());
                }
                GapCause::Drain => m.gap_us_drain.add(gap.span_us()),
                GapCause::BankLost => m.gap_us_bank_lost.add(gap.span_us()),
            }
        }
        if let Some(j) = &self.journal {
            // One dark slice per gap, id = gap ordinal, arg = cause.
            let id = self.gaps.len() as u64;
            j.begin(
                SpanTrack::Supervisor,
                SpanName::Dark,
                gap.start_us,
                id,
                cause_arg(gap.cause),
            );
            j.end(
                SpanTrack::Supervisor,
                SpanName::Dark,
                gap.end_us,
                id,
                cause_arg(gap.cause),
            );
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.gap(&gap);
        }
        self.gaps.push(gap);
    }

    /// The single delivered-session site, mirroring `push_gap`.
    fn deliver(&mut self, session: SupervisedSession) {
        if let Some(m) = &self.metrics {
            m.sessions.inc();
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.session(&session);
        }
        self.sessions.push(session);
    }

    /// One upload round for a bank: first try plus bounded backoff
    /// retries.  `now` is only a journal timestamp (the round's spans
    /// land at `now` + accumulated backoff).  Returns
    /// `(delivered, dark_time_spent)`.
    fn try_deliver(&mut self, now: u64, index: u64, records: &[RawRecord]) -> (bool, u64) {
        let mut dark = 0u64;
        let attempts = self.policy.retry.max_attempts.max(1);
        if let Some(j) = &self.journal {
            j.begin(SpanTrack::Transport, SpanName::Upload, now, index, 0);
        }
        let mut delivered = false;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.policy.retry.backoff_us(attempt, &mut self.rng);
                dark += backoff;
                self.cov.retries += 1;
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                    m.backoff_us.observe(backoff);
                }
                if let Some(j) = &self.journal {
                    j.instant(
                        SpanTrack::Transport,
                        SpanName::Retry,
                        now + dark,
                        index,
                        u64::from(attempt),
                    );
                }
            }
            if let Some(m) = &self.metrics {
                m.attempts.inc();
            }
            match self.transport.upload(index, records) {
                Ok(()) => {
                    delivered = true;
                    break;
                }
                Err(TransportError) => {
                    self.cov.transport_failures += 1;
                    if let Some(m) = &self.metrics {
                        m.failures.inc();
                    }
                }
            }
        }
        if let Some(j) = &self.journal {
            j.end(
                SpanTrack::Transport,
                SpanName::Upload,
                now + dark,
                index,
                u64::from(delivered),
            );
        }
        (delivered, dark)
    }

    /// Re-uploads shelved banks after a successful delivery, oldest
    /// first, one attempt each — stopping at the first failure.  `now`
    /// is only a journal timestamp.
    fn flush_spill_opportunistic(&mut self, now: u64) {
        while let Some(front) = self.spill.front() {
            let (index, records) = (front.index, front.records.clone());
            if let Some(m) = &self.metrics {
                m.attempts.inc();
            }
            match self.transport.upload(index, &records) {
                Ok(()) => {
                    if let Some(j) = &self.journal {
                        j.instant(SpanTrack::Transport, SpanName::Flush, now, index, 1);
                    }
                    let s = self.spill.pop_front().expect("front exists");
                    self.deliver(s);
                }
                Err(TransportError) => {
                    self.cov.transport_failures += 1;
                    if let Some(m) = &self.metrics {
                        m.failures.inc();
                    }
                    if let Some(j) = &self.journal {
                        j.instant(SpanTrack::Transport, SpanName::Flush, now, index, 0);
                    }
                    break;
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.spill_depth.set(self.spill.len() as u64);
        }
    }

    /// Pulls the current bank, uploads (or shelves) it, opens a dark
    /// window, and re-evaluates the mask ladder.
    fn drain(&mut self, now: u64, overflow: bool) {
        let h = self.board.health();
        // A supervised board should never have been dark on its own;
        // if it was (someone flipped the switch underneath us), the
        // missed triggers are accounted like dark-window misses.
        self.cov.missed_in_gaps += h.missed_while_off;
        if let Some(m) = &self.metrics {
            m.missed_in_gaps.add(h.missed_while_off);
        }
        let records = self.board.records();
        self.board.set_switch(false);
        let captured_level = self.level;
        let session = SupervisedSession {
            index: self.next_bank,
            start_us: self.session_start,
            end_us: now,
            level: captured_level,
            records,
        };
        self.next_bank += 1;
        if let Some(j) = &self.journal {
            // Close the armed-bank span opened at arm/re-arm time.
            j.end(
                SpanTrack::Supervisor,
                SpanName::Bank,
                now,
                session.index,
                session.records.len() as u64,
            );
        }

        // Ladder: how long would the *unmasked* trigger stream take to
        // fill one bank?  Level-invariant, so no oscillation from the
        // masking itself.
        if self.policy.ladder && self.session_triggers > 0 {
            let span = now.saturating_sub(self.session_start);
            let fill_est =
                span.saturating_mul(self.board.capacity() as u64) / self.session_triggers;
            if fill_est < self.policy.downgrade_fill_us && self.level != TagMaskLevel::SwitchOnly {
                if self.level == TagMaskLevel::All
                    && self.mask.hot.is_empty()
                    && self.policy.hot_functions.is_empty()
                {
                    self.mask
                        .derive_hot(&session.records, self.policy.auto_hot_top);
                }
                self.level = self.level.down();
                self.cov.mask_downgrades += 1;
                if let Some(m) = &self.metrics {
                    m.mask_downgrades.inc();
                    m.mask_level.set(self.level.idx() as u64);
                }
                if let Some(j) = &self.journal {
                    j.instant(
                        SpanTrack::Supervisor,
                        SpanName::MaskDown,
                        now,
                        self.level.idx() as u64,
                        fill_est,
                    );
                }
            } else if fill_est > self.policy.upgrade_fill_us && self.level != TagMaskLevel::All {
                self.level = self.level.up();
                self.cov.mask_upgrades += 1;
                if let Some(m) = &self.metrics {
                    m.mask_upgrades.inc();
                    m.mask_level.set(self.level.idx() as u64);
                }
                if let Some(j) = &self.journal {
                    j.instant(
                        SpanTrack::Supervisor,
                        SpanName::MaskUp,
                        now,
                        self.level.idx() as u64,
                        fill_est,
                    );
                }
            }
        }

        // Upload (or shelve) the bank; backoff time extends the dark
        // window, the breaker caps how much.
        let mut dark = self.policy.drain_budget_us;
        let breaker_open = self.breaker_open_until.is_some_and(|t| now < t);
        let delivered = if breaker_open {
            false
        } else {
            let (ok, backoff) = self.try_deliver(now, session.index, &session.records);
            dark += backoff;
            if ok {
                self.breaker_open_until = None;
                if let Some(m) = &self.metrics {
                    m.breaker_open.set(0);
                }
                true
            } else {
                self.cov.breaker_trips += 1;
                self.breaker_open_until = Some(now + dark + self.policy.breaker_cooldown_us);
                if let Some(m) = &self.metrics {
                    m.breaker_trips.inc();
                    m.breaker_open.set(1);
                }
                if let Some(j) = &self.journal {
                    j.instant(
                        SpanTrack::Transport,
                        SpanName::Breaker,
                        now + dark,
                        session.index,
                        self.policy.breaker_cooldown_us,
                    );
                }
                false
            }
        };
        if delivered {
            self.deliver(session);
            self.flush_spill_opportunistic(now);
        } else if self.spill.len() < self.policy.spill_banks {
            if let Some(j) = &self.journal {
                j.instant(
                    SpanTrack::Supervisor,
                    SpanName::Spill,
                    now,
                    session.index,
                    self.spill.len() as u64 + 1,
                );
            }
            self.spill.push_back(session);
            if let Some(m) = &self.metrics {
                m.spill_depth.set(self.spill.len() as u64);
            }
        } else {
            // Shelf full and transport down: the newest bank is lost
            // and its span becomes dark after the fact.
            self.cov.banks_lost += 1;
            if let Some(m) = &self.metrics {
                m.banks_lost.inc();
            }
            if let Some(j) = &self.journal {
                j.instant(
                    SpanTrack::Supervisor,
                    SpanName::BankLost,
                    now,
                    session.index,
                    session.records.len() as u64,
                );
            }
            self.push_gap(Gap {
                start_us: session.start_us,
                end_us: session.end_us,
                cause: GapCause::BankLost,
            });
        }

        self.gap_start = now;
        self.gap_cause = if overflow {
            GapCause::Overflow
        } else {
            GapCause::Drain
        };
        self.dark_until = Some(now + dark);
    }

    /// Closes the run: final bank, spill flush, coverage totals.
    fn finish(&mut self) -> SupervisedRun {
        if !self.finished {
            self.finished = true;
            let end = self.last_seen;
            match self.dark_until.take() {
                Some(until) => {
                    // The run ended inside (or exactly at the edge of)
                    // a dark window; clip it to the timeline.
                    let gap_end = until.min(end);
                    if gap_end > self.gap_start {
                        self.push_gap(Gap {
                            start_us: self.gap_start,
                            end_us: gap_end,
                            cause: self.gap_cause,
                        });
                    }
                    self.board.set_switch(false);
                }
                None => {
                    if self.started.is_some() {
                        let records = self.board.records();
                        self.board.set_switch(false);
                        if records.is_empty() {
                            if let Some(j) = &self.journal {
                                j.end(
                                    SpanTrack::Supervisor,
                                    SpanName::Bank,
                                    end,
                                    self.next_bank,
                                    0,
                                );
                            }
                            if end > self.session_start {
                                self.idle.push(IdleSpan {
                                    start_us: self.session_start,
                                    end_us: end,
                                    level: self.level,
                                });
                            }
                        } else {
                            let session = SupervisedSession {
                                index: self.next_bank,
                                start_us: self.session_start,
                                end_us: end,
                                level: self.level,
                                records,
                            };
                            self.next_bank += 1;
                            if let Some(j) = &self.journal {
                                j.end(
                                    SpanTrack::Supervisor,
                                    SpanName::Bank,
                                    end,
                                    session.index,
                                    session.records.len() as u64,
                                );
                            }
                            let (ok, _) = self.try_deliver(end, session.index, &session.records);
                            if ok {
                                self.deliver(session);
                            } else {
                                self.spill.push_back(session);
                            }
                        }
                    }
                }
            }
            // Final spill flush: each shelved bank gets a full retry
            // round; what still fails is lost.
            while let Some(front) = self.spill.pop_front() {
                let (ok, _) = self.try_deliver(end, front.index, &front.records);
                if ok {
                    self.deliver(front);
                } else {
                    self.cov.banks_lost += 1;
                    if let Some(m) = &self.metrics {
                        m.banks_lost.inc();
                    }
                    if let Some(j) = &self.journal {
                        j.instant(
                            SpanTrack::Supervisor,
                            SpanName::BankLost,
                            end,
                            front.index,
                            front.records.len() as u64,
                        );
                    }
                    self.push_gap(Gap {
                        start_us: front.start_us,
                        end_us: front.end_us,
                        cause: GapCause::BankLost,
                    });
                }
            }
            self.sessions.sort_by_key(|s| s.index);
            self.gaps.sort_by_key(|g| (g.start_us, g.end_us));
            // Coverage totals: every microsecond of the timeline is in
            // exactly one of {delivered session, idle span, gap}.
            let start = self.started.unwrap_or(end);
            self.cov.timeline_us = end.saturating_sub(start);
            self.cov.covered_us = 0;
            self.cov.gap_us = 0;
            for s in &self.sessions {
                self.cov.covered_us += s.span_us();
                self.cov.level_us[s.level.idx()] += s.span_us();
            }
            for i in &self.idle {
                let span = i.end_us.saturating_sub(i.start_us);
                self.cov.covered_us += span;
                self.cov.level_us[i.level.idx()] += span;
            }
            self.cov.gaps = self.gaps.len() as u64;
            for g in &self.gaps {
                self.cov.gap_us += g.span_us();
            }
            // Final gauges: the live handles settle on the ledger's
            // totals, so a post-run snapshot reads like the Coverage
            // block.
            if let Some(m) = &self.metrics {
                m.covered_us.set(self.cov.covered_us);
                m.timeline_us.set(self.cov.timeline_us);
                for (g, us) in m.level_us.iter().zip(self.cov.level_us.iter()) {
                    g.set(*us);
                }
                m.mask_level.set(self.level.idx() as u64);
                m.spill_depth.set(0);
            }
        }
        let mut hot_tags: Vec<u16> = self.mask.hot.iter().copied().collect();
        hot_tags.sort_unstable();
        SupervisedRun {
            sessions: std::mem::take(&mut self.sessions),
            gaps: std::mem::take(&mut self.gaps),
            coverage: self.cov,
            final_level: self.level,
            hot_tags,
        }
    }
}

/// A tireless operator wrapped around a [`Profiler`]: implements
/// [`EpromTap`] so the machine drives it exactly like the bare board,
/// and keeps long captures alive across overflow, overload and
/// transport loss.
///
/// Clones share state, like [`Profiler`] clones share the board: the
/// machine holds one clone as its tap, the harness keeps another to
/// call [`CaptureSupervisor::finish`].
#[derive(Clone)]
pub struct CaptureSupervisor {
    state: Arc<Mutex<SupervisorState>>,
}

impl CaptureSupervisor {
    /// Wraps `board` (a stock single-bank board; any drain sink on it
    /// is ignored by the supervisor's own accounting).
    pub fn new(
        board: Profiler,
        mask: TagMask,
        policy: SupervisorPolicy,
        transport: Box<dyn Transport>,
    ) -> Self {
        let seed = policy.seed;
        CaptureSupervisor {
            state: Arc::new(Mutex::new(SupervisorState {
                board,
                policy,
                mask,
                level: TagMaskLevel::All,
                transport,
                rng: StdRng::seed_from_u64(seed),
                started: None,
                last_seen: 0,
                session_start: 0,
                session_triggers: 0,
                dark_until: None,
                gap_start: 0,
                gap_cause: GapCause::Drain,
                breaker_open_until: None,
                spill: VecDeque::new(),
                next_bank: 0,
                sessions: Vec::new(),
                gaps: Vec::new(),
                idle: Vec::new(),
                cov: Coverage::empty(),
                finished: false,
                metrics: None,
                journal: None,
                sink: None,
            })),
        }
    }

    /// Enables live self-metrics in `reg`: supervisor counters under
    /// `sup.`, retry-stack counters under `transport.`, and the
    /// wrapped board's counters under `board.`.  Counter sites mirror
    /// the [`Coverage`] ledger exactly (see `HealthReport`), so a
    /// post-`finish` snapshot and the ledger provably agree.  Without
    /// this call the trigger path touches no atomics.
    pub fn set_telemetry(&self, reg: &Registry) {
        let mut s = self.state.lock();
        s.board.set_telemetry(reg);
        s.metrics = Some(SupMetrics::new(reg));
    }

    /// Attaches a span journal: armed-bank begin/end pairs, dark-window
    /// slices, re-arm / mask-shift / spill / loss instants, and upload
    /// rounds with their retries all land in `log` with simulated
    /// timestamps (the wrapped board gets the journal too).  Purely
    /// observational: the supervised run is bit-identical with or
    /// without it.
    pub fn set_span_log(&self, log: &SpanLog) {
        let mut s = self.state.lock();
        s.board.set_span_log(log);
        s.journal = Some(log.clone());
    }

    /// Subscribes a live consumer (the flight recorder) to the capture
    /// stream: `sink` sees every delivered session and every gap at the
    /// same single sites that feed the Coverage ledger.  Purely
    /// observational — the supervised run is bit-identical with or
    /// without a sink.  One sink at a time; a second call replaces the
    /// first.
    pub fn set_session_sink(&self, sink: Box<dyn SessionSink>) {
        self.state.lock().sink = Some(sink);
    }

    /// The current mask level.
    pub fn level(&self) -> TagMaskLevel {
        self.state.lock().level
    }

    /// Coverage counters so far (final totals only after `finish`).
    pub fn coverage(&self) -> Coverage {
        self.state.lock().cov
    }

    /// Ends the run: pulls the final partial bank, flushes the spill
    /// shelf with full retry rounds, closes any open dark window, and
    /// returns the completed [`SupervisedRun`].  Idempotent in the
    /// sense that the first call takes the data; later calls return an
    /// empty run with the same coverage totals.
    pub fn finish(&self) -> SupervisedRun {
        self.state.lock().finish()
    }
}

impl EpromTap for CaptureSupervisor {
    fn on_read(&mut self, offset: u16, now_us: u64) {
        let mut s = self.state.lock();
        let st = &mut *s;
        if st.finished {
            return;
        }
        if st.started.is_none() {
            st.started = Some(now_us);
            st.session_start = now_us;
            st.board.clear();
            st.board.set_switch(true);
            if let Some(j) = &st.journal {
                j.begin(
                    SpanTrack::Supervisor,
                    SpanName::Bank,
                    now_us,
                    st.next_bank,
                    0,
                );
            }
        }
        if now_us > st.last_seen {
            st.last_seen = now_us;
        }
        if let Some(until) = st.dark_until {
            if now_us < until {
                // Still swapping RAMs: the trigger fires into an empty
                // socket.
                st.cov.missed_in_gaps += 1;
                if let Some(m) = &st.metrics {
                    m.missed_in_gaps.inc();
                }
                return;
            }
            // Swap done at `until`: close the gap, re-arm.
            st.push_gap(Gap {
                start_us: st.gap_start,
                end_us: until,
                cause: st.gap_cause,
            });
            st.dark_until = None;
            st.board.clear();
            st.board.set_switch(true);
            st.session_start = until;
            st.session_triggers = 0;
            if let Some(m) = &st.metrics {
                m.rearms.inc();
            }
            if let Some(j) = &st.journal {
                j.instant(
                    SpanTrack::Supervisor,
                    SpanName::Rearm,
                    until,
                    st.next_bank,
                    0,
                );
                j.begin(
                    SpanTrack::Supervisor,
                    SpanName::Bank,
                    until,
                    st.next_bank,
                    0,
                );
            }
        }
        st.session_triggers += 1;
        // Session-length cap: force a swap so the ladder re-evaluates
        // even at a trickle.  The triggering read lands in the window.
        if now_us.saturating_sub(st.session_start) >= st.policy.max_session_us {
            st.drain(now_us, false);
            st.cov.missed_in_gaps += 1;
            if let Some(m) = &st.metrics {
                m.missed_in_gaps.inc();
            }
            return;
        }
        if !st.mask.admits(st.level, offset) {
            // The EE-PAL never presents this tag to the board.
            st.cov.masked_events += 1;
            if let Some(m) = &st.metrics {
                m.masked_events.inc();
            }
            return;
        }
        st.board.on_read(offset, now_us);
        let h = st.board.health();
        if h.overflowed || h.stored >= st.bank_full_at() {
            let overflow = h.overflowed || h.stored >= st.board.capacity();
            st.drain(now_us, overflow);
        }
    }

    fn stored(&self) -> usize {
        self.state.lock().board.stored()
    }

    fn overflowed(&self) -> bool {
        self.state.lock().board.overflowed()
    }
}

impl std::fmt::Debug for CaptureSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("CaptureSupervisor")
            .field("level", &s.level)
            .field("sessions", &s.sessions.len())
            .field("gaps", &s.gaps.len())
            .field("spill", &s.spill.len())
            .field("finished", &s.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BoardConfig;

    fn tiny_board(capacity: usize) -> Profiler {
        Profiler::new(BoardConfig {
            capacity,
            time_bits: 24,
        })
    }

    fn policy() -> SupervisorPolicy {
        SupervisorPolicy {
            drain_budget_us: 10,
            ladder: false,
            max_session_us: u64::MAX,
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff_us: 5,
                max_backoff_us: 20,
                jitter_ppm: 0,
            },
            breaker_cooldown_us: 50,
            spill_banks: 2,
            ..SupervisorPolicy::default()
        }
    }

    fn drive(sup: &mut CaptureSupervisor, n: u64, step: u64) {
        for i in 0..n {
            // Alternate entry/exit of tag pair 500/501.
            let tag = if i % 2 == 0 { 500 } else { 501 };
            sup.on_read(tag, 1_000 + i * step);
        }
    }

    #[test]
    fn overflow_rearms_and_accounts_every_microsecond() {
        let mut sup = CaptureSupervisor::new(
            tiny_board(8),
            TagMask::default(),
            policy(),
            Box::new(MemoryTransport::new()),
        );
        drive(&mut sup, 100, 7);
        let run = sup.finish();
        assert!(run.sessions.len() >= 3, "several banks delivered");
        assert!(!run.gaps.is_empty(), "each swap left a gap");
        let c = run.coverage;
        assert_eq!(c.covered_us + c.gap_us, c.timeline_us);
        assert_eq!(c.gaps, run.gaps.len() as u64);
        assert!(c.overflow_gaps > 0, "full banks are overflow points");
        assert!(c.fraction() > 0.5);
        // Sessions and gaps tile the timeline without overlap.
        let mut spans: Vec<(u64, u64)> = run
            .sessions
            .iter()
            .map(|s| (s.start_us, s.end_us))
            .chain(run.gaps.iter().map(|g| (g.start_us, g.end_us)))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlap between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn dark_window_triggers_are_missed_not_stored() {
        let mut sup = CaptureSupervisor::new(
            tiny_board(4),
            TagMask::default(),
            SupervisorPolicy {
                drain_budget_us: 1_000,
                ..policy()
            },
            Box::new(MemoryTransport::new()),
        );
        // Fill one bank in 4 us, then trigger inside the 1000 us swap.
        for i in 0..8u64 {
            sup.on_read(500, 1_000 + i);
        }
        let run = sup.finish();
        assert!(run.coverage.missed_in_gaps > 0);
        assert_eq!(run.events() as u64 + run.coverage.missed_in_gaps, 8);
    }

    #[test]
    fn flaky_transport_spills_then_recovers() {
        let transport = FlakyTransport::new(MemoryTransport::new(), 0, 1).with_outage(0, 4);
        let mut sup = CaptureSupervisor::new(
            tiny_board(4),
            TagMask::default(),
            policy(),
            Box::new(transport),
        );
        drive(&mut sup, 64, 40);
        let run = sup.finish();
        let c = run.coverage;
        assert!(c.transport_failures >= 4, "outage attempts failed");
        assert!(c.retries > 0, "failures were retried");
        assert!(c.breaker_trips > 0, "exhausted retries trip the breaker");
        assert_eq!(c.banks_lost, 0, "spill + recovery saved every bank");
        // Spilled banks come back in index order.
        let idx: Vec<u64> = run.sessions.iter().map(|s| s.index).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted);
        assert_eq!(c.covered_us + c.gap_us, c.timeline_us);
    }

    #[test]
    fn dead_transport_loses_banks_beyond_the_shelf() {
        struct DeadTransport;
        impl Transport for DeadTransport {
            fn upload(&mut self, _: u64, _: &[RawRecord]) -> Result<(), TransportError> {
                Err(TransportError)
            }
        }
        let mut sup = CaptureSupervisor::new(
            tiny_board(4),
            TagMask::default(),
            SupervisorPolicy {
                spill_banks: 1,
                breaker_cooldown_us: 0,
                ..policy()
            },
            Box::new(DeadTransport),
        );
        drive(&mut sup, 120, 30);
        let run = sup.finish();
        let c = run.coverage;
        assert!(c.banks_lost > 0, "shelf overflow loses banks");
        assert!(run.gaps.iter().any(|g| g.cause == GapCause::BankLost));
        assert_eq!(c.covered_us + c.gap_us, c.timeline_us);
        assert!(run.sessions.is_empty(), "nothing ever uploads");
    }

    #[test]
    fn mask_admits_matches_level_semantics() {
        let mut mask = TagMask::new([200u16]);
        mask.set_hot([500u16]);
        assert!(mask.admits(TagMaskLevel::All, 500));
        assert!(mask.admits(TagMaskLevel::All, 9999));
        assert!(!mask.admits(TagMaskLevel::HotMasked, 500));
        assert!(!mask.admits(TagMaskLevel::HotMasked, 501));
        assert!(mask.admits(TagMaskLevel::HotMasked, 502));
        assert!(mask.admits(TagMaskLevel::SwitchOnly, 200));
        assert!(mask.admits(TagMaskLevel::SwitchOnly, 201));
        assert!(!mask.admits(TagMaskLevel::SwitchOnly, 502));
    }

    #[test]
    fn ladder_steps_down_under_pressure_and_back_up() {
        let mut sup = CaptureSupervisor::new(
            tiny_board(8),
            TagMask::new([200u16]),
            SupervisorPolicy {
                ladder: true,
                downgrade_fill_us: 1_000,
                upgrade_fill_us: 2_000,
                auto_hot_top: 1,
                drain_budget_us: 10,
                max_session_us: 2_000,
                ..policy()
            },
            Box::new(MemoryTransport::new()),
        );
        // Phase 1: a hot burst — tag pair 500/501 at 1 us spacing fills
        // the 8-deep bank in 8 us, far under the 1000 us floor.
        let mut t = 1_000u64;
        for i in 0..64u64 {
            let tag = if i % 2 == 0 { 500 } else { 501 };
            sup.on_read(tag, t);
            t += 1;
        }
        assert!(
            sup.level() > TagMaskLevel::All,
            "burst stepped the mask down"
        );
        let down_so_far = sup.coverage().mask_downgrades;
        assert!(down_so_far > 0);
        // Phase 2: pressure subsides — context switches at 500 us
        // spacing; the session cap forces drains that re-evaluate.
        for _ in 0..40u64 {
            sup.on_read(200, t);
            t += 500;
        }
        let run = sup.finish();
        assert!(
            run.coverage.mask_upgrades > 0,
            "quiet phase stepped back up"
        );
        assert_eq!(run.final_level, TagMaskLevel::All);
        assert!(run.coverage.masked_events > 0);
        // Per-level covered time is a partition of covered time.
        let c = run.coverage;
        assert_eq!(c.level_us.iter().sum::<u64>(), c.covered_us);
    }

    #[test]
    fn derive_hot_picks_most_frequent_pair() {
        let mut mask = TagMask::new([200u16]);
        let mut records = Vec::new();
        for i in 0..30u64 {
            records.push(RawRecord::latch(500 + (i % 2) as u16, i));
        }
        for i in 0..5u64 {
            records.push(RawRecord::latch(510, 100 + i));
        }
        for i in 0..50u64 {
            records.push(RawRecord::latch(200 + (i % 2) as u16, 200 + i));
        }
        mask.derive_hot(&records, 1);
        assert!(!mask.admits(TagMaskLevel::HotMasked, 500));
        assert!(!mask.admits(TagMaskLevel::HotMasked, 501));
        assert!(
            mask.admits(TagMaskLevel::HotMasked, 510),
            "cooler pair passes"
        );
        assert!(
            mask.admits(TagMaskLevel::HotMasked, 200),
            "cswitch never hot"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 100,
            max_backoff_us: 350,
            jitter_ppm: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.backoff_us(1, &mut rng), 100);
        assert_eq!(p.backoff_us(2, &mut rng), 200);
        assert_eq!(p.backoff_us(3, &mut rng), 350, "capped");
        let jittered = RetryPolicy {
            jitter_ppm: 500_000,
            ..p
        };
        let b = jittered.backoff_us(1, &mut rng);
        assert!((100..150).contains(&b), "jitter adds at most half: {b}");
    }

    #[test]
    fn same_seed_same_supervised_run() {
        let mk = || {
            let transport = FlakyTransport::new(MemoryTransport::new(), 300_000, 9);
            let mut sup = CaptureSupervisor::new(
                tiny_board(8),
                TagMask::new([200u16]),
                SupervisorPolicy {
                    ladder: true,
                    downgrade_fill_us: 500,
                    upgrade_fill_us: 2_000,
                    ..policy()
                },
                Box::new(transport),
            );
            drive(&mut sup, 300, 13);
            sup.finish()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.gaps, b.gaps);
    }

    #[test]
    fn empty_run_is_fully_covered_nothing() {
        let sup = CaptureSupervisor::new(
            tiny_board(8),
            TagMask::default(),
            policy(),
            Box::new(MemoryTransport::new()),
        );
        let run = sup.finish();
        assert!(run.sessions.is_empty());
        assert!(run.gaps.is_empty());
        assert_eq!(run.coverage.timeline_us, 0);
        assert!((run.coverage.fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn coverage_merge_is_fieldwise() {
        let a = Coverage {
            timeline_us: 10,
            covered_us: 8,
            gap_us: 2,
            gaps: 1,
            level_us: [8, 0, 0],
            retries: 2,
            ..Coverage::empty()
        };
        let b = Coverage {
            timeline_us: 5,
            covered_us: 5,
            level_us: [0, 5, 0],
            banks_lost: 1,
            ..Coverage::empty()
        };
        let mut m = Coverage::empty();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.timeline_us, 15);
        assert_eq!(m.covered_us, 13);
        assert_eq!(m.level_us, [8, 5, 0]);
        assert_eq!(m.retries, 2);
        assert_eq!(m.banks_lost, 1);
        let mut n = Coverage::empty();
        n.merge(&b);
        n.merge(&a);
        assert_eq!(m, n, "merge commutes");
    }
}
