//! Joins live telemetry with the [`Coverage`] ledger and proves they
//! agree.
//!
//! The supervisor increments its telemetry counters at the same code
//! sites as the ledger fields (all gap pushes go through one helper),
//! so after `finish()` the two accountings must be *exactly* equal —
//! `sup.gap_us.*` sums to the ledger's dark time, `transport.*`
//! matches the retry stack's counts, and the gap-width histogram's
//! count and sum are the ledger's gap count and dark time.
//! [`HealthReport::discrepancies`] checks every pairing; an empty list
//! is the proof, and the `Display` form prints the joined table an
//! operator would read.

use hwprof_telemetry::Snapshot;

use crate::supervisor::Coverage;

/// A post-run join of the telemetry snapshot and the coverage ledger.
#[derive(Debug, Clone)]
pub struct HealthReport {
    snapshot: Snapshot,
    coverage: Coverage,
}

/// One metric↔ledger pairing the report verifies and prints.
struct Pairing {
    label: &'static str,
    metric: &'static str,
    live: Option<u64>,
    ledger: u64,
}

impl HealthReport {
    /// Builds the report from a post-`finish` snapshot and the run's
    /// final coverage totals.
    pub fn new(snapshot: Snapshot, coverage: Coverage) -> Self {
        HealthReport { snapshot, coverage }
    }

    /// The snapshot half of the join.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The ledger half of the join.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    fn pairings(&self) -> Vec<Pairing> {
        let c = &self.coverage;
        let gap_us_sum = [
            "sup.gap_us.overflow",
            "sup.gap_us.drain",
            "sup.gap_us.bank_lost",
        ]
        .iter()
        .try_fold(0u64, |acc, n| Some(acc + self.snapshot.value(n)?));
        vec![
            Pairing {
                label: "timeline us",
                metric: "sup.timeline_us",
                live: self.snapshot.value("sup.timeline_us"),
                ledger: c.timeline_us,
            },
            Pairing {
                label: "covered us",
                metric: "sup.covered_us",
                live: self.snapshot.value("sup.covered_us"),
                ledger: c.covered_us,
            },
            Pairing {
                label: "dark us (by cause)",
                metric: "sup.gap_us.*",
                live: gap_us_sum,
                ledger: c.gap_us,
            },
            Pairing {
                label: "dark us (histogram)",
                metric: "sup.gap_width_us",
                live: self.snapshot.histo_sum("sup.gap_width_us"),
                ledger: c.gap_us,
            },
            Pairing {
                label: "gaps",
                metric: "sup.gaps",
                live: self.snapshot.value("sup.gaps"),
                ledger: c.gaps,
            },
            Pairing {
                label: "overflow gaps",
                metric: "sup.overflow_gaps",
                live: self.snapshot.value("sup.overflow_gaps"),
                ledger: c.overflow_gaps,
            },
            Pairing {
                label: "level us: all",
                metric: "sup.level_us.all",
                live: self.snapshot.value("sup.level_us.all"),
                ledger: c.level_us[0],
            },
            Pairing {
                label: "level us: hot-masked",
                metric: "sup.level_us.hot_masked",
                live: self.snapshot.value("sup.level_us.hot_masked"),
                ledger: c.level_us[1],
            },
            Pairing {
                label: "level us: switch-only",
                metric: "sup.level_us.switch_only",
                live: self.snapshot.value("sup.level_us.switch_only"),
                ledger: c.level_us[2],
            },
            Pairing {
                label: "masked events",
                metric: "sup.masked_events",
                live: self.snapshot.value("sup.masked_events"),
                ledger: c.masked_events,
            },
            Pairing {
                label: "mask downgrades",
                metric: "sup.mask.downgrades",
                live: self.snapshot.value("sup.mask.downgrades"),
                ledger: c.mask_downgrades,
            },
            Pairing {
                label: "mask upgrades",
                metric: "sup.mask.upgrades",
                live: self.snapshot.value("sup.mask.upgrades"),
                ledger: c.mask_upgrades,
            },
            Pairing {
                label: "upload retries",
                metric: "transport.retries",
                live: self.snapshot.value("transport.retries"),
                ledger: c.retries,
            },
            Pairing {
                label: "transport failures",
                metric: "transport.failures",
                live: self.snapshot.value("transport.failures"),
                ledger: c.transport_failures,
            },
            Pairing {
                label: "breaker trips",
                metric: "transport.breaker.trips",
                live: self.snapshot.value("transport.breaker.trips"),
                ledger: c.breaker_trips,
            },
            Pairing {
                label: "banks lost",
                metric: "transport.banks_lost",
                live: self.snapshot.value("transport.banks_lost"),
                ledger: c.banks_lost,
            },
            Pairing {
                label: "triggers while dark",
                metric: "sup.missed_in_gaps",
                live: self.snapshot.value("sup.missed_in_gaps"),
                ledger: c.missed_in_gaps,
            },
        ]
    }

    /// Every way the live metrics and the ledger disagree — one line
    /// per mismatch or missing metric.  Empty means the two
    /// accountings are exactly consistent (including the histogram's
    /// count matching the ledger's gap count and `covered + gap ==
    /// timeline`).
    pub fn discrepancies(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in self.pairings() {
            match p.live {
                None => out.push(format!("{} missing from snapshot", p.metric)),
                Some(v) if v != p.ledger => out.push(format!(
                    "{}: metric {} = {v}, ledger = {}",
                    p.label, p.metric, p.ledger
                )),
                Some(_) => {}
            }
        }
        if let Some(n) = self.snapshot.value("sup.gap_width_us") {
            if n != self.coverage.gaps {
                out.push(format!(
                    "gap histogram count = {n}, ledger gaps = {}",
                    self.coverage.gaps
                ));
            }
        }
        let c = &self.coverage;
        if c.covered_us + c.gap_us != c.timeline_us {
            out.push(format!(
                "ledger does not partition: covered {} + gap {} != timeline {}",
                c.covered_us, c.gap_us, c.timeline_us
            ));
        }
        out
    }

    /// True when telemetry and ledger agree exactly.
    pub fn is_consistent(&self) -> bool {
        self.discrepancies().is_empty()
    }

    /// The joined table, one pairing per line, plus any metrics that
    /// have no ledger twin (board counters, queue depths).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "capture health — timeline {} us, covered {:.2}%",
            self.coverage.timeline_us,
            self.coverage.fraction() * 100.0
        );
        let _ = writeln!(out, "  {:<24} {:>12} {:>12}  agree", "", "live", "ledger");
        for p in self.pairings() {
            let (live, mark) = match p.live {
                Some(v) => (v.to_string(), if v == p.ledger { "ok" } else { "MISMATCH" }),
                None => ("-".to_string(), "MISSING"),
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>12}  {}",
                p.label, live, p.ledger, mark
            );
        }
        let paired: std::collections::HashSet<&str> =
            self.pairings().iter().map(|p| p.metric).collect();
        let extras: Vec<String> = self
            .snapshot
            .metrics
            .iter()
            .filter(|(n, _)| !paired.contains(n.as_str()) && n != "sup.gap_width_us")
            .map(|(n, v)| format!("  {:<24} {:>12}", n, v.scalar()))
            .collect();
        if !extras.is_empty() {
            let _ = writeln!(out, "  unpaired metrics:");
            for e in extras {
                let _ = writeln!(out, "{e}");
            }
        }
        out
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// The fleet-level roll-up of [`HealthReport`]: the 17 metric↔ledger
/// pairings checked once per machine *and* once in aggregate.
///
/// A fleet registry keeps every machine's metrics under its own
/// prefix (`m0.`, `m1.`, …); each member report is built from the
/// fleet snapshot's [`strip_prefix`](Snapshot::strip_prefix) slice
/// joined with that machine's ledger, and the aggregate report joins
/// the element-wise [`Snapshot::aggregate`] of those slices with the
/// merged ledgers.  Both levels must agree exactly: summing N
/// per-machine accountings that each balance cannot unbalance, so a
/// fleet-level discrepancy pinpoints cross-machine bookkeeping bugs
/// (a shard counted twice, a lost machine's metrics leaking into the
/// total) that every per-machine check would miss.
#[derive(Debug, Clone)]
pub struct FleetHealthReport {
    members: Vec<(String, HealthReport)>,
    aggregate: HealthReport,
}

impl FleetHealthReport {
    /// Builds the roll-up from one fleet-wide snapshot and each
    /// member's `(prefix, ledger)` pair — the same prefix the
    /// machine's registry view wrote under (e.g. `"m3."`).
    pub fn new(snapshot: &Snapshot, members: impl IntoIterator<Item = (String, Coverage)>) -> Self {
        let members: Vec<(String, HealthReport)> = members
            .into_iter()
            .map(|(prefix, cov)| {
                let slice = snapshot.strip_prefix(&prefix);
                (prefix, HealthReport::new(slice, cov))
            })
            .collect();
        let mut merged = Coverage::empty();
        for (_, report) in &members {
            merged.merge(report.coverage());
        }
        let slices: Vec<&Snapshot> = members.iter().map(|(_, r)| r.snapshot()).collect();
        let aggregate = HealthReport::new(Snapshot::aggregate(slices.iter().copied()), merged);
        FleetHealthReport { members, aggregate }
    }

    /// The per-machine reports, in the order the members were given.
    pub fn members(&self) -> &[(String, HealthReport)] {
        &self.members
    }

    /// The fleet-aggregate report (summed metrics vs merged ledger).
    pub fn aggregate(&self) -> &HealthReport {
        &self.aggregate
    }

    /// Every disagreement at either level, each line tagged with the
    /// member prefix (or `fleet:` for the aggregate).  Empty is the
    /// proof that all N machines and their sum balance exactly.
    pub fn discrepancies(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (prefix, report) in &self.members {
            out.extend(
                report
                    .discrepancies()
                    .into_iter()
                    .map(|line| format!("{prefix}: {line}")),
            );
        }
        out.extend(
            self.aggregate
                .discrepancies()
                .into_iter()
                .map(|line| format!("fleet: {line}")),
        );
        out
    }

    /// True when every member and the aggregate agree exactly.
    pub fn is_consistent(&self) -> bool {
        self.discrepancies().is_empty()
    }

    /// One summary line per machine, then the aggregate's full table.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fleet health — {} machines", self.members.len());
        for (prefix, report) in &self.members {
            let c = report.coverage();
            let _ = writeln!(
                out,
                "  {:<6} timeline {:>10} us, covered {:>6.2}%, {}",
                prefix,
                c.timeline_us,
                c.fraction() * 100.0,
                if report.is_consistent() {
                    "consistent"
                } else {
                    "INCONSISTENT"
                }
            );
        }
        let _ = writeln!(out, "aggregate:");
        out.push_str(&self.aggregate.describe());
        out
    }
}

impl std::fmt::Display for FleetHealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::{BoardConfig, Profiler};
    use crate::supervisor::{
        CaptureSupervisor, FlakyTransport, MemoryTransport, RetryPolicy, SupervisorPolicy, TagMask,
    };
    use hwprof_machine::EpromTap;
    use hwprof_telemetry::Registry;

    fn run_supervised(fail_ppm: u32, reg: &Registry) -> Coverage {
        let board = Profiler::new(BoardConfig {
            capacity: 8,
            time_bits: 24,
        });
        let transport = FlakyTransport::new(MemoryTransport::new(), fail_ppm, 11);
        let mut sup = CaptureSupervisor::new(
            board,
            TagMask::new([200u16]),
            SupervisorPolicy {
                drain_budget_us: 10,
                ladder: true,
                downgrade_fill_us: 500,
                upgrade_fill_us: 2_000,
                max_session_us: u64::MAX,
                retry: RetryPolicy {
                    max_attempts: 2,
                    base_backoff_us: 5,
                    max_backoff_us: 20,
                    jitter_ppm: 0,
                },
                breaker_cooldown_us: 50,
                spill_banks: 2,
                ..SupervisorPolicy::default()
            },
            Box::new(transport),
        );
        sup.set_telemetry(reg);
        for i in 0..300u64 {
            let tag = if i % 7 == 0 {
                200
            } else if i % 2 == 0 {
                500
            } else {
                501
            };
            sup.on_read(tag, 1_000 + i * 13);
        }
        sup.finish().coverage
    }

    #[test]
    fn clean_run_is_consistent() {
        let reg = Registry::new();
        let cov = run_supervised(0, &reg);
        let report = HealthReport::new(reg.snapshot(), cov);
        assert!(
            report.is_consistent(),
            "discrepancies: {:?}",
            report.discrepancies()
        );
        let text = report.describe();
        assert!(text.contains("capture health"), "{text}");
        assert!(!text.contains("MISMATCH"), "{text}");
    }

    #[test]
    fn faulty_run_is_still_consistent() {
        let reg = Registry::new();
        let cov = run_supervised(300_000, &reg);
        assert!(cov.transport_failures > 0, "wanted transport trouble");
        let report = HealthReport::new(reg.snapshot(), cov);
        assert!(
            report.is_consistent(),
            "discrepancies: {:?}",
            report.discrepancies()
        );
    }

    #[test]
    fn tampered_ledger_is_caught() {
        let reg = Registry::new();
        let mut cov = run_supervised(0, &reg);
        cov.gap_us += 1;
        let report = HealthReport::new(reg.snapshot(), cov);
        assert!(!report.is_consistent());
        let text = report.describe();
        assert!(text.contains("MISMATCH"), "{text}");
    }

    #[test]
    fn fleet_rollup_checks_members_and_aggregate() {
        let reg = Registry::new();
        let cov0 = run_supervised(0, &reg.prefixed("m0."));
        let cov1 = run_supervised(300_000, &reg.prefixed("m1."));
        let snap = reg.snapshot();
        let fleet = FleetHealthReport::new(
            &snap,
            [("m0.".to_string(), cov0), ("m1.".to_string(), cov1)],
        );
        assert!(
            fleet.is_consistent(),
            "discrepancies: {:?}",
            fleet.discrepancies()
        );
        assert_eq!(fleet.members().len(), 2);
        // The aggregate ledger is the merge of the members'.
        assert_eq!(
            fleet.aggregate().coverage().timeline_us,
            cov0.timeline_us + cov1.timeline_us
        );
        let text = fleet.describe();
        assert!(text.contains("fleet health — 2 machines"), "{text}");
        assert!(text.contains("aggregate:"), "{text}");
    }

    #[test]
    fn fleet_rollup_pinpoints_the_bad_member() {
        let reg = Registry::new();
        let cov0 = run_supervised(0, &reg.prefixed("m0."));
        let mut cov1 = run_supervised(0, &reg.prefixed("m1."));
        cov1.gap_us += 1; // unbalances m1 and the aggregate
        let fleet = FleetHealthReport::new(
            &reg.snapshot(),
            [("m0.".to_string(), cov0), ("m1.".to_string(), cov1)],
        );
        let issues = fleet.discrepancies();
        assert!(!issues.is_empty());
        assert!(issues.iter().any(|l| l.starts_with("m1.:")), "{issues:?}");
        assert!(issues.iter().any(|l| l.starts_with("fleet:")), "{issues:?}");
        assert!(!issues.iter().any(|l| l.starts_with("m0.:")), "{issues:?}");
    }

    #[test]
    fn missing_telemetry_is_reported_not_silently_ok() {
        let report = HealthReport::new(Snapshot::default(), Coverage::empty());
        let issues = report.discrepancies();
        assert!(!issues.is_empty());
        assert!(issues.iter().all(|l| l.contains("missing")), "{issues:?}");
    }
}
