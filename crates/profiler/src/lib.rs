//! The Profiler board.
//!
//! From the paper: "The Profiler consists of a block of RAM which is 40
//! bits wide, an incrementing address counter, a free running counter
//! clocking at 1 Megahertz, and some control logic.  The RAM is split into
//! two sections, one holding an identification code (event tag) which is
//! 16 bits in width, and the other 24 bit wide section connected to the
//! microsecond clock.  When an event tag is presented to the Profiler, it
//! stores this code along with the microsecond counter value into RAM.
//! The RAM address is automatically incremented every time an event is
//! stored [...] The list is currently 16384 events long [...] The
//! microsecond timer is 24 bits long, allowing a maximum time of 16
//! seconds between events before the time is wrapped around and
//! information is lost."
//!
//! The board model here is bit-exact on those properties: tag width, time
//! width and wrap, capacity, the arm switch, the two LEDs (active,
//! overflow), and the battery-backed-RAM upload path (a raw 5-byte record
//! stream).  [`Profiler`] is a cheaply cloneable handle so the simulated
//! machine can own one clone as its EPROM-socket tap while the experiment
//! harness keeps another to flip the switch and pull the data.

mod board;
mod faults;
mod health;
mod record;
mod recorder;
mod supervisor;
mod zif;

pub use board::{BankSink, BoardConfig, BoardHealth, Leds, Profiler};
pub use faults::{FaultInjector, FaultSpec, FaultySink, InjectedFaults, SPURIOUS_TAG_BASE};
pub use health::{FleetHealthReport, HealthReport};
pub use record::{parse_raw, parse_raw_lossy, serialize_raw, RawRecord, RecordError, TIME_MASK};
pub use recorder::{RecorderConfig, RecorderConfigBuilder, RecorderConfigError, SessionSink};
pub use supervisor::{
    CaptureSupervisor, Coverage, FlakyTransport, Gap, GapCause, MemoryTransport, RetryPolicy,
    SupervisedRun, SupervisedSession, SupervisorPolicy, TagMask, TagMaskLevel, Transport,
    TransportError,
};
pub use zif::{ram_chip_view, reassemble, RamChip};
