//! Network-path behaviour and failure injection: corrupt frames, runt
//! frames, unknown protocols, checksum policy, external-mbuf mode.

use hwprof_kernel386::funcs::KFn;
use hwprof_kernel386::hosts::{pattern, tcp_data_frame, OneFrame, TcpBlaster};
use hwprof_kernel386::kernel::KernelConfig;
use hwprof_kernel386::sim::SimBuilder;
use hwprof_kernel386::syscall::{sys_read_timeout, sys_socket};
use hwprof_kernel386::wire_fmt::{
    build_ether, build_ipv4, build_udp, IPPROTO_TCP, IPPROTO_UDP, PC_IP, REMOTE_IP,
};

fn recv_with_frame(
    frame: Vec<u8>,
    proto: u8,
    port: u16,
) -> (hwprof_kernel386::kernel::Kernel, Vec<u8>) {
    let sim = SimBuilder::new()
        .ether(Box::new(OneFrame {
            frame,
            delay: 80_000,
        }))
        .build();
    sim.spawn(
        "r",
        Box::new(move |ctx| {
            let fd = sys_socket(ctx, proto, port);
            let d = sys_read_timeout(ctx, fd, 4096, 10);
            // Smuggle the data out through the kernel for inspection.
            ctx.k.net.nfs_replies.insert(0xdead, d);
        }),
    );
    let mut k = sim.run();
    let data = k.net.nfs_replies.remove(&0xdead).unwrap_or_default();
    (k, data)
}

#[test]
fn corrupt_tcp_checksum_is_dropped() {
    let mut frame = tcp_data_frame(5001, 0, &pattern(0, 512));
    // Flip a payload byte after the checksum was computed.
    let n = frame.len();
    frame[n - 10] ^= 0xff;
    let (k, data) = recv_with_frame(frame, IPPROTO_TCP, 5001);
    assert_eq!(k.stats.cksum_drops, 1, "checksum caught the corruption");
    assert!(data.is_empty(), "nothing delivered");
    // And the drop happened after the expensive checksum ran.
    assert!(k.trace.truth(KFn::InCksum).calls >= 1);
}

#[test]
fn corrupt_ip_header_is_dropped_before_tcp() {
    let mut frame = tcp_data_frame(5001, 0, &pattern(0, 512));
    frame[14 + 8] = 3; // mangle TTL: breaks the IP header checksum
    let (k, data) = recv_with_frame(frame, IPPROTO_TCP, 5001);
    assert_eq!(k.stats.cksum_drops, 1);
    assert!(data.is_empty());
    assert_eq!(
        k.trace.truth(KFn::TcpInput).calls,
        0,
        "tcp_input never reached"
    );
}

#[test]
fn runt_and_unknown_frames_are_ignored() {
    // A frame shorter than an Ethernet header.
    let (k, data) = recv_with_frame(vec![0xAA; 9], IPPROTO_TCP, 5001);
    assert!(data.is_empty());
    assert_eq!(k.stats.cksum_drops, 0);
    // An unknown ethertype.
    let frame = build_ether(0x0806, &[0u8; 64]); // ARP-ish
    let (k, data) = recv_with_frame(frame, IPPROTO_TCP, 5001);
    assert!(data.is_empty());
    assert_eq!(k.trace.truth(KFn::Ipintr).calls, 0);
    // The mbufs the driver allocated were freed again.
    assert_eq!(k.net.mbuf_allocs, k.net.mbuf_frees);
}

#[test]
fn udp_delivery_and_checksum_policy() {
    // Valid UDP datagram with a checksum, kernel configured to verify.
    let dgram = build_udp(REMOTE_IP, PC_IP, 2000, 7000, &pattern(0, 256), true);
    let packet = build_ipv4(IPPROTO_UDP, REMOTE_IP, PC_IP, &dgram);
    let frame = build_ether(0x0800, &packet);
    let sim = SimBuilder::new()
        .config(KernelConfig {
            udp_cksum: true,
            ..KernelConfig::default()
        })
        .ether(Box::new(OneFrame {
            frame,
            delay: 80_000,
        }))
        .build();
    sim.spawn(
        "u",
        Box::new(|ctx| {
            let fd = sys_socket(ctx, IPPROTO_UDP, 7000);
            let d = sys_read_timeout(ctx, fd, 4096, 10);
            assert_eq!(d, pattern(0, 256));
        }),
    );
    let k = sim.run();
    assert_eq!(k.stats.cksum_drops, 0);
    // The UDP payload checksum really ran (expensive call).
    let ck = k.trace.truth(KFn::InCksum);
    assert!(ck.calls >= 2, "header + UDP payload checksums");
}

#[test]
fn corrupt_udp_checksum_dropped_only_when_checking() {
    let mut dgram = build_udp(REMOTE_IP, PC_IP, 2000, 7000, &pattern(0, 256), true);
    let n = dgram.len();
    dgram[n - 1] ^= 0x55;
    let packet = build_ipv4(IPPROTO_UDP, REMOTE_IP, PC_IP, &dgram);
    let frame = build_ether(0x0800, &packet);
    for check in [true, false] {
        let sim = SimBuilder::new()
            .config(KernelConfig {
                udp_cksum: check,
                ..KernelConfig::default()
            })
            .ether(Box::new(OneFrame {
                frame: frame.clone(),
                delay: 80_000,
            }))
            .build();
        sim.spawn(
            "u",
            Box::new(move |ctx| {
                let fd = sys_socket(ctx, IPPROTO_UDP, 7000);
                let d = sys_read_timeout(ctx, fd, 4096, 10);
                if check {
                    assert!(d.is_empty(), "bad datagram must not deliver");
                } else {
                    // Checksums off: the kernel cannot tell (NFS mode).
                    assert_eq!(d.len(), 256);
                }
            }),
        );
        let k = sim.run();
        assert_eq!(k.stats.cksum_drops, u64::from(check));
    }
}

#[test]
fn external_mbufs_preserve_data_and_charge_isa_rates() {
    let total: u64 = 24 * 1460;
    let run = |external: bool| {
        let sim = SimBuilder::new()
            .config(KernelConfig {
                external_mbufs: external,
                ..KernelConfig::default()
            })
            .ether(Box::new(TcpBlaster::paced(5001, 1460, total, 3500)))
            .build();
        sim.spawn(
            "r",
            Box::new(move |ctx| {
                let fd = sys_socket(ctx, IPPROTO_TCP, 5001);
                let mut got = Vec::new();
                loop {
                    let d = sys_read_timeout(ctx, fd, 4096, 8);
                    if d.is_empty() {
                        break;
                    }
                    got.extend_from_slice(&d);
                }
                assert_eq!(got.len() as u64, total);
                assert_eq!(got, pattern(0, total as usize), "intact via ISA reads");
            }),
        );
        sim.run()
    };
    let stock = run(false);
    let external = run(true);
    // The *driver's* copy disappeared (weget no longer pays it)...
    assert!(
        external.trace.truth(KFn::Weget).gross < stock.trace.truth(KFn::Weget).gross / 3,
        "driver copy gone from weget"
    );
    // ...the user copy moved to ISA rates (bcopy total holds roughly
    // steady: one ISA pass either way)...
    let b_ext = external.trace.truth(KFn::Bcopy).net;
    let b_stock = stock.trace.truth(KFn::Bcopy).net;
    assert!(
        b_ext > b_stock / 2 && b_ext < b_stock * 2,
        "copy pass moved"
    );
    // ...but the checksum got much more expensive (ISA fetches), which
    // is why the paper's what-if is a net loss.
    assert!(
        external.trace.truth(KFn::InCksum).net > stock.trace.truth(KFn::InCksum).net * 3 / 2,
        "checksum pays ISA rates"
    );
    let busy = |k: &hwprof_kernel386::kernel::Kernel| k.machine.now - k.sched.idle_cycles;
    assert!(
        busy(&external) > busy(&stock),
        "external mbufs lose overall"
    );
}

#[test]
fn mbuf_pool_balances_after_traffic() {
    let sim = SimBuilder::new()
        .ether(Box::new(TcpBlaster::paced(5001, 1460, 20 * 1460, 3000)))
        .build();
    sim.spawn(
        "r",
        Box::new(|ctx| {
            let fd = sys_socket(ctx, IPPROTO_TCP, 5001);
            loop {
                let d = sys_read_timeout(ctx, fd, 4096, 8);
                if d.is_empty() {
                    break;
                }
            }
        }),
    );
    let k = sim.run();
    assert!(k.net.mbuf_allocs > 20);
    assert_eq!(
        k.net.mbuf_allocs, k.net.mbuf_frees,
        "every mbuf allocated was freed"
    );
}
